"""repro — user-space emulation framework for domain-specific SoC design.

A Python reproduction of Mack et al., "User-Space Emulation Framework for
Domain-Specific SoC Design" (IPDPS Workshops 2020, arXiv:2004.01636): a
runtime for hardware-software co-design of DSSoCs with plug-and-play
integration points for applications (JSON task graphs over kernel shared
objects), scheduling heuristics, and accelerator models, plus a prototype
compilation toolchain that converts monolithic unlabeled code into
DAG-based applications.

Quickstart::

    from repro import Emulation, validation_workload

    emu = Emulation(config="3C+2F", policy="frfs")
    result = emu.run(validation_workload({"range_detection": 3}))
    print(result.stats.summary())

See README.md for the architecture overview and DESIGN.md for the full
system inventory and experiment index.
"""

from repro.appmodel import (
    GraphBuilder,
    KernelContext,
    KernelLibrary,
    PlatformBinding,
    TaskGraph,
    TaskNode,
    VariableSpec,
    buffer_spec,
    dump_graph,
    graph_from_json,
    graph_to_json,
    load_graph,
    scalar_spec,
)
from repro.apps import (
    build_application,
    default_applications,
    default_kernel_library,
)
from repro.hardware import (
    AffinityPlan,
    DMAModel,
    DSSoCConfig,
    FFTAcceleratorDevice,
    PerformanceModel,
    SchedulerCostModel,
    SoCPlatform,
    odroid_xu3,
    parse_config,
    zcu102,
)
from repro.runtime import (
    Emulation,
    EmulationResult,
    EmulationStats,
    ResourceHandler,
    Scheduler,
    available_policies,
    make_scheduler,
    performance_workload,
    register_policy,
    validation_workload,
)
from repro.dse import (
    SweepCell,
    SweepGrid,
    rate_sweep,
    run_campaign,
    validation_sweep,
)
from repro.runtime.backends import ThreadedBackend, VirtualBackend
from repro.runtime.workload import (
    ArrivalSpec,
    ArrivalStream,
    BurstyStream,
    DiurnalStream,
    PeriodicStream,
    PoissonStream,
    SpecStream,
    TraceStream,
    WorkloadSpec,
    workload_for_counts,
)
from repro.toolchain import convert

__version__ = "1.0.0"

__all__ = [
    # application model
    "GraphBuilder",
    "KernelContext",
    "KernelLibrary",
    "PlatformBinding",
    "TaskGraph",
    "TaskNode",
    "VariableSpec",
    "buffer_spec",
    "scalar_spec",
    "graph_from_json",
    "graph_to_json",
    "load_graph",
    "dump_graph",
    # applications
    "build_application",
    "default_applications",
    "default_kernel_library",
    # hardware
    "AffinityPlan",
    "DMAModel",
    "DSSoCConfig",
    "FFTAcceleratorDevice",
    "PerformanceModel",
    "SchedulerCostModel",
    "SoCPlatform",
    "odroid_xu3",
    "parse_config",
    "zcu102",
    # runtime
    "Emulation",
    "EmulationResult",
    "EmulationStats",
    "ResourceHandler",
    "Scheduler",
    "available_policies",
    "make_scheduler",
    "register_policy",
    "validation_workload",
    "performance_workload",
    "workload_for_counts",
    "WorkloadSpec",
    # open-loop arrival streams (serving workloads)
    "ArrivalSpec",
    "ArrivalStream",
    "PoissonStream",
    "PeriodicStream",
    "DiurnalStream",
    "BurstyStream",
    "TraceStream",
    "SpecStream",
    "VirtualBackend",
    "ThreadedBackend",
    # design-space exploration
    "SweepCell",
    "SweepGrid",
    "run_campaign",
    "validation_sweep",
    "rate_sweep",
    # toolchain
    "convert",
    "__version__",
]
