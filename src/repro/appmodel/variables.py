"""Program variables with byte-level storage, per Listing 1.

Each variable in an application JSON declares::

    "n_samples": {"bytes": 4, "is_ptr": false, "ptr_alloc_bytes": 0,
                  "val": [0, 1, 0, 0]}

* ``bytes`` — storage for the variable's own representation (4 for an i32,
  8 for a pointer on 64-bit systems).
* ``is_ptr`` — whether the variable is itself a pointer into the heap.
* ``ptr_alloc_bytes`` — heap allocation backing the pointer.
* ``val`` — little-endian initializer bytes (for the pointed-to region when
  ``is_ptr``, else for the variable itself).

The emulated heap is a :class:`MemoryPool` (one per application instance,
mirroring the C framework allocating each instance's variables in main
memory during initialization).  Kernels receive :class:`VariableBinding`
objects and reinterpret the raw bytes with NumPy views — the Python analog
of casting a ``void*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ApplicationSpecError, MemoryError_

_POINTER_BYTES = 8  # pointers are 8 bytes on the 64-bit targets emulated


@dataclass(frozen=True)
class VariableSpec:
    """Declaration of one program variable (schema of Listing 1).

    ``dtype_hint`` is a framework extension: an optional NumPy dtype string
    recorded in the JSON (ignored by the storage model, used by kernels and
    debugging tools to view the raw bytes conveniently).
    """

    name: str
    bytes: int
    is_ptr: bool = False
    ptr_alloc_bytes: int = 0
    val: tuple[int, ...] = ()
    dtype_hint: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ApplicationSpecError("variable name must be non-empty")
        if self.bytes <= 0:
            raise ApplicationSpecError(
                f"variable {self.name!r}: bytes must be positive, got {self.bytes}"
            )
        if self.is_ptr:
            if self.bytes != _POINTER_BYTES:
                raise ApplicationSpecError(
                    f"variable {self.name!r}: pointer variables use "
                    f"{_POINTER_BYTES} bytes, got {self.bytes}"
                )
            if self.ptr_alloc_bytes <= 0:
                raise ApplicationSpecError(
                    f"variable {self.name!r}: pointer needs ptr_alloc_bytes > 0"
                )
        elif self.ptr_alloc_bytes:
            raise ApplicationSpecError(
                f"variable {self.name!r}: ptr_alloc_bytes set on non-pointer"
            )
        limit = self.ptr_alloc_bytes if self.is_ptr else self.bytes
        if len(self.val) > limit:
            raise ApplicationSpecError(
                f"variable {self.name!r}: {len(self.val)} initializer bytes "
                f"exceed storage of {limit}"
            )
        if any((b < 0 or b > 255) for b in self.val):
            raise ApplicationSpecError(
                f"variable {self.name!r}: initializer bytes must be 0..255"
            )

    @property
    def storage_bytes(self) -> int:
        """Total footprint: own representation plus heap allocation."""
        return self.bytes + self.ptr_alloc_bytes


def scalar_spec(name: str, value: int = 0, nbytes: int = 4) -> VariableSpec:
    """Spec for a little-endian integer scalar (e.g. ``n_samples``).

    >>> scalar_spec("n_samples", 256).val
    (0, 1, 0, 0)
    """
    raw = int(value).to_bytes(nbytes, "little", signed=value < 0)
    return VariableSpec(name=name, bytes=nbytes, val=tuple(raw))


def buffer_spec(
    name: str,
    alloc_bytes: int,
    init: bytes | np.ndarray | None = None,
    dtype_hint: str | None = None,
) -> VariableSpec:
    """Spec for a heap buffer variable (pointer + allocation).

    ``init`` may be raw bytes or a NumPy array whose byte image initializes
    the allocation.
    """
    val: tuple[int, ...] = ()
    if init is not None:
        raw = init.tobytes() if isinstance(init, np.ndarray) else bytes(init)
        if len(raw) > alloc_bytes:
            raise ApplicationSpecError(
                f"variable {name!r}: initializer of {len(raw)} bytes exceeds "
                f"allocation of {alloc_bytes}"
            )
        val = tuple(raw)
    return VariableSpec(
        name=name,
        bytes=_POINTER_BYTES,
        is_ptr=True,
        ptr_alloc_bytes=alloc_bytes,
        val=val,
        dtype_hint=dtype_hint,
    )


class MemoryPool:
    """Emulated main-memory heap for one application instance.

    A bump allocator over a contiguous ``bytearray``; allocations are
    aligned to 8 bytes (matching malloc alignment guarantees relevant to the
    kernels' typed views).  The pool records every allocation so accesses
    can be bounds-checked and so the DMA model knows transfer extents.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise MemoryError_(f"pool capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._storage = bytearray(capacity)
        self._arr = np.frombuffer(self._storage, dtype=np.uint8)
        self._offset = 0
        self._allocations: dict[int, int] = {}  # base -> size

    def allocate(self, nbytes: int) -> int:
        """Reserve ``nbytes``; returns the base offset (the 'pointer')."""
        if nbytes <= 0:
            raise MemoryError_(f"allocation size must be positive, got {nbytes}")
        base = (self._offset + 7) & ~7
        if base + nbytes > self.capacity:
            raise MemoryError_(
                f"pool exhausted: need {nbytes} at offset {base}, "
                f"capacity {self.capacity}"
            )
        self._offset = base + nbytes
        self._allocations[base] = nbytes
        return base

    def view(self, base: int, nbytes: int | None = None) -> np.ndarray:
        """A uint8 view of an allocation (bounds-checked)."""
        size = self._allocations.get(base)
        if size is None:
            raise MemoryError_(f"no allocation at offset {base}")
        if nbytes is None:
            nbytes = size
        if nbytes > size:
            raise MemoryError_(
                f"view of {nbytes} bytes exceeds allocation of {size} at {base}"
            )
        return self._arr[base : base + nbytes]

    def write(self, base: int, data: bytes) -> None:
        """Initialize an allocation's leading bytes."""
        size = self._allocations.get(base)
        if size is None:
            raise MemoryError_(f"no allocation at offset {base}")
        if len(data) > size:
            raise MemoryError_(
                f"write of {len(data)} bytes overruns allocation of {size}"
            )
        self._storage[base : base + len(data)] = data

    @property
    def bytes_used(self) -> int:
        return self._offset

    @property
    def allocation_count(self) -> int:
        return len(self._allocations)


class VariableBinding:
    """A live variable: its spec plus its storage inside a pool.

    Scalars live in a small slot; pointers additionally own a heap
    allocation.  Kernels use the typed accessors, which reinterpret raw
    bytes exactly as the C kernels' casts would.
    """

    __slots__ = ("spec", "pool", "slot_base", "heap_base")

    def __init__(self, spec: VariableSpec, pool: MemoryPool) -> None:
        self.spec = spec
        self.pool = pool
        self.slot_base = pool.allocate(spec.bytes)
        if spec.is_ptr:
            self.heap_base = pool.allocate(spec.ptr_alloc_bytes)
            # The slot stores the emulated address (offset) little-endian.
            pool.write(self.slot_base, self.heap_base.to_bytes(8, "little"))
            if spec.val:
                pool.write(self.heap_base, bytes(spec.val))
        else:
            self.heap_base = -1
            if spec.val:
                pool.write(self.slot_base, bytes(spec.val))

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def nbytes(self) -> int:
        """Size of the payload region (allocation for pointers, slot else)."""
        return self.spec.ptr_alloc_bytes if self.spec.is_ptr else self.spec.bytes

    def raw(self) -> np.ndarray:
        """uint8 view of the payload region."""
        base = self.heap_base if self.spec.is_ptr else self.slot_base
        return self.pool.view(base, self.nbytes)

    # typed accessors --------------------------------------------------------

    def as_int(self) -> int:
        """Read a non-pointer variable as a little-endian signed integer."""
        if self.spec.is_ptr:
            raise MemoryError_(f"variable {self.name!r} is a pointer, not a scalar")
        return int.from_bytes(self.raw().tobytes(), "little", signed=True)

    def set_int(self, value: int) -> None:
        """Write a non-pointer variable as a little-endian signed integer."""
        if self.spec.is_ptr:
            raise MemoryError_(f"variable {self.name!r} is a pointer, not a scalar")
        self.pool.write(
            self.slot_base, int(value).to_bytes(self.spec.bytes, "little", signed=True)
        )

    def as_array(self, dtype: str | np.dtype, count: int | None = None) -> np.ndarray:
        """Typed view of a pointer variable's allocation.

        The returned array aliases pool storage: kernel writes land in the
        emulated main memory, visible to successor tasks — the shared-memory
        communication model of the paper.
        """
        if not self.spec.is_ptr:
            raise MemoryError_(f"variable {self.name!r} is not a pointer")
        dt = np.dtype(dtype)
        avail = self.spec.ptr_alloc_bytes // dt.itemsize
        if count is None:
            count = avail
        if count > avail:
            raise MemoryError_(
                f"variable {self.name!r}: {count} x {dt} exceeds allocation "
                f"of {self.spec.ptr_alloc_bytes} bytes"
            )
        return self.raw()[: count * dt.itemsize].view(dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = f"ptr[{self.spec.ptr_alloc_bytes}]" if self.spec.is_ptr else "scalar"
        return f"VariableBinding({self.name!r}, {kind})"


class VariableTable:
    """All live variables of one application instance."""

    def __init__(self, specs: dict[str, VariableSpec], pool: MemoryPool) -> None:
        self.pool = pool
        self._bindings: dict[str, VariableBinding] = {
            name: VariableBinding(spec, pool) for name, spec in specs.items()
        }

    def __getitem__(self, name: str) -> VariableBinding:
        try:
            return self._bindings[name]
        except KeyError:
            raise ApplicationSpecError(f"unknown variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __iter__(self):
        return iter(self._bindings.values())

    def __len__(self) -> int:
        return len(self._bindings)

    def names(self) -> list[str]:
        return list(self._bindings)

    @staticmethod
    def required_pool_bytes(specs: dict[str, VariableSpec], slack: int = 64) -> int:
        """Pool capacity needed for a spec set (8-byte alignment padding
        bounded by 7 bytes per allocation; ``slack`` adds headroom)."""
        total = sum(s.storage_bytes + 14 for s in specs.values())
        return total + slack
