"""JSON (de)serialization of application task graphs — Listing 1 schema.

The on-disk format matches the paper exactly::

    {
      "AppName": "range_detection",
      "SharedObject": "range_detection.so",
      "Variables": { "<name>": {"bytes": .., "is_ptr": ..,
                                "ptr_alloc_bytes": .., "val": [..]}, ... },
      "DAG": { "<node>": {"arguments": [..], "predecessors": [..],
                          "successors": [..],
                          "platforms": [{"name": .., "runfunc": ..,
                                         "shared_object": ..?}, ..]}, ... }
    }

Two framework extensions are emitted/accepted when present and are ignored
by schema-strict consumers: a per-variable ``dtype`` hint and a top-level
``Setup`` symbol run at instance initialization.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.appmodel.dag import PlatformBinding, TaskGraph, TaskNode
from repro.appmodel.variables import VariableSpec
from repro.common.errors import ApplicationSpecError


def _require(mapping: dict, key: str, context: str) -> Any:
    if key not in mapping:
        raise ApplicationSpecError(f"{context}: missing required key {key!r}")
    return mapping[key]


def variable_from_json(name: str, data: dict) -> VariableSpec:
    context = f"variable {name!r}"
    if not isinstance(data, dict):
        raise ApplicationSpecError(f"{context}: expected an object")
    return VariableSpec(
        name=name,
        bytes=int(_require(data, "bytes", context)),
        is_ptr=bool(_require(data, "is_ptr", context)),
        ptr_alloc_bytes=int(_require(data, "ptr_alloc_bytes", context)),
        val=tuple(int(b) for b in _require(data, "val", context)),
        dtype_hint=data.get("dtype"),
    )


def variable_to_json(spec: VariableSpec) -> dict:
    data: dict[str, Any] = {
        "bytes": spec.bytes,
        "is_ptr": spec.is_ptr,
        "ptr_alloc_bytes": spec.ptr_alloc_bytes,
        "val": list(spec.val),
    }
    if spec.dtype_hint:
        data["dtype"] = spec.dtype_hint
    return data


def node_from_json(name: str, data: dict) -> TaskNode:
    context = f"node {name!r}"
    if not isinstance(data, dict):
        raise ApplicationSpecError(f"{context}: expected an object")
    platforms_raw = _require(data, "platforms", context)
    if not isinstance(platforms_raw, list) or not platforms_raw:
        raise ApplicationSpecError(f"{context}: platforms must be a non-empty list")
    platforms = []
    for entry in platforms_raw:
        platforms.append(
            PlatformBinding(
                name=str(_require(entry, "name", f"{context} platform")),
                runfunc=str(_require(entry, "runfunc", f"{context} platform")),
                shared_object=entry.get("shared_object"),
            )
        )
    return TaskNode(
        name=name,
        arguments=tuple(data.get("arguments", ())),
        predecessors=tuple(_require(data, "predecessors", context)),
        successors=tuple(_require(data, "successors", context)),
        platforms=tuple(platforms),
    )


def node_to_json(node: TaskNode) -> dict:
    platforms = []
    for p in node.platforms:
        entry: dict[str, Any] = {"name": p.name, "runfunc": p.runfunc}
        if p.shared_object:
            entry["shared_object"] = p.shared_object
        platforms.append(entry)
    return {
        "arguments": list(node.arguments),
        "predecessors": list(node.predecessors),
        "successors": list(node.successors),
        "platforms": platforms,
    }


def graph_from_json(data: dict) -> TaskGraph:
    """Build a validated :class:`TaskGraph` from a parsed JSON object."""
    if not isinstance(data, dict):
        raise ApplicationSpecError("application spec must be a JSON object")
    app_name = str(_require(data, "AppName", "application"))
    shared_object = str(_require(data, "SharedObject", "application"))
    variables_raw = _require(data, "Variables", f"app {app_name!r}")
    dag_raw = _require(data, "DAG", f"app {app_name!r}")
    variables = {
        name: variable_from_json(name, spec) for name, spec in variables_raw.items()
    }
    nodes = {name: node_from_json(name, spec) for name, spec in dag_raw.items()}
    return TaskGraph(
        app_name=app_name,
        shared_object=shared_object,
        variables=variables,
        nodes=nodes,
        setup=data.get("Setup"),
    )


def graph_to_json(graph: TaskGraph) -> dict:
    """Serialize a :class:`TaskGraph` back to the Listing 1 schema."""
    data: dict[str, Any] = {
        "AppName": graph.app_name,
        "SharedObject": graph.shared_object,
        "Variables": {
            name: variable_to_json(spec) for name, spec in graph.variables.items()
        },
        "DAG": {name: node_to_json(node) for name, node in graph.nodes.items()},
    }
    if graph.setup:
        data["Setup"] = graph.setup
    return data


def load_graph(path: str | Path) -> TaskGraph:
    """Parse an application JSON file into a validated task graph."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ApplicationSpecError(f"{path}: invalid JSON: {exc}") from exc
    return graph_from_json(data)


def dump_graph(graph: TaskGraph, path: str | Path) -> None:
    """Write a task graph to a JSON file in the Listing 1 schema."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(graph_to_json(graph), fh, indent=2)
        fh.write("\n")
