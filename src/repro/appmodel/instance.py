"""Live application instances and per-task runtime state.

The application handler instantiates each requested application archetype
(allocating and initializing its variables in the emulated main memory) and
the workload manager drives the resulting :class:`TaskInstance` objects
through their lifecycle::

    PENDING -> READY -> DISPATCHED -> RUNNING -> COMPLETE

A task becomes READY when its last predecessor completes; DISPATCHED when a
scheduling policy maps it to a PE; RUNNING when that PE's resource manager
begins executing it; COMPLETE when execution (including any accelerator
data transfers) finishes.

Under fault injection a DISPATCHED or RUNNING task may be *requeued*
(back to READY) when its PE permanently fails or exhausts its in-place
retries, and a whole application may be marked *degraded* when no live PE
can execute its remaining tasks.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.appmodel.dag import PlatformBinding, TaskGraph, TaskNode
from repro.appmodel.variables import MemoryPool, VariableTable
from repro.common.errors import EmulationError


class TaskState(enum.IntEnum):
    PENDING = 0
    READY = 1
    DISPATCHED = 2
    RUNNING = 3
    COMPLETE = 4


class TaskInstance:
    """Runtime state of one DAG node within one application instance.

    This is the paper's "DAG node data structure with all the information
    necessary for scheduling, dispatch, and measurement of a single node's
    performance" that scheduling policies receive.
    """

    __slots__ = (
        "node",
        "app",
        "task_id",
        "state",
        "unfinished_preds",
        "assigned_pe",
        "chosen_platform",
        "ready_time",
        "dispatch_time",
        "start_time",
        "finish_time",
        "fault_requeues",
    )

    def __init__(self, node: TaskNode, app: "ApplicationInstance", task_id: int) -> None:
        self.node = node
        self.app = app
        self.task_id = task_id
        self.state = TaskState.PENDING
        self.unfinished_preds = len(node.predecessors)
        self.assigned_pe: Any = None  # ResourceHandler once dispatched
        self.chosen_platform: PlatformBinding | None = None
        self.ready_time: float = -1.0
        self.dispatch_time: float = -1.0
        self.start_time: float = -1.0
        self.finish_time: float = -1.0
        #: WM-level fault reschedules of this task (retry-exhaustion only)
        self.fault_requeues: int = 0

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def app_name(self) -> str:
        return self.app.app_name

    def supports(self, platform: str) -> bool:
        return self.node.supports(platform)

    def supports_pe(self, handler) -> bool:
        """Can this task run on the handler's PE (incl. generic-cpu match)?"""
        return self.node.supports_any(handler.accepted_platforms)

    def mark_ready(self, now: float) -> None:
        if self.state != TaskState.PENDING:
            raise EmulationError(
                f"task {self.qualified_name()} marked ready in state {self.state.name}"
            )
        self.state = TaskState.READY
        self.ready_time = now

    def mark_dispatched(self, now: float, pe: Any, platform: PlatformBinding) -> None:
        if self.state != TaskState.READY:
            raise EmulationError(
                f"task {self.qualified_name()} dispatched in state {self.state.name}"
            )
        self.state = TaskState.DISPATCHED
        self.dispatch_time = now
        self.assigned_pe = pe
        self.chosen_platform = platform

    def mark_running(self, now: float) -> None:
        if self.state != TaskState.DISPATCHED:
            raise EmulationError(
                f"task {self.qualified_name()} started in state {self.state.name}"
            )
        self.state = TaskState.RUNNING
        self.start_time = now

    def mark_requeued(self, now: float, *, charge: bool = True) -> None:
        """Return a dispatched/running task to READY after a PE fault.

        ``charge=True`` (retry exhaustion) counts against the task's
        requeue budget; PE-failure orphaning is not the task's fault and
        passes ``charge=False``.  ``ready_time`` keeps its original value
        so queue-delay statistics measure from first readiness.
        """
        if self.state not in (TaskState.DISPATCHED, TaskState.RUNNING):
            raise EmulationError(
                f"task {self.qualified_name()} requeued in state {self.state.name}"
            )
        self.state = TaskState.READY
        self.assigned_pe = None
        self.chosen_platform = None
        self.dispatch_time = -1.0
        self.start_time = -1.0
        if charge:
            self.fault_requeues += 1

    def mark_complete(self, now: float) -> None:
        if self.state != TaskState.RUNNING:
            raise EmulationError(
                f"task {self.qualified_name()} completed in state {self.state.name}"
            )
        self.state = TaskState.COMPLETE
        self.finish_time = now

    def qualified_name(self) -> str:
        return f"{self.app.app_name}#{self.app.instance_id}:{self.node.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TaskInstance({self.qualified_name()}, {self.state.name})"


class ApplicationInstance:
    """One injected copy of an application archetype."""

    def __init__(
        self,
        graph: TaskGraph,
        instance_id: int,
        arrival_time: float,
        *,
        pool_slack: int = 256,
        task_id_base: int = 0,
        materialize: bool = True,
    ) -> None:
        self.graph = graph
        self.instance_id = instance_id
        self.arrival_time = arrival_time
        if materialize:
            capacity = VariableTable.required_pool_bytes(graph.variables, pool_slack)
            self.pool: MemoryPool | None = MemoryPool(capacity)
            self.variables: VariableTable | None = VariableTable(
                graph.variables, self.pool
            )
        else:
            # Timing-only instance for the virtual backend: no emulated
            # memory is allocated and kernels must never run on it.
            self.pool = None
            self.variables = None
        self.tasks: dict[str, TaskInstance] = {}
        next_id = task_id_base
        for name in graph.topological_order():
            self.tasks[name] = TaskInstance(graph.nodes[name], self, next_id)
            next_id += 1
        #: cached so task_count/is_complete survive release()
        self._n_tasks = len(self.tasks)
        self.completed_count = 0
        self.inject_time: float = -1.0  # set by the workload manager
        self.finish_time: float = -1.0
        #: terminally degraded: no live PE can execute a remaining task
        self.degraded: bool = False
        #: absolute QoS deadline (µs), set at session build when a QoS
        #: spec names this application; None means no deadline
        self.deadline: float | None = None
        #: shed by admission control before completing
        self.dropped: bool = False
        #: True once any task has been dispatched (admission-control
        #: bookkeeping: drop-oldest only sheds apps with no progress)
        self.started: bool = False

    @property
    def app_name(self) -> str:
        return self.graph.app_name

    @property
    def task_count(self) -> int:
        return self._n_tasks

    @property
    def is_complete(self) -> bool:
        return self.completed_count == self._n_tasks

    def release(self) -> None:
        """Drop DAG/memory bookkeeping once this instance is settled.

        Streaming (open-loop) runs call this after recording completion so
        memory stays O(apps in flight) rather than O(apps injected).  The
        scalar measurements (arrival/inject/finish times, degraded/dropped
        flags, task_count) survive; ``tasks``, the emulated memory pool,
        and the variable table do not.
        """
        self.tasks = {}
        self.pool = None
        self.variables = None

    def head_tasks(self) -> list[TaskInstance]:
        """Initially-ready tasks (no predecessors)."""
        return [self.tasks[name] for name in self.graph.head_nodes()]

    def on_task_complete(self, task: TaskInstance, now: float) -> list[TaskInstance]:
        """Bookkeeping for a completed task; returns newly-ready successors."""
        self.completed_count += 1
        newly_ready: list[TaskInstance] = []
        for succ_name in task.node.successors:
            succ = self.tasks[succ_name]
            succ.unfinished_preds -= 1
            if succ.unfinished_preds == 0:
                succ.mark_ready(now)
                newly_ready.append(succ)
            elif succ.unfinished_preds < 0:
                raise EmulationError(
                    f"task {succ.qualified_name()}: predecessor count underflow"
                )
        if self.is_complete:
            self.finish_time = now
        return newly_ready

    def response_time(self) -> float:
        """Completion latency measured from injection."""
        if not self.is_complete:
            raise EmulationError(
                f"app {self.app_name}#{self.instance_id} has not finished"
            )
        return self.finish_time - self.inject_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ApplicationInstance({self.app_name!r}#{self.instance_id}, "
            f"arrival={self.arrival_time:.1f}us, "
            f"done={self.completed_count}/{self._n_tasks})"
        )
