"""Kernel libraries — the Python analog of ``*.so`` shared objects.

The C runtime ``dlopen``s the shared object named in the JSON and looks up
each node's ``runfunc`` with ``dlsym``.  Here, a *shared object* is a name
registered with the :class:`KernelLibrary` mapping symbols to Python
callables.  Lookup failures raise :class:`SymbolResolutionError`, preserving
the integration failure mode users debug in the real framework.

Kernel calling convention
-------------------------
A kernel is ``fn(ctx: KernelContext) -> None``.  The context exposes the
node's declared arguments *positionally* (``ctx.arg(0)``), mirroring the C
kernels receiving raw pointers in the JSON-declared order, plus by-name
access to the instance's full variable table, invocation metadata (which PE
type is running it), and — for accelerator platforms — the device handle
the resource manager is driving.
"""

from __future__ import annotations

import types
from collections.abc import Callable, Mapping

import numpy as np

from repro.appmodel.variables import VariableBinding, VariableTable
from repro.common.errors import ApplicationSpecError, SymbolResolutionError


class KernelContext:
    """Argument bundle passed to every kernel invocation."""

    __slots__ = (
        "variables",
        "arg_names",
        "platform",
        "node_name",
        "app_name",
        "device",
    )

    def __init__(
        self,
        variables: VariableTable,
        arg_names: tuple[str, ...] = (),
        platform: str = "cpu",
        node_name: str = "",
        app_name: str = "",
        device=None,
    ) -> None:
        self.variables = variables
        self.arg_names = arg_names
        self.platform = platform
        self.node_name = node_name
        self.app_name = app_name
        #: accelerator device handle (threaded backend, accel platforms only)
        self.device = device

    def arg(self, index: int) -> VariableBinding:
        """The node's ``index``-th declared argument."""
        try:
            name = self.arg_names[index]
        except IndexError:
            raise ApplicationSpecError(
                f"node {self.node_name!r}: argument index {index} out of "
                f"range (declares {len(self.arg_names)})"
            ) from None
        return self.variables[name]

    def array(self, name: str, dtype: str | np.dtype, count: int | None = None) -> np.ndarray:
        """Typed view of a pointer variable (writes are visible to successors)."""
        return self.variables[name].as_array(dtype, count)

    def int(self, name: str) -> int:
        """Read an integer scalar variable."""
        return self.variables[name].as_int()

    def set_int(self, name: str, value: int) -> None:
        """Write an integer scalar variable."""
        self.variables[name].set_int(value)

    def float32(self, name: str, count: int | None = None) -> np.ndarray:
        return self.array(name, np.float32, count)

    def complex64(self, name: str, count: int | None = None) -> np.ndarray:
        return self.array(name, np.complex64, count)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KernelContext(app={self.app_name!r}, node={self.node_name!r}, "
            f"platform={self.platform!r})"
        )


Kernel = Callable[[KernelContext], None]


class KernelLibrary:
    """Registry of shared objects and their exported kernel symbols."""

    def __init__(self) -> None:
        self._objects: dict[str, dict[str, Kernel]] = {}

    def register_shared_object(
        self, name: str, symbols: Mapping[str, Kernel] | types.ModuleType
    ) -> None:
        """Register a shared object under ``name``.

        ``symbols`` may be a mapping or a module — for modules, every public
        callable becomes an exported symbol (the module *is* the ``.so``).
        Re-registering a name replaces it, matching ``dlopen`` of a rebuilt
        library.
        """
        if isinstance(symbols, types.ModuleType):
            exported = {
                attr: obj
                for attr, obj in vars(symbols).items()
                if callable(obj) and not attr.startswith("_")
            }
        else:
            exported = dict(symbols)
        self._objects[name] = exported

    def register_symbol(self, shared_object: str, symbol: str, fn: Kernel) -> None:
        """Add (or replace) one symbol in a shared object, creating it if new."""
        self._objects.setdefault(shared_object, {})[symbol] = fn

    def has_shared_object(self, name: str) -> bool:
        return name in self._objects

    def shared_objects(self) -> list[str]:
        return list(self._objects)

    def symbols(self, shared_object: str) -> list[str]:
        if shared_object not in self._objects:
            raise SymbolResolutionError(f"shared object {shared_object!r} not found")
        return list(self._objects[shared_object])

    def resolve(self, shared_object: str, runfunc: str) -> Kernel:
        """Look up a kernel symbol; raises like a failed ``dlsym``."""
        obj = self._objects.get(shared_object)
        if obj is None:
            raise SymbolResolutionError(
                f"shared object {shared_object!r} not found (registered: "
                f"{sorted(self._objects)})"
            )
        fn = obj.get(runfunc)
        if fn is None:
            raise SymbolResolutionError(
                f"symbol {runfunc!r} not found in shared object "
                f"{shared_object!r}"
            )
        return fn

    def merged_with(self, other: "KernelLibrary") -> "KernelLibrary":
        """A new library containing both registries (other wins conflicts)."""
        merged = KernelLibrary()
        for name, syms in self._objects.items():
            merged._objects[name] = dict(syms)
        for name, syms in other._objects.items():
            merged._objects.setdefault(name, {}).update(syms)
        return merged
