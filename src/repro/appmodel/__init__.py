"""Application model: Listing-1-compatible task graphs.

An application is (a) a *shared object* of kernels — here a registered
Python module/dict of callables — and (b) a JSON task-graph describing
variables (with byte-level storage specs), DAG nodes, and per-node platform
bindings (PE type + ``runfunc`` symbol + optional per-platform shared
object), exactly mirroring Listing 1 of the paper.
"""

from repro.appmodel.variables import (
    VariableSpec,
    MemoryPool,
    VariableBinding,
    VariableTable,
    scalar_spec,
    buffer_spec,
)
from repro.appmodel.dag import PlatformBinding, TaskNode, TaskGraph
from repro.appmodel.library import KernelLibrary, KernelContext
from repro.appmodel.jsonspec import graph_to_json, graph_from_json, load_graph, dump_graph
from repro.appmodel.builder import GraphBuilder
from repro.appmodel.instance import ApplicationInstance, TaskInstance, TaskState

__all__ = [
    "VariableSpec",
    "MemoryPool",
    "VariableBinding",
    "VariableTable",
    "scalar_spec",
    "buffer_spec",
    "PlatformBinding",
    "TaskNode",
    "TaskGraph",
    "KernelLibrary",
    "KernelContext",
    "graph_to_json",
    "graph_from_json",
    "load_graph",
    "dump_graph",
    "GraphBuilder",
    "ApplicationInstance",
    "TaskInstance",
    "TaskState",
]
