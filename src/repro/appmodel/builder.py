"""Fluent builder for task graphs.

The paper's second application-integration path: "leverage the existing
library of kernels ... and define a new application simply by linking them
together in a novel way."  The builder assembles variables and nodes,
auto-derives predecessor lists from declared successors (or vice versa), and
hands back a fully validated :class:`TaskGraph`.
"""

from __future__ import annotations

import numpy as np

from repro.appmodel.dag import PlatformBinding, TaskGraph, TaskNode
from repro.appmodel.variables import VariableSpec, buffer_spec, scalar_spec
from repro.common.errors import ApplicationSpecError


class GraphBuilder:
    """Accumulates variables, nodes, and edges, then builds a TaskGraph."""

    def __init__(self, app_name: str, shared_object: str) -> None:
        self.app_name = app_name
        self.shared_object = shared_object
        self._variables: dict[str, VariableSpec] = {}
        self._node_args: dict[str, tuple[str, ...]] = {}
        self._node_platforms: dict[str, tuple[PlatformBinding, ...]] = {}
        self._edges: set[tuple[str, str]] = set()
        self._setup: str | None = None

    # -- variables -------------------------------------------------------------

    def variable(self, spec: VariableSpec) -> "GraphBuilder":
        if spec.name in self._variables:
            raise ApplicationSpecError(f"duplicate variable {spec.name!r}")
        self._variables[spec.name] = spec
        return self

    def scalar(self, name: str, value: int = 0, nbytes: int = 4) -> "GraphBuilder":
        return self.variable(scalar_spec(name, value, nbytes))

    def buffer(
        self,
        name: str,
        alloc_bytes: int,
        init: bytes | np.ndarray | None = None,
        dtype: str | None = None,
    ) -> "GraphBuilder":
        return self.variable(buffer_spec(name, alloc_bytes, init, dtype))

    def setup(self, symbol: str) -> "GraphBuilder":
        """Symbol run once per instance at initialization (populates inputs)."""
        self._setup = symbol
        return self

    # -- nodes and edges ---------------------------------------------------------

    def node(
        self,
        name: str,
        *,
        args: tuple[str, ...] | list[str] = (),
        platforms: list[PlatformBinding] | None = None,
        cpu: str | None = None,
        after: tuple[str, ...] | list[str] = (),
    ) -> "GraphBuilder":
        """Add a node.

        ``cpu="symbol"`` is shorthand for a single CPU platform binding;
        ``platforms`` gives the full list.  ``after`` adds dependency edges
        from the named nodes.
        """
        if name in self._node_args:
            raise ApplicationSpecError(f"duplicate node {name!r}")
        bindings: list[PlatformBinding] = list(platforms or ())
        if cpu is not None:
            bindings.insert(0, PlatformBinding(name="cpu", runfunc=cpu))
        if not bindings:
            raise ApplicationSpecError(f"node {name!r}: no platform bindings given")
        self._node_args[name] = tuple(args)
        self._node_platforms[name] = tuple(bindings)
        for pred in after:
            self.edge(pred, name)
        return self

    def edge(self, src: str, dst: str) -> "GraphBuilder":
        """Declare that ``dst`` depends on ``src``."""
        self._edges.add((src, dst))
        return self

    def chain(self, *names: str) -> "GraphBuilder":
        """Declare a linear dependency chain across already-added nodes."""
        for src, dst in zip(names, names[1:]):
            self.edge(src, dst)
        return self

    # -- build --------------------------------------------------------------------

    def build(self) -> TaskGraph:
        preds: dict[str, list[str]] = {n: [] for n in self._node_args}
        succs: dict[str, list[str]] = {n: [] for n in self._node_args}
        for src, dst in sorted(self._edges):
            if src not in self._node_args:
                raise ApplicationSpecError(f"edge references unknown node {src!r}")
            if dst not in self._node_args:
                raise ApplicationSpecError(f"edge references unknown node {dst!r}")
            succs[src].append(dst)
            preds[dst].append(src)
        nodes = {
            name: TaskNode(
                name=name,
                arguments=self._node_args[name],
                predecessors=tuple(preds[name]),
                successors=tuple(succs[name]),
                platforms=self._node_platforms[name],
            )
            for name in self._node_args
        }
        return TaskGraph(
            app_name=self.app_name,
            shared_object=self.shared_object,
            variables=self._variables,
            nodes=nodes,
            setup=self._setup,
        )
