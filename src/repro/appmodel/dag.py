"""Task graphs: nodes, platform bindings, and structural validation.

A :class:`TaskGraph` is the archetype parsed from JSON; the application
handler instantiates it into :class:`~repro.appmodel.instance.ApplicationInstance`
copies at workload-creation time.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.appmodel.variables import VariableSpec
from repro.common.errors import ApplicationSpecError


@dataclass(frozen=True)
class PlatformBinding:
    """One supported execution platform for a task node.

    ``name`` is the PE *type* ("cpu", "fft", "big", "little", ...),
    ``runfunc`` the kernel symbol, and ``shared_object`` an optional
    per-platform kernel library overriding the application's default
    (Listing 1's ``fft_accel.so`` on the FFT_0 node).
    """

    name: str
    runfunc: str
    shared_object: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ApplicationSpecError("platform name must be non-empty")
        if not self.runfunc:
            raise ApplicationSpecError(
                f"platform {self.name!r}: runfunc must be non-empty"
            )


@dataclass
class TaskNode:
    """One node of the application DAG (Listing 1's ``DAG`` entries)."""

    name: str
    arguments: tuple[str, ...] = ()
    predecessors: tuple[str, ...] = ()
    successors: tuple[str, ...] = ()
    platforms: tuple[PlatformBinding, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ApplicationSpecError("task node name must be non-empty")
        if not self.platforms:
            raise ApplicationSpecError(
                f"node {self.name!r}: at least one platform binding is required"
            )
        seen: set[str] = set()
        for p in self.platforms:
            if p.name in seen:
                raise ApplicationSpecError(
                    f"node {self.name!r}: duplicate platform {p.name!r}"
                )
            seen.add(p.name)

    def platform_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.platforms)

    def binding_for(self, platform: str) -> PlatformBinding:
        for p in self.platforms:
            if p.name == platform:
                return p
        raise ApplicationSpecError(
            f"node {self.name!r} has no binding for platform {platform!r}"
        )

    def supports(self, platform: str) -> bool:
        return any(p.name == platform for p in self.platforms)

    def binding_for_any(
        self, accepted: tuple[str, ...]
    ) -> PlatformBinding | None:
        """First binding matching the accepted platform names, preferring
        earlier ``accepted`` entries (exact PE type before generic 'cpu')."""
        for name in accepted:
            for p in self.platforms:
                if p.name == name:
                    return p
        return None

    def supports_any(self, accepted: tuple[str, ...]) -> bool:
        return self.binding_for_any(accepted) is not None


class TaskGraph:
    """An application archetype: variables + DAG + default shared object."""

    def __init__(
        self,
        app_name: str,
        shared_object: str,
        variables: dict[str, VariableSpec],
        nodes: dict[str, TaskNode],
        setup: str | None = None,
    ) -> None:
        if not app_name:
            raise ApplicationSpecError("AppName must be non-empty")
        if not shared_object:
            raise ApplicationSpecError("SharedObject must be non-empty")
        if not nodes:
            raise ApplicationSpecError(f"app {app_name!r}: DAG has no nodes")
        self.app_name = app_name
        self.shared_object = shared_object
        self.variables = dict(variables)
        self.nodes = dict(nodes)
        #: optional symbol run once per instance at initialization to
        #: populate input buffers (framework extension; see apps/).
        self.setup = setup
        self._validate_structure()
        self._topo_order = self._compute_topo_order()

    # -- structural checks ----------------------------------------------------

    def _validate_structure(self) -> None:
        for name, node in self.nodes.items():
            if node.name != name:
                raise ApplicationSpecError(
                    f"app {self.app_name!r}: node keyed {name!r} is named "
                    f"{node.name!r}"
                )
            for arg in node.arguments:
                if arg not in self.variables:
                    raise ApplicationSpecError(
                        f"app {self.app_name!r}, node {name!r}: unknown "
                        f"argument variable {arg!r}"
                    )
            for pred in node.predecessors:
                if pred not in self.nodes:
                    raise ApplicationSpecError(
                        f"app {self.app_name!r}, node {name!r}: unknown "
                        f"predecessor {pred!r}"
                    )
            for succ in node.successors:
                if succ not in self.nodes:
                    raise ApplicationSpecError(
                        f"app {self.app_name!r}, node {name!r}: unknown "
                        f"successor {succ!r}"
                    )
        # predecessor/successor lists must be mutually consistent.
        for name, node in self.nodes.items():
            for succ in node.successors:
                if name not in self.nodes[succ].predecessors:
                    raise ApplicationSpecError(
                        f"app {self.app_name!r}: {name!r} lists successor "
                        f"{succ!r}, but {succ!r} does not list {name!r} as a "
                        "predecessor"
                    )
            for pred in node.predecessors:
                if name not in self.nodes[pred].successors:
                    raise ApplicationSpecError(
                        f"app {self.app_name!r}: {name!r} lists predecessor "
                        f"{pred!r}, but {pred!r} does not list {name!r} as a "
                        "successor"
                    )

    def _compute_topo_order(self) -> tuple[str, ...]:
        graph = self.to_networkx()
        try:
            order = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle = nx.find_cycle(graph)
            raise ApplicationSpecError(
                f"app {self.app_name!r}: DAG contains a cycle: {cycle}"
            ) from None
        return tuple(order)

    # -- queries ---------------------------------------------------------------

    @property
    def task_count(self) -> int:
        return len(self.nodes)

    def head_nodes(self) -> tuple[str, ...]:
        """Nodes with no predecessors (injected as initially ready)."""
        return tuple(n for n, node in self.nodes.items() if not node.predecessors)

    def tail_nodes(self) -> tuple[str, ...]:
        return tuple(n for n, node in self.nodes.items() if not node.successors)

    def topological_order(self) -> tuple[str, ...]:
        return self._topo_order

    def platform_types(self) -> set[str]:
        """All PE types any node of this application can run on."""
        return {p.name for node in self.nodes.values() for p in node.platforms}

    def to_networkx(self) -> nx.DiGraph:
        graph = nx.DiGraph(app_name=self.app_name)
        graph.add_nodes_from(self.nodes)
        for name, node in self.nodes.items():
            graph.add_edges_from((name, s) for s in node.successors)
        return graph

    def critical_path_length(self, weight_fn=None) -> float:
        """Longest path length; ``weight_fn(node_name) -> float`` defaults
        to unit weights (counts tasks on the critical path)."""
        if weight_fn is None:
            weight_fn = lambda _n: 1.0
        dist: dict[str, float] = {}
        for name in self._topo_order:
            node = self.nodes[name]
            best = max((dist[p] for p in node.predecessors), default=0.0)
            dist[name] = best + weight_fn(name)
        return max(dist.values())

    def upward_rank_lengths(self, weight_fn=None) -> dict[str, float]:
        """Per-node longest path to the exit — the list-scheduling
        "upward rank" skeleton (HEFT/cprank priorities are this with
        mean-execution-time weights).  ``weight_fn(node_name) -> float``
        defaults to unit weights; an exit node's rank is its own weight,
        and ``max(result.values())`` equals :meth:`critical_path_length`
        under the same weights."""
        if weight_fn is None:
            weight_fn = lambda _n: 1.0
        ranks: dict[str, float] = {}
        for name in reversed(self._topo_order):
            node = self.nodes[name]
            best = max((ranks[s] for s in node.successors), default=0.0)
            ranks[name] = weight_fn(name) + best
        return ranks

    def total_variable_bytes(self) -> int:
        return sum(spec.storage_bytes for spec in self.variables.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskGraph({self.app_name!r}, tasks={self.task_count}, "
            f"vars={len(self.variables)})"
        )
