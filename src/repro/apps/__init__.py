"""Domain applications: the paper's SDR workload suite.

Four applications from the software-defined-radio domain, each expressed as
a kernel shared-object plus a Listing-1 task graph:

* :mod:`repro.apps.range_detection` — radar range detection (Fig. 2), 6 tasks.
* :mod:`repro.apps.pulse_doppler` — pulse-Doppler radar (Fig. 8), 770 tasks.
* :mod:`repro.apps.wifi_tx` — WiFi transmitter chain (Fig. 7), 7 tasks.
* :mod:`repro.apps.wifi_rx` — WiFi receiver chain (Fig. 7), 9 tasks.

:mod:`repro.apps.registry` wires all four into a ready-to-use application
repository + kernel library.
"""

from repro.apps.registry import (
    default_kernel_library,
    default_applications,
    build_application,
    APPLICATION_BUILDERS,
)

__all__ = [
    "default_kernel_library",
    "default_applications",
    "build_application",
    "APPLICATION_BUILDERS",
]
