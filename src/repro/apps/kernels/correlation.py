"""Frequency-domain correlation blocks (Figs. 2 and 8).

Range detection and pulse Doppler both correlate a received signal against
a reference by multiplying one spectrum with the complex conjugate of the
other and inverse-transforming.
"""

from __future__ import annotations

import numpy as np


def conjugate(x: np.ndarray) -> np.ndarray:
    """Element-wise complex conjugate."""
    return np.conj(np.asarray(x))


def vector_multiply(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise product (spectra must have equal length)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return a * b


def correlate_spectra(rx_spectrum: np.ndarray, ref_spectrum: np.ndarray) -> np.ndarray:
    """Cross-correlation spectrum: ``RX * conj(REF)``."""
    return vector_multiply(rx_spectrum, conjugate(ref_spectrum))


def xcorr_fd(rx: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """Full frequency-domain circular cross-correlation (reference path)."""
    rx = np.asarray(rx)
    ref = np.asarray(ref)
    if rx.shape != ref.shape:
        raise ValueError(f"shape mismatch: {rx.shape} vs {ref.shape}")
    return np.fft.ifft(np.fft.fft(rx) * np.conj(np.fft.fft(ref)))


def find_peak(corr: np.ndarray, sampling_rate: float = 1.0) -> tuple[int, float, float]:
    """Peak search: returns ``(index, peak_magnitude, lag_seconds)``."""
    mag = np.abs(np.asarray(corr))
    idx = int(np.argmax(mag))
    return idx, float(mag[idx]), idx / sampling_rate
