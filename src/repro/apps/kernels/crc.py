"""CRC-32 (IEEE 802.3 polynomial) over bit streams.

Implemented directly over 0/1 bit arrays since the WiFi chains carry
payloads as bits; matches binascii.crc32 for byte-aligned inputs (verified
in the tests).
"""

from __future__ import annotations

import numpy as np

_POLY = 0xEDB88320  # reflected 0x04C11DB7


def crc32_bits(bits: np.ndarray) -> int:
    """CRC-32 of a bit stream (LSB-first within each byte, per 802.3)."""
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if np.any(data > 1):
        raise ValueError("bits must be 0/1 valued")
    crc = 0xFFFFFFFF
    for bit in data:
        crc ^= int(bit)
        crc = (crc >> 1) ^ (_POLY if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


def crc32_bytes(payload: bytes) -> int:
    """CRC-32 of bytes via the bit-level routine (LSB-first per byte)."""
    bits = np.unpackbits(
        np.frombuffer(payload, dtype=np.uint8), bitorder="little"
    )
    return crc32_bits(bits)


def check_crc32(bits: np.ndarray, expected: int) -> bool:
    """True when the stream's CRC matches ``expected`` (mod 2³²)."""
    return crc32_bits(bits) == (expected & 0xFFFFFFFF)
