"""802.11-style frame scrambler.

A 7-bit LFSR with polynomial x⁷ + x⁴ + 1 whitens the payload bits; the
identical operation descrambles (XOR with the same sequence), so WiFi RX's
descrambler reuses the generator with the same seed.
"""

from __future__ import annotations

import numpy as np

_DEFAULT_SEED = 0b1011101  # non-zero 7-bit initial state (802.11 example)


def scrambler_sequence(n_bits: int, seed: int = _DEFAULT_SEED) -> np.ndarray:
    """The first ``n_bits`` of the LFSR output sequence (uint8 0/1)."""
    if n_bits < 0:
        raise ValueError("n_bits must be non-negative")
    if not 0 < seed < 128:
        raise ValueError("seed must be a non-zero 7-bit value")
    state = seed
    out = np.empty(n_bits, dtype=np.uint8)
    for i in range(n_bits):
        bit = ((state >> 6) ^ (state >> 3)) & 1  # taps at x^7 and x^4
        state = ((state << 1) | bit) & 0x7F
        out[i] = bit
    return out


def scramble(bits: np.ndarray, seed: int = _DEFAULT_SEED) -> np.ndarray:
    """XOR payload bits with the LFSR sequence."""
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if np.any(data > 1):
        raise ValueError("bits must be 0/1 valued")
    return data ^ scrambler_sequence(data.size, seed)


def descramble(bits: np.ndarray, seed: int = _DEFAULT_SEED) -> np.ndarray:
    """Inverse of :func:`scramble` (self-inverse XOR whitening)."""
    return scramble(bits, seed)
