"""AWGN channel model (the block between TX and RX in Fig. 7)."""

from __future__ import annotations

import numpy as np


def awgn(
    signal: np.ndarray,
    snr_db: float,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Add complex white Gaussian noise at the given SNR.

    Noise power is set relative to the *measured* signal power, so the SNR
    is exact for the given realization.
    """
    x = np.asarray(signal, dtype=np.complex128)
    if rng is None:
        rng = np.random.default_rng()
    power = float(np.mean(np.abs(x) ** 2))
    if power == 0.0:
        return x.copy()
    noise_power = power / (10.0 ** (snr_db / 10.0))
    scale = np.sqrt(noise_power / 2.0)
    noise = scale * (rng.standard_normal(x.size) + 1j * rng.standard_normal(x.size))
    return x + noise


def measured_snr_db(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Empirical SNR between a clean signal and its noisy observation."""
    clean = np.asarray(clean, dtype=np.complex128)
    noisy = np.asarray(noisy, dtype=np.complex128)
    noise = noisy - clean
    signal_power = float(np.mean(np.abs(clean) ** 2))
    noise_power = float(np.mean(np.abs(noise) ** 2))
    if noise_power == 0.0:
        return float("inf")
    return 10.0 * np.log10(signal_power / noise_power)
