"""Block interleaver / deinterleaver.

A row-in / column-out block interleaver spreads adjacent coded bits across
the OFDM symbol so burst errors decorrelate before Viterbi decoding — the
802.11 first-permutation structure, parameterized by column count.
"""

from __future__ import annotations

import numpy as np


def interleave(bits: np.ndarray, n_columns: int = 16) -> np.ndarray:
    """Write row-major, read column-major.  Length must divide evenly."""
    data = np.asarray(bits)
    if data.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if n_columns <= 0:
        raise ValueError("n_columns must be positive")
    if data.size % n_columns != 0:
        raise ValueError(
            f"length {data.size} not divisible by {n_columns} columns"
        )
    return data.reshape(-1, n_columns).T.reshape(-1).copy()


def deinterleave(bits: np.ndarray, n_columns: int = 16) -> np.ndarray:
    """Inverse of :func:`interleave` with the same column count."""
    data = np.asarray(bits)
    if data.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if n_columns <= 0:
        raise ValueError("n_columns must be positive")
    if data.size % n_columns != 0:
        raise ValueError(
            f"length {data.size} not divisible by {n_columns} columns"
        )
    n_rows = data.size // n_columns
    return data.reshape(n_columns, n_rows).T.reshape(-1).copy()
