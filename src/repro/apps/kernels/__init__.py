"""Signal-processing kernel primitives.

Pure NumPy functions (array in → array out) used by the application kernel
shared-objects, the toolchain's recognition library, and the tests.  Each
module covers one block family from the paper's application diagrams.
"""

from repro.apps.kernels import (
    channel,
    coding,
    correlation,
    crc,
    doppler,
    fftops,
    interleaver,
    lfm,
    matched_filter,
    modulation,
    pilots,
    scrambler,
)

__all__ = [
    "channel",
    "coding",
    "correlation",
    "crc",
    "doppler",
    "fftops",
    "interleaver",
    "lfm",
    "matched_filter",
    "modulation",
    "pilots",
    "scrambler",
]
