"""Matched filtering and payload extraction (WiFi RX front end, Fig. 7)."""

from __future__ import annotations

import numpy as np


def preamble_sequence(length: int = 32, seed: int = 0x5EED) -> np.ndarray:
    """The known synchronization preamble: a fixed pseudo-random QPSK burst.

    Deterministic in ``seed`` so TX and RX agree without sharing state.
    """
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=2 * length)
    i = 1.0 - 2.0 * bits[0::2]
    q = 1.0 - 2.0 * bits[1::2]
    return ((i + 1j * q) / np.sqrt(2.0)).astype(np.complex128)


def matched_filter(rx: np.ndarray, template: np.ndarray) -> np.ndarray:
    """Correlate the received stream against the known template.

    Output index k holds the correlation of ``rx[k : k+len(template)]`` with
    the template (valid-mode sliding correlation).
    """
    rx = np.asarray(rx, dtype=np.complex128)
    t = np.conj(np.asarray(template, dtype=np.complex128))[::-1]
    if t.size > rx.size:
        raise ValueError("template longer than received stream")
    return np.convolve(rx, t, mode="valid")


def detect_frame_start(rx: np.ndarray, template: np.ndarray) -> int:
    """Index where the preamble begins (peak of the matched filter)."""
    corr = matched_filter(rx, template)
    return int(np.argmax(np.abs(corr)))


def extract_payload(rx: np.ndarray, frame_start: int, preamble_len: int,
                    payload_len: int) -> np.ndarray:
    """Slice the payload samples following the detected preamble."""
    begin = frame_start + preamble_len
    end = begin + payload_len
    rx = np.asarray(rx)
    if end > rx.size:
        raise ValueError(
            f"payload [{begin}:{end}] runs past the received stream "
            f"of {rx.size} samples"
        )
    return rx[begin:end].copy()
