"""QPSK modulation / demodulation with Gray mapping.

Bit pairs map to constellation points at ±1/√2 ± j/√2; demodulation is a
hard decision on the sign of each axis, so ``demod(mod(x)) == x`` for any
bit stream, and small AWGN perturbations are rejected.
"""

from __future__ import annotations

import numpy as np

_SCALE = 1.0 / np.sqrt(2.0)


def qpsk_modulate(bits: np.ndarray) -> np.ndarray:
    """Map bit pairs (b0 = I, b1 = Q) to complex symbols."""
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1 or data.size % 2 != 0:
        raise ValueError("bits must be 1-D with even length")
    if np.any(data > 1):
        raise ValueError("bits must be 0/1 valued")
    i = 1.0 - 2.0 * data[0::2]  # bit 0 -> +1, bit 1 -> -1
    q = 1.0 - 2.0 * data[1::2]
    return (_SCALE * (i + 1j * q)).astype(np.complex128)


def qpsk_demodulate(symbols: np.ndarray) -> np.ndarray:
    """Hard-decision demap back to a bit stream."""
    sym = np.asarray(symbols)
    if sym.ndim != 1:
        raise ValueError("symbols must be a 1-D array")
    bits = np.empty(2 * sym.size, dtype=np.uint8)
    bits[0::2] = (sym.real < 0).astype(np.uint8)
    bits[1::2] = (sym.imag < 0).astype(np.uint8)
    return bits
