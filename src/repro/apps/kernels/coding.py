"""Convolutional coding: rate-1/2 K=7 encoder and Viterbi decoder.

The industry-standard (171, 133)₈ code used by 802.11a/g.  The Viterbi
decoder is a full hard-decision implementation with traceback; it is the
compute-dominant kernel of WiFi RX (as on real silicon — the paper's
Table I shows RX ≈ 17× TX).
"""

from __future__ import annotations

import numpy as np

K = 7  # constraint length
G0 = 0o171
G1 = 0o133
_N_STATES = 1 << (K - 1)


def _parity(x: int) -> int:
    return bin(x).count("1") & 1


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """next_state[state, bit] and output symbol out[state, bit] (2 bits)."""
    next_state = np.zeros((_N_STATES, 2), dtype=np.int32)
    outputs = np.zeros((_N_STATES, 2), dtype=np.int8)
    for state in range(_N_STATES):
        for bit in range(2):
            register = (bit << (K - 1)) | state
            out0 = _parity(register & G0)
            out1 = _parity(register & G1)
            next_state[state, bit] = register >> 1
            outputs[state, bit] = (out0 << 1) | out1
    return next_state, outputs


_NEXT_STATE, _OUTPUTS = _build_tables()


def conv_encode(bits: np.ndarray, terminate: bool = True) -> np.ndarray:
    """Encode 0/1 bits at rate 1/2; ``terminate`` appends K-1 zero tail bits
    so the decoder can assume a final all-zeros state."""
    data = np.asarray(bits, dtype=np.uint8)
    if data.ndim != 1:
        raise ValueError("bits must be a 1-D array")
    if np.any(data > 1):
        raise ValueError("bits must be 0/1 valued")
    if terminate:
        data = np.concatenate([data, np.zeros(K - 1, dtype=np.uint8)])
    out = np.empty(2 * data.size, dtype=np.uint8)
    state = 0
    for i, bit in enumerate(data):
        symbol = _OUTPUTS[state, bit]
        out[2 * i] = (symbol >> 1) & 1
        out[2 * i + 1] = symbol & 1
        state = _NEXT_STATE[state, bit]
    return out


def viterbi_decode(coded: np.ndarray, n_payload_bits: int | None = None) -> np.ndarray:
    """Hard-decision Viterbi decode of a rate-1/2 terminated stream.

    Returns the payload bits (tail bits stripped when ``n_payload_bits`` is
    given or inferred from termination).
    """
    symbols = np.asarray(coded, dtype=np.uint8)
    if symbols.ndim != 1 or symbols.size % 2 != 0:
        raise ValueError("coded stream must be 1-D with even length")
    n_steps = symbols.size // 2
    if n_steps < K - 1:
        raise ValueError("coded stream shorter than the termination tail")
    received = (symbols[0::2].astype(np.int8) << 1) | symbols[1::2].astype(np.int8)

    # Branch metric: Hamming distance between each state/bit output symbol
    # and the received symbol, per step — vectorized over states.
    inf = np.int32(1 << 20)
    metrics = np.full(_N_STATES, inf, dtype=np.int32)
    metrics[0] = 0
    decisions = np.empty((n_steps, _N_STATES), dtype=np.int8)
    prev_states = np.empty((n_steps, _N_STATES), dtype=np.int32)

    # Precompute, for each destination state, its two (source, bit) arrivals.
    src = np.empty((_N_STATES, 2), dtype=np.int32)
    src_bit = np.empty((_N_STATES, 2), dtype=np.int8)
    fill = np.zeros(_N_STATES, dtype=np.int32)
    for state in range(_N_STATES):
        for bit in range(2):
            dst = _NEXT_STATE[state, bit]
            slot = fill[dst]
            src[dst, slot] = state
            src_bit[dst, slot] = bit
            fill[dst] = slot + 1
    out_sym = _OUTPUTS[src, src_bit]  # (states, 2) expected symbols

    hamming = np.array([[0, 1, 1, 2], [1, 0, 2, 1], [1, 2, 0, 1], [2, 1, 1, 0]],
                       dtype=np.int32)
    for step in range(n_steps):
        r = received[step]
        branch = hamming[out_sym, r]  # (states, 2)
        cand = metrics[src] + branch  # (states, 2)
        choice = np.argmin(cand, axis=1).astype(np.int8)
        rows = np.arange(_N_STATES)
        metrics = cand[rows, choice]
        decisions[step] = src_bit[rows, choice]
        prev_states[step] = src[rows, choice]

    # Traceback from the all-zeros state (terminated stream).
    state = 0
    bits = np.empty(n_steps, dtype=np.uint8)
    for step in range(n_steps - 1, -1, -1):
        bits[step] = decisions[step, state]
        state = prev_states[step, state]

    if n_payload_bits is None:
        n_payload_bits = n_steps - (K - 1)
    if not 0 <= n_payload_bits <= n_steps:
        raise ValueError(f"n_payload_bits {n_payload_bits} out of range")
    return bits[:n_payload_bits]
