"""OFDM pilot insertion / removal for a 64-point symbol.

The 802.11a layout: 48 data subcarriers, 4 pilot tones (at logical
positions -21, -7, +7, +21 → indices 7, 21, 43, 57 of the 64-slot symbol
after DC shift), and the remainder (DC + band edges) nulled.
"""

from __future__ import annotations

import numpy as np

SYMBOL_SIZE = 64
PILOT_INDICES = np.array([7, 21, 43, 57])
PILOT_VALUES = np.array([1.0 + 0j, 1.0 + 0j, 1.0 + 0j, -1.0 + 0j])
NULL_INDICES = np.array([0, 1, 2, 3, 4, 5, 32, 59, 60, 61, 62, 63])
DATA_INDICES = np.array(
    [i for i in range(SYMBOL_SIZE)
     if i not in set(PILOT_INDICES.tolist()) | set(NULL_INDICES.tolist())]
)
N_DATA = len(DATA_INDICES)  # 48


def insert_pilots(data_symbols: np.ndarray) -> np.ndarray:
    """Place 48 data symbols into a 64-slot OFDM symbol with pilots."""
    sym = np.asarray(data_symbols)
    if sym.shape != (N_DATA,):
        raise ValueError(f"expected {N_DATA} data symbols, got {sym.shape}")
    frame = np.zeros(SYMBOL_SIZE, dtype=np.complex128)
    frame[DATA_INDICES] = sym
    frame[PILOT_INDICES] = PILOT_VALUES
    return frame


def remove_pilots(frame: np.ndarray) -> np.ndarray:
    """Extract the 48 data symbols from a 64-slot OFDM symbol."""
    full = np.asarray(frame)
    if full.shape != (SYMBOL_SIZE,):
        raise ValueError(f"expected a {SYMBOL_SIZE}-slot symbol, got {full.shape}")
    return full[DATA_INDICES].copy()


def pilot_error(frame: np.ndarray) -> float:
    """RMS deviation of received pilots from their known values (a cheap
    channel-quality estimate receivers use before demodulation)."""
    full = np.asarray(frame)
    diff = full[PILOT_INDICES] - PILOT_VALUES
    return float(np.sqrt(np.mean(np.abs(diff) ** 2)))
