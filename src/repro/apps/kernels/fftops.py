"""Fourier transforms: optimized wrappers and naive loop-based DFTs.

The naive O(n²) implementations mirror the monolithic C range-detection
code of the paper's Case Study 4 — "simple for-loop based DFTs" — and are
what the toolchain's kernel recognition replaces with the optimized FFT
(the paper's FFTW substitution, ~102× on ARM) or an accelerator invocation
(~94×).  They are deliberately written as explicit Python loops so the
speedup is real and measurable.
"""

from __future__ import annotations

import cmath

import numpy as np


def fft(x: np.ndarray) -> np.ndarray:
    """Optimized forward FFT (the FFTW-analog invocation)."""
    return np.fft.fft(np.asarray(x))


def ifft(x: np.ndarray) -> np.ndarray:
    """Optimized inverse FFT."""
    return np.fft.ifft(np.asarray(x))


def fft_shift(x: np.ndarray) -> np.ndarray:
    """Swap halves so zero frequency sits at the center (Doppler display)."""
    return np.fft.fftshift(np.asarray(x))


def naive_dft(x: np.ndarray) -> np.ndarray:
    """Loop-based O(n²) DFT — the unoptimized kernel of Case Study 4.

    X[k] = sum_n x[n] * exp(-2πi k n / N)
    """
    data = list(np.asarray(x, dtype=np.complex128))
    n = len(data)
    out = [0j] * n
    for k in range(n):
        acc = 0j
        w = -2j * cmath.pi * k / n
        for i in range(n):
            acc += data[i] * cmath.exp(w * i)
        out[k] = acc
    return np.asarray(out, dtype=np.complex128)


def naive_idft(x: np.ndarray) -> np.ndarray:
    """Loop-based O(n²) inverse DFT (includes the 1/N normalization)."""
    data = list(np.asarray(x, dtype=np.complex128))
    n = len(data)
    out = [0j] * n
    for k in range(n):
        acc = 0j
        w = 2j * cmath.pi * k / n
        for i in range(n):
            acc += data[i] * cmath.exp(w * i)
        out[k] = acc / n
    return np.asarray(out, dtype=np.complex128)


def next_pow2(n: int) -> int:
    """Smallest power of two >= n."""
    if n <= 1:
        return 1
    return 1 << (int(n - 1).bit_length())
