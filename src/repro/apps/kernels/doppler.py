"""Pulse-Doppler radar processing helpers (Fig. 8).

A burst of ``m`` pulses is correlated per pulse against the reference
waveform (range compression), the resulting m×n matrix is *realigned*
(transposed so slow time becomes contiguous), and an FFT across pulses in
each range bin resolves Doppler; the peak of the range-Doppler map gives
the target's range gate and velocity bin.
"""

from __future__ import annotations

import numpy as np


def realign_matrix(rows: np.ndarray, n_pulses: int, n_samples: int) -> np.ndarray:
    """Reshape a flat pulse-major buffer to range-major (transpose).

    Input layout: ``rows[p * n_samples + s]`` (pulse p, range sample s);
    output layout: ``out[s * n_pulses + p]``.
    """
    data = np.asarray(rows)
    if data.size != n_pulses * n_samples:
        raise ValueError(
            f"buffer of {data.size} != {n_pulses} pulses x {n_samples} samples"
        )
    return data.reshape(n_pulses, n_samples).T.reshape(-1).copy()


def doppler_spectrum(range_bin: np.ndarray) -> np.ndarray:
    """FFT across slow time for one range bin, centered with fftshift."""
    return np.fft.fftshift(np.fft.fft(np.asarray(range_bin)))


def range_doppler_map(
    pulses: np.ndarray, reference: np.ndarray
) -> np.ndarray:
    """Reference implementation of the full pipeline (used by tests).

    ``pulses`` is (m, n) complex; returns the (n_bins_kept, m) magnitude map
    where n_bins_kept = n (all range gates).
    """
    pulses = np.asarray(pulses, dtype=np.complex128)
    reference = np.asarray(reference, dtype=np.complex128)
    m, n = pulses.shape
    if reference.shape != (n,):
        raise ValueError("reference length must match pulse length")
    ref_spec = np.conj(np.fft.fft(reference))
    compressed = np.fft.ifft(np.fft.fft(pulses, axis=1) * ref_spec, axis=1)
    # slow-time FFT per range gate
    return np.abs(np.fft.fftshift(np.fft.fft(compressed, axis=0), axes=0)).T


def find_peak_2d(map_matrix: np.ndarray) -> tuple[int, int, float]:
    """(range_gate, doppler_bin, magnitude) of the map's maximum."""
    mat = np.asarray(map_matrix)
    flat_idx = int(np.argmax(np.abs(mat)))
    r, d = np.unravel_index(flat_idx, mat.shape)
    return int(r), int(d), float(np.abs(mat[r, d]))
