"""Linear-frequency-modulated (LFM) chirp waveforms for the radar apps."""

from __future__ import annotations

import numpy as np


def lfm_chirp(
    n_samples: int,
    bandwidth: float = 1.0e6,
    pulse_duration: float = 1.0e-4,
    sampling_rate: float | None = None,
) -> np.ndarray:
    """Complex baseband LFM chirp: ``exp(j π (B/T) t²)`` for t ∈ [0, T).

    ``sampling_rate`` defaults to ``n_samples / pulse_duration`` so the
    chirp exactly fills the sample window.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if sampling_rate is None:
        sampling_rate = n_samples / pulse_duration
    t = np.arange(n_samples) / sampling_rate
    slope = bandwidth / pulse_duration
    return np.exp(1j * np.pi * slope * t * t)


def delayed_echo(
    waveform: np.ndarray,
    delay_samples: int,
    attenuation: float = 0.5,
    total_len: int | None = None,
) -> np.ndarray:
    """A received echo: the transmit waveform delayed and attenuated.

    Used by the range-detection setup kernels to synthesize an ``rx`` signal
    whose round-trip delay the application must recover.
    """
    wf = np.asarray(waveform)
    if total_len is None:
        total_len = len(wf)
    if not 0 <= delay_samples < total_len:
        raise ValueError(
            f"delay_samples {delay_samples} outside [0, {total_len})"
        )
    out = np.zeros(total_len, dtype=np.complex128)
    n_copy = min(len(wf), total_len - delay_samples)
    out[delay_samples : delay_samples + n_copy] = attenuation * wf[:n_copy]
    return out
