"""Shared WiFi frame format and reference chain (Fig. 7).

One frame carries 64 payload bits (the paper: "64 bits of data in one
frame").  Rate-1/2 K=7 coding with termination yields 140 coded bits,
zero-padded to 192 so they fill exactly two 48-data-subcarrier OFDM symbols
after QPSK.  A 32-sample known preamble precedes the 128 payload samples.

The pure-function reference chain here is used by the RX application's
setup (to synthesize its received stream), by the tests (TX→AWGN→RX
round-trip), and by the toolchain's recognition probes.
"""

from __future__ import annotations

import numpy as np

from repro.apps.kernels import (
    coding,
    crc,
    interleaver,
    matched_filter,
    modulation,
    pilots,
    scrambler,
)

N_PAYLOAD_BITS = 64
N_CODED_BITS = 2 * (N_PAYLOAD_BITS + coding.K - 1)   # 140
N_OFDM_SYMBOLS = 2
BITS_PER_SYMBOL = 2 * pilots.N_DATA                   # 96 (QPSK x 48 carriers)
N_PADDED_BITS = N_OFDM_SYMBOLS * BITS_PER_SYMBOL      # 192
INTERLEAVE_COLUMNS = 16
PREAMBLE_LEN = 32
PAYLOAD_SAMPLES = N_OFDM_SYMBOLS * pilots.SYMBOL_SIZE  # 128
FRAME_SAMPLES = PREAMBLE_LEN + PAYLOAD_SAMPLES         # 160


def pad_coded_bits(coded: np.ndarray) -> np.ndarray:
    """Zero-pad the 140 coded bits to the 192-bit OFDM payload."""
    coded = np.asarray(coded, dtype=np.uint8)
    if coded.size > N_PADDED_BITS:
        raise ValueError(f"{coded.size} coded bits exceed {N_PADDED_BITS}")
    out = np.zeros(N_PADDED_BITS, dtype=np.uint8)
    out[: coded.size] = coded
    return out


def interleave_frame(bits: np.ndarray) -> np.ndarray:
    """Interleave each 96-bit OFDM-symbol block independently."""
    data = np.asarray(bits, dtype=np.uint8).reshape(N_OFDM_SYMBOLS, BITS_PER_SYMBOL)
    return np.concatenate(
        [interleaver.interleave(row, INTERLEAVE_COLUMNS) for row in data]
    )


def deinterleave_frame(bits: np.ndarray) -> np.ndarray:
    """Inverse of :func:`interleave_frame`."""
    data = np.asarray(bits, dtype=np.uint8).reshape(N_OFDM_SYMBOLS, BITS_PER_SYMBOL)
    return np.concatenate(
        [interleaver.deinterleave(row, INTERLEAVE_COLUMNS) for row in data]
    )


def map_to_ofdm(symbols: np.ndarray) -> np.ndarray:
    """96 QPSK symbols → 2×64 frequency-domain OFDM symbols (flattened)."""
    sym = np.asarray(symbols).reshape(N_OFDM_SYMBOLS, pilots.N_DATA)
    return np.concatenate([pilots.insert_pilots(row) for row in sym])


def unmap_from_ofdm(freq: np.ndarray) -> np.ndarray:
    """Inverse of :func:`map_to_ofdm`: extract the 96 data symbols."""
    frames = np.asarray(freq).reshape(N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE)
    return np.concatenate([pilots.remove_pilots(row) for row in frames])


def ofdm_ifft(freq: np.ndarray) -> np.ndarray:
    """Per-symbol 64-point unitary IFFT (frequency → time), flattened.

    Unitary normalization keeps the payload's per-sample power on the same
    scale as the unit-amplitude preamble, so channel SNR applies uniformly
    across the frame (an unnormalized IFFT would leave the payload ~16×
    quieter than the preamble).
    """
    frames = np.asarray(freq).reshape(N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE)
    return np.fft.ifft(frames, axis=1, norm="ortho").reshape(-1)


def ofdm_fft(time: np.ndarray) -> np.ndarray:
    """Per-symbol 64-point unitary FFT (time → frequency), flattened."""
    frames = np.asarray(time).reshape(N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE)
    return np.fft.fft(frames, axis=1, norm="ortho").reshape(-1)


def transmit(payload_bits: np.ndarray) -> tuple[np.ndarray, int]:
    """Reference TX chain: returns (time-domain frame incl. preamble, crc32)."""
    payload = np.asarray(payload_bits, dtype=np.uint8)
    if payload.size != N_PAYLOAD_BITS:
        raise ValueError(f"expected {N_PAYLOAD_BITS} payload bits")
    scrambled = scrambler.scramble(payload)
    coded = pad_coded_bits(coding.conv_encode(scrambled))
    interleaved = interleave_frame(coded)
    symbols = modulation.qpsk_modulate(interleaved)
    freq = map_to_ofdm(symbols)
    time = ofdm_ifft(freq)
    frame_crc = crc.crc32_bits(payload)
    frame = np.concatenate([matched_filter.preamble_sequence(PREAMBLE_LEN), time])
    return frame, frame_crc


def receive(payload_time: np.ndarray) -> np.ndarray:
    """Reference RX chain from extracted payload samples to payload bits."""
    freq = ofdm_fft(payload_time)
    symbols = unmap_from_ofdm(freq)
    bits = modulation.qpsk_demodulate(symbols)
    deinterleaved = deinterleave_frame(bits)
    decoded = coding.viterbi_decode(
        deinterleaved[:N_CODED_BITS], N_PAYLOAD_BITS
    )
    return scrambler.descramble(decoded)
