"""Pulse-Doppler radar application (Fig. 8) — 770 tasks at default size.

Per received pulse, a five-task correlator performs range compression
(pulse FFT, reference FFT, conjugate, vector multiply, IFFT); a realign
task transposes the pulse-major matrix to range-gate-major; per processed
range gate, an FFT across slow time plus an fftshift resolve Doppler; and a
final peak search reports the target's range gate and Doppler bin.

Task count (paper Table I: 770) with the default geometry of 128 pulses ×
128 samples and the central 64 range gates Doppler-processed::

    5 x 128 (correlators) + 1 (realign) + 2 x 64 (Doppler) + 1 (max) = 770

Per-pulse and per-gate tasks share kernel symbols; each task's first
argument is an index scalar identifying its pulse/gate, mirroring the C
framework passing per-node argument pointers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.appmodel.builder import GraphBuilder
from repro.appmodel.dag import PlatformBinding, TaskGraph
from repro.appmodel.library import KernelContext
from repro.apps.kernels import lfm

APP_NAME = "pulse_doppler"
SHARED_OBJECT = "pulse_doppler.so"
ACCEL_SHARED_OBJECT = "fft_accel.so"


@dataclass(frozen=True)
class PulseDopplerGeometry:
    """Problem size; the default reproduces the paper's 770-task graph."""

    n_pulses: int = 128
    n_samples: int = 128
    n_gates: int = 64     # range gates that get Doppler processing
    gate_offset: int = 32  # first processed gate (central window)

    def __post_init__(self) -> None:
        if min(self.n_pulses, self.n_samples, self.n_gates) <= 0:
            raise ValueError("geometry dimensions must be positive")
        if self.gate_offset + self.n_gates > self.n_samples:
            raise ValueError("processed gate window exceeds sample count")

    @property
    def task_count(self) -> int:
        return 5 * self.n_pulses + 2 * self.n_gates + 2


DEFAULT_GEOMETRY = PulseDopplerGeometry()

# Synthetic target injected by setup: placed mid-window so it stays inside
# the processed gates at any geometry, with a Doppler frequency scaled to
# the burst length.
TARGET_SNR_DB = 15.0
SETUP_SEED = 0xD099


def target_gate(geometry: PulseDopplerGeometry) -> int:
    """Range gate of the synthesized target (center of the window)."""
    return geometry.gate_offset + geometry.n_gates // 2


def target_doppler_cycles(geometry: PulseDopplerGeometry) -> int:
    """Doppler frequency of the target, in cycles per burst."""
    return max(1, geometry.n_pulses // 12)


# -- kernels ---------------------------------------------------------------------


def _geometry(ctx: KernelContext) -> tuple[int, int, int, int]:
    return (
        ctx.int("n_pulses"),
        ctx.int("n_samples"),
        ctx.int("n_gates"),
        ctx.int("gate_offset"),
    )


def _row(buf: np.ndarray, row: int, width: int) -> np.ndarray:
    return buf[row * width : (row + 1) * width]


def pd_setup(ctx: KernelContext) -> None:
    """Synthesize the pulse burst: delayed echoes with Doppler rotation."""
    m, n, g, off = _geometry(ctx)
    geometry = PulseDopplerGeometry(m, n, g, off)
    ref = lfm.lfm_chirp(n)
    ctx.complex64("ref")[:n] = ref.astype(np.complex64)
    rng = np.random.default_rng(SETUP_SEED)
    pulses = ctx.complex64("pulses")
    echo = lfm.delayed_echo(ref, target_gate(geometry), attenuation=0.7, total_len=n)
    cycles = target_doppler_cycles(geometry)
    noise_scale = 0.7 / (10.0 ** (TARGET_SNR_DB / 20.0))
    for p in range(m):
        phase = np.exp(2j * np.pi * cycles * p / m)
        noise = noise_scale * (
            rng.standard_normal(n) + 1j * rng.standard_normal(n)
        ) / np.sqrt(2.0)
        _row(pulses, p, n)[:] = (echo * phase + noise).astype(np.complex64)


def pd_pulse_FFT_CPU(ctx: KernelContext) -> None:
    """Fast-time FFT of one received pulse."""
    p = ctx.arg(0).as_int()
    m, n, _g, _off = _geometry(ctx)
    del m
    src = _row(ctx.complex64("pulses"), p, n)
    _row(ctx.complex64("pulse_spec"), p, n)[:] = np.fft.fft(src).astype(np.complex64)


def pd_ref_FFT_CPU(ctx: KernelContext) -> None:
    """Reference-waveform FFT for one correlator lane."""
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    ref = ctx.complex64("ref")[:n]
    _row(ctx.complex64("ref_spec"), p, n)[:] = np.fft.fft(ref).astype(np.complex64)


def pd_conjugate(ctx: KernelContext) -> None:
    """In-place conjugate of this lane's reference spectrum."""
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    lane = _row(ctx.complex64("ref_spec"), p, n)
    np.conj(lane, out=lane)


def pd_vector_multiply(ctx: KernelContext) -> None:
    """Correlation spectrum for one pulse."""
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    spec = _row(ctx.complex64("pulse_spec"), p, n)
    refc = _row(ctx.complex64("ref_spec"), p, n)
    _row(ctx.complex64("corr_spec"), p, n)[:] = spec * refc


def pd_pulse_IFFT_CPU(ctx: KernelContext) -> None:
    """Range-compressed pulse (lag domain)."""
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    src = _row(ctx.complex64("corr_spec"), p, n)
    _row(ctx.complex64("compressed"), p, n)[:] = np.fft.ifft(src).astype(np.complex64)


def pd_realign_matrix(ctx: KernelContext) -> None:
    """Transpose pulse-major compressed data to range-gate-major."""
    m, n, _g, _off = _geometry(ctx)
    compressed = ctx.complex64("compressed")[: m * n].reshape(m, n)
    ctx.complex64("realigned")[: n * m] = np.ascontiguousarray(
        compressed.T
    ).reshape(-1)


def pd_doppler_FFT_CPU(ctx: KernelContext) -> None:
    """Slow-time FFT across pulses for one processed range gate."""
    g = ctx.arg(0).as_int()
    m, _n, _gates, off = _geometry(ctx)
    gate = off + g
    src = _row(ctx.complex64("realigned"), gate, m)
    _row(ctx.complex64("doppler"), g, m)[:] = np.fft.fft(src).astype(np.complex64)


def pd_fft_shift(ctx: KernelContext) -> None:
    """Center zero Doppler for one gate's spectrum."""
    g = ctx.arg(0).as_int()
    m, _n, _gates, _off = _geometry(ctx)
    lane = _row(ctx.complex64("doppler"), g, m)
    lane[:] = np.fft.fftshift(lane)


def pd_find_max(ctx: KernelContext) -> None:
    """Peak of the range-Doppler map → range gate + Doppler bin."""
    m, _n, gates, off = _geometry(ctx)
    mat = np.abs(ctx.complex64("doppler")[: gates * m].reshape(gates, m))
    g, d = np.unravel_index(int(np.argmax(mat)), mat.shape)
    ctx.set_int("range_gate", off + int(g))
    ctx.set_int("doppler_bin", int(d))
    ctx.array("peak_mag", np.float32)[0] = np.float32(mat[g, d])


# -- accelerator kernels -----------------------------------------------------------


def _accel_lane_transform(
    ctx: KernelContext, src_name: str, dst_name: str, lane: int, width: int,
    inverse: bool,
) -> None:
    device = ctx.device
    if device is None:
        raise RuntimeError(f"{ctx.node_name}: accelerator kernel without a device")
    device.load(_row(ctx.complex64(src_name), lane, width), inverse=inverse)
    device.start()
    device.step()
    _row(ctx.complex64(dst_name), lane, width)[:] = device.read_result()


def pd_pulse_FFT_ACCEL(ctx: KernelContext) -> None:
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    _accel_lane_transform(ctx, "pulses", "pulse_spec", p, n, inverse=False)


def pd_ref_FFT_ACCEL(ctx: KernelContext) -> None:
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    device = ctx.device
    if device is None:
        raise RuntimeError(f"{ctx.node_name}: accelerator kernel without a device")
    device.load(ctx.complex64("ref")[:n], inverse=False)
    device.start()
    device.step()
    _row(ctx.complex64("ref_spec"), p, n)[:] = device.read_result()


def pd_pulse_IFFT_ACCEL(ctx: KernelContext) -> None:
    p = ctx.arg(0).as_int()
    _m, n, _g, _off = _geometry(ctx)
    _accel_lane_transform(ctx, "corr_spec", "compressed", p, n, inverse=True)


def pd_doppler_FFT_ACCEL(ctx: KernelContext) -> None:
    g = ctx.arg(0).as_int()
    m, _n, _gates, off = _geometry(ctx)
    device = ctx.device
    if device is None:
        raise RuntimeError(f"{ctx.node_name}: accelerator kernel without a device")
    device.load(_row(ctx.complex64("realigned"), off + g, m), inverse=False)
    device.start()
    device.step()
    _row(ctx.complex64("doppler"), g, m)[:] = device.read_result()


CPU_KERNELS = {
    "pd_setup": pd_setup,
    "pd_pulse_FFT_CPU": pd_pulse_FFT_CPU,
    "pd_ref_FFT_CPU": pd_ref_FFT_CPU,
    "pd_conjugate": pd_conjugate,
    "pd_vector_multiply": pd_vector_multiply,
    "pd_pulse_IFFT_CPU": pd_pulse_IFFT_CPU,
    "pd_realign_matrix": pd_realign_matrix,
    "pd_doppler_FFT_CPU": pd_doppler_FFT_CPU,
    "pd_fft_shift": pd_fft_shift,
    "pd_find_max": pd_find_max,
}

ACCEL_KERNELS = {
    "pd_pulse_FFT_ACCEL": pd_pulse_FFT_ACCEL,
    "pd_ref_FFT_ACCEL": pd_ref_FFT_ACCEL,
    "pd_pulse_IFFT_ACCEL": pd_pulse_IFFT_ACCEL,
    "pd_doppler_FFT_ACCEL": pd_doppler_FFT_ACCEL,
}


# -- task graph --------------------------------------------------------------------


def _fft_node(cpu_func: str, accel_func: str) -> list[PlatformBinding]:
    return [
        PlatformBinding(name="cpu", runfunc=cpu_func),
        PlatformBinding(
            name="fft", runfunc=accel_func, shared_object=ACCEL_SHARED_OBJECT
        ),
    ]


def build_graph(
    geometry: PulseDopplerGeometry = DEFAULT_GEOMETRY,
    app_name: str = APP_NAME,
) -> TaskGraph:
    """The pulse-Doppler archetype (770 tasks at the default geometry)."""
    m, n = geometry.n_pulses, geometry.n_samples
    gates, off = geometry.n_gates, geometry.gate_offset
    b = GraphBuilder(app_name, SHARED_OBJECT)
    b.scalar("n_pulses", m)
    b.scalar("n_samples", n)
    b.scalar("n_gates", gates)
    b.scalar("gate_offset", off)
    b.scalar("range_gate", 0)
    b.scalar("doppler_bin", 0)
    b.buffer("ref", n * 8, dtype="complex64")
    b.buffer("pulses", m * n * 8, dtype="complex64")
    b.buffer("pulse_spec", m * n * 8, dtype="complex64")
    b.buffer("ref_spec", m * n * 8, dtype="complex64")
    b.buffer("corr_spec", m * n * 8, dtype="complex64")
    b.buffer("compressed", m * n * 8, dtype="complex64")
    b.buffer("realigned", n * m * 8, dtype="complex64")
    b.buffer("doppler", gates * m * 8, dtype="complex64")
    b.buffer("peak_mag", 4, dtype="float32")
    for k in range(max(m, gates)):
        b.scalar(f"idx_{k:03d}", k)
    b.setup("pd_setup")

    geom_args = ["n_pulses", "n_samples", "n_gates", "gate_offset"]
    for p in range(m):
        idx = f"idx_{p:03d}"
        b.node(
            f"P{p:03d}_FFT",
            args=[idx, *geom_args, "pulses", "pulse_spec"],
            platforms=_fft_node("pd_pulse_FFT_CPU", "pd_pulse_FFT_ACCEL"),
        )
        b.node(
            f"P{p:03d}_RFFT",
            args=[idx, *geom_args, "ref", "ref_spec"],
            platforms=_fft_node("pd_ref_FFT_CPU", "pd_ref_FFT_ACCEL"),
        )
        b.node(
            f"P{p:03d}_CONJ",
            args=[idx, *geom_args, "ref_spec"],
            cpu="pd_conjugate",
            after=[f"P{p:03d}_RFFT"],
        )
        b.node(
            f"P{p:03d}_VMUL",
            args=[idx, *geom_args, "pulse_spec", "ref_spec", "corr_spec"],
            cpu="pd_vector_multiply",
            after=[f"P{p:03d}_FFT", f"P{p:03d}_CONJ"],
        )
        b.node(
            f"P{p:03d}_IFFT",
            args=[idx, *geom_args, "corr_spec", "compressed"],
            platforms=_fft_node("pd_pulse_IFFT_CPU", "pd_pulse_IFFT_ACCEL"),
            after=[f"P{p:03d}_VMUL"],
        )
    b.node(
        "REALIGN",
        args=[*geom_args, "compressed", "realigned"],
        cpu="pd_realign_matrix",
        after=[f"P{p:03d}_IFFT" for p in range(m)],
    )
    for g in range(gates):
        idx = f"idx_{g:03d}"
        b.node(
            f"G{g:03d}_DFFT",
            args=[idx, *geom_args, "realigned", "doppler"],
            platforms=_fft_node("pd_doppler_FFT_CPU", "pd_doppler_FFT_ACCEL"),
            after=["REALIGN"],
        )
        b.node(
            f"G{g:03d}_SHIFT",
            args=[idx, *geom_args, "doppler"],
            cpu="pd_fft_shift",
            after=[f"G{g:03d}_DFFT"],
        )
    b.node(
        "MAX",
        args=[*geom_args, "doppler", "range_gate", "doppler_bin", "peak_mag"],
        cpu="pd_find_max",
        after=[f"G{g:03d}_SHIFT" for g in range(gates)],
    )
    return b.build()


def expected_peak(geometry: PulseDopplerGeometry = DEFAULT_GEOMETRY) -> tuple[int, int]:
    """(range_gate, doppler_bin) the synthesized target should produce."""
    cycles = target_doppler_cycles(geometry)
    shifted_bin = (cycles + geometry.n_pulses // 2) % geometry.n_pulses
    return target_gate(geometry), shifted_bin


def verify_output(instance) -> bool:
    """Functional check: the detected peak matches the synthesized target."""
    geometry = PulseDopplerGeometry(
        n_pulses=instance.variables["n_pulses"].as_int(),
        n_samples=instance.variables["n_samples"].as_int(),
        n_gates=instance.variables["n_gates"].as_int(),
        gate_offset=instance.variables["gate_offset"].as_int(),
    )
    gate, bin_ = expected_peak(geometry)
    return (
        instance.variables["range_gate"].as_int() == gate
        and instance.variables["doppler_bin"].as_int() == bin_
    )
