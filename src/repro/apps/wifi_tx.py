"""WiFi transmitter application (Fig. 7, left) — 7 tasks.

A linear chain, one task per block::

    SCRAMBLER ► ENCODER ► INTERLEAVER ► QPSK_MOD ► PILOT_INSERT ► IFFT ► CRC

following the figure's order (the CRC is generated over the payload as the
frame's trailer after modulation).  The IFFT node carries an ``fft``
accelerator binding alongside its CPU binding.
"""

from __future__ import annotations

import numpy as np

from repro.appmodel.builder import GraphBuilder
from repro.appmodel.dag import PlatformBinding, TaskGraph
from repro.appmodel.library import KernelContext
from repro.apps import wifi_common as wc
from repro.apps.kernels import coding, crc, modulation, pilots, scrambler

APP_NAME = "wifi_tx"
SHARED_OBJECT = "wifi_tx.so"
ACCEL_SHARED_OBJECT = "fft_accel.so"

PAYLOAD_SEED = 0x3A5F


def reference_payload(seed: int = PAYLOAD_SEED) -> np.ndarray:
    """The deterministic 64-bit payload used by standalone instances."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=wc.N_PAYLOAD_BITS).astype(np.uint8)


# -- kernels ---------------------------------------------------------------------


def wifi_tx_setup(ctx: KernelContext) -> None:
    """Instance initialization: load the payload bits."""
    ctx.array("payload_bits", np.uint8)[:] = reference_payload()


def wifi_scrambler(ctx: KernelContext) -> None:
    ctx.array("scrambled", np.uint8)[:] = scrambler.scramble(
        ctx.array("payload_bits", np.uint8)
    )


def wifi_encoder(ctx: KernelContext) -> None:
    coded = coding.conv_encode(ctx.array("scrambled", np.uint8))
    ctx.array("coded", np.uint8)[:] = wc.pad_coded_bits(coded)


def wifi_interleaver(ctx: KernelContext) -> None:
    ctx.array("interleaved", np.uint8)[:] = wc.interleave_frame(
        ctx.array("coded", np.uint8)
    )


def wifi_qpsk_mod(ctx: KernelContext) -> None:
    ctx.complex64("symbols")[:] = modulation.qpsk_modulate(
        ctx.array("interleaved", np.uint8)
    ).astype(np.complex64)


def wifi_pilot_insert(ctx: KernelContext) -> None:
    ctx.complex64("ofdm_freq")[:] = wc.map_to_ofdm(
        ctx.complex64("symbols")
    ).astype(np.complex64)


def wifi_ifft_CPU(ctx: KernelContext) -> None:
    ctx.complex64("tx_time")[:] = wc.ofdm_ifft(
        ctx.complex64("ofdm_freq")
    ).astype(np.complex64)


def wifi_ifft_ACCEL(ctx: KernelContext) -> None:
    """Per-OFDM-symbol IFFT on the fabric accelerator (two 64-pt jobs)."""
    device = ctx.device
    if device is None:
        raise RuntimeError("wifi_ifft_ACCEL invoked without a device")
    freq = ctx.complex64("ofdm_freq").reshape(wc.N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE)
    out = ctx.complex64("tx_time").reshape(wc.N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE)
    for row in range(wc.N_OFDM_SYMBOLS):
        device.load(freq[row], inverse=True)
        device.start()
        device.step()
        out[row] = device.read_result()


def wifi_crc(ctx: KernelContext) -> None:
    """Frame trailer: CRC-32 over the payload bits."""
    value = crc.crc32_bits(ctx.array("payload_bits", np.uint8))
    ctx.array("crc_out", np.uint32)[0] = np.uint32(value)


CPU_KERNELS = {
    "wifi_tx_setup": wifi_tx_setup,
    "wifi_scrambler": wifi_scrambler,
    "wifi_encoder": wifi_encoder,
    "wifi_interleaver": wifi_interleaver,
    "wifi_qpsk_mod": wifi_qpsk_mod,
    "wifi_pilot_insert": wifi_pilot_insert,
    "wifi_ifft_CPU": wifi_ifft_CPU,
    "wifi_crc": wifi_crc,
}

ACCEL_KERNELS = {"wifi_ifft_ACCEL": wifi_ifft_ACCEL}


# -- task graph -------------------------------------------------------------------


def build_graph() -> TaskGraph:
    """The 7-task WiFi TX archetype."""
    b = GraphBuilder(APP_NAME, SHARED_OBJECT)
    b.buffer("payload_bits", wc.N_PAYLOAD_BITS, dtype="uint8")
    b.buffer("scrambled", wc.N_PAYLOAD_BITS, dtype="uint8")
    b.buffer("coded", wc.N_PADDED_BITS, dtype="uint8")
    b.buffer("interleaved", wc.N_PADDED_BITS, dtype="uint8")
    b.buffer("symbols", wc.N_PADDED_BITS // 2 * 8, dtype="complex64")
    b.buffer("ofdm_freq", wc.PAYLOAD_SAMPLES * 8, dtype="complex64")
    b.buffer("tx_time", wc.PAYLOAD_SAMPLES * 8, dtype="complex64")
    b.buffer("crc_out", 4, dtype="uint32")
    b.setup("wifi_tx_setup")

    b.node("SCRAMBLER", args=["payload_bits", "scrambled"], cpu="wifi_scrambler")
    b.node("ENCODER", args=["scrambled", "coded"], cpu="wifi_encoder",
           after=["SCRAMBLER"])
    b.node("INTERLEAVER", args=["coded", "interleaved"], cpu="wifi_interleaver",
           after=["ENCODER"])
    b.node("QPSK_MOD", args=["interleaved", "symbols"], cpu="wifi_qpsk_mod",
           after=["INTERLEAVER"])
    b.node("PILOT_INSERT", args=["symbols", "ofdm_freq"], cpu="wifi_pilot_insert",
           after=["QPSK_MOD"])
    b.node(
        "IFFT",
        args=["ofdm_freq", "tx_time"],
        platforms=[
            PlatformBinding(name="cpu", runfunc="wifi_ifft_CPU"),
            PlatformBinding(
                name="fft", runfunc="wifi_ifft_ACCEL",
                shared_object=ACCEL_SHARED_OBJECT,
            ),
        ],
        after=["PILOT_INSERT"],
    )
    b.node("CRC", args=["payload_bits", "crc_out"], cpu="wifi_crc", after=["IFFT"])
    return b.build()


def verify_output(instance) -> bool:
    """Functional check: the frame round-trips through the reference RX."""
    time = instance.variables["tx_time"].as_array(np.complex64).astype(np.complex128)
    decoded = wc.receive(time)
    expected_crc = int(instance.variables["crc_out"].as_array(np.uint32)[0])
    return (
        bool(np.array_equal(decoded, reference_payload()))
        and crc.crc32_bits(decoded) == expected_crc
    )
