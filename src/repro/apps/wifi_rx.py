"""WiFi receiver application (Fig. 7, right) — 9 tasks.

A linear chain, one task per block, with the figure's "Match Filter &
Payload Extraction" split into two tasks and an explicit CRC check to reach
the paper's Table I task count of 9::

    MATCH_FILTER ► PAYLOAD_EXTRACT ► FFT ► PILOT_REMOVE ► QPSK_DEMOD
                 ► DEINTERLEAVER ► VITERBI ► DESCRAMBLER ► CRC_CHECK

Instance setup synthesizes the received stream by running the reference TX
chain, delaying the frame by a random-but-seeded offset, and passing it
through the AWGN channel block — the full left-to-right path of Fig. 7.
"""

from __future__ import annotations

import numpy as np

from repro.appmodel.builder import GraphBuilder
from repro.appmodel.dag import PlatformBinding, TaskGraph
from repro.appmodel.library import KernelContext
from repro.apps import wifi_common as wc
from repro.apps import wifi_tx
from repro.apps.kernels import (
    channel,
    coding,
    crc,
    matched_filter,
    modulation,
    pilots,
    scrambler,
)

APP_NAME = "wifi_rx"
SHARED_OBJECT = "wifi_rx.so"
ACCEL_SHARED_OBJECT = "fft_accel.so"

RX_SNR_DB = 25.0
FRAME_DELAY = 11           # deterministic frame offset in the stream
STREAM_SAMPLES = 208       # delay + 160-sample frame + slack
RX_SEED = 0xF1F0


# -- kernels ---------------------------------------------------------------------


def wifi_rx_setup(ctx: KernelContext) -> None:
    """Synthesize the received stream: TX chain → delay → AWGN channel."""
    payload = wifi_tx.reference_payload()
    frame, frame_crc = wc.transmit(payload)
    stream = np.zeros(STREAM_SAMPLES, dtype=np.complex128)
    stream[FRAME_DELAY : FRAME_DELAY + frame.size] = frame
    rng = np.random.default_rng(RX_SEED)
    noisy = channel.awgn(stream, RX_SNR_DB, rng)
    ctx.complex64("rx_stream")[:] = noisy.astype(np.complex64)
    ctx.array("tx_crc", np.uint32)[0] = np.uint32(frame_crc)
    ctx.array("true_payload", np.uint8)[:] = payload


def wifi_match_filter(ctx: KernelContext) -> None:
    """Correlate against the known preamble; store the frame-start index."""
    stream = ctx.complex64("rx_stream").astype(np.complex128)
    template = matched_filter.preamble_sequence(wc.PREAMBLE_LEN)
    ctx.set_int("frame_start", matched_filter.detect_frame_start(stream, template))


def wifi_payload_extract(ctx: KernelContext) -> None:
    start = ctx.int("frame_start")
    stream = ctx.complex64("rx_stream").astype(np.complex128)
    payload = matched_filter.extract_payload(
        stream, start, wc.PREAMBLE_LEN, wc.PAYLOAD_SAMPLES
    )
    ctx.complex64("payload_time")[:] = payload.astype(np.complex64)


def wifi_fft_CPU(ctx: KernelContext) -> None:
    ctx.complex64("payload_freq")[:] = wc.ofdm_fft(
        ctx.complex64("payload_time")
    ).astype(np.complex64)


def wifi_fft_ACCEL(ctx: KernelContext) -> None:
    """Per-OFDM-symbol FFT on the fabric accelerator (two 64-pt jobs)."""
    device = ctx.device
    if device is None:
        raise RuntimeError("wifi_fft_ACCEL invoked without a device")
    time = ctx.complex64("payload_time").reshape(
        wc.N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE
    )
    out = ctx.complex64("payload_freq").reshape(
        wc.N_OFDM_SYMBOLS, pilots.SYMBOL_SIZE
    )
    for row in range(wc.N_OFDM_SYMBOLS):
        device.load(time[row], inverse=False)
        device.start()
        device.step()
        out[row] = device.read_result()


def wifi_pilot_remove(ctx: KernelContext) -> None:
    ctx.complex64("data_syms")[:] = wc.unmap_from_ofdm(
        ctx.complex64("payload_freq")
    ).astype(np.complex64)


def wifi_qpsk_demod(ctx: KernelContext) -> None:
    ctx.array("demod_bits", np.uint8)[:] = modulation.qpsk_demodulate(
        ctx.complex64("data_syms").astype(np.complex128)
    )


def wifi_deinterleaver(ctx: KernelContext) -> None:
    ctx.array("deint_bits", np.uint8)[:] = wc.deinterleave_frame(
        ctx.array("demod_bits", np.uint8)
    )


def wifi_viterbi_decode(ctx: KernelContext) -> None:
    decoded = coding.viterbi_decode(
        ctx.array("deint_bits", np.uint8)[: wc.N_CODED_BITS], wc.N_PAYLOAD_BITS
    )
    ctx.array("decoded_bits", np.uint8)[:] = decoded


def wifi_descrambler(ctx: KernelContext) -> None:
    ctx.array("payload_out", np.uint8)[:] = scrambler.descramble(
        ctx.array("decoded_bits", np.uint8)
    )


def wifi_crc_check(ctx: KernelContext) -> None:
    """Recompute the payload CRC and compare against the transmitted one."""
    computed = crc.crc32_bits(ctx.array("payload_out", np.uint8))
    expected = int(ctx.array("tx_crc", np.uint32)[0])
    ctx.set_int("crc_ok", 1 if computed == expected else 0)


CPU_KERNELS = {
    "wifi_rx_setup": wifi_rx_setup,
    "wifi_match_filter": wifi_match_filter,
    "wifi_payload_extract": wifi_payload_extract,
    "wifi_fft_CPU": wifi_fft_CPU,
    "wifi_pilot_remove": wifi_pilot_remove,
    "wifi_qpsk_demod": wifi_qpsk_demod,
    "wifi_deinterleaver": wifi_deinterleaver,
    "wifi_viterbi_decode": wifi_viterbi_decode,
    "wifi_descrambler": wifi_descrambler,
    "wifi_crc_check": wifi_crc_check,
}

ACCEL_KERNELS = {"wifi_fft_ACCEL": wifi_fft_ACCEL}


# -- task graph -------------------------------------------------------------------


def build_graph() -> TaskGraph:
    """The 9-task WiFi RX archetype."""
    b = GraphBuilder(APP_NAME, SHARED_OBJECT)
    b.scalar("frame_start", 0)
    b.scalar("crc_ok", 0)
    b.buffer("rx_stream", STREAM_SAMPLES * 8, dtype="complex64")
    b.buffer("payload_time", wc.PAYLOAD_SAMPLES * 8, dtype="complex64")
    b.buffer("payload_freq", wc.PAYLOAD_SAMPLES * 8, dtype="complex64")
    b.buffer("data_syms", wc.N_PADDED_BITS // 2 * 8, dtype="complex64")
    b.buffer("demod_bits", wc.N_PADDED_BITS, dtype="uint8")
    b.buffer("deint_bits", wc.N_PADDED_BITS, dtype="uint8")
    b.buffer("decoded_bits", wc.N_PAYLOAD_BITS, dtype="uint8")
    b.buffer("payload_out", wc.N_PAYLOAD_BITS, dtype="uint8")
    b.buffer("tx_crc", 4, dtype="uint32")
    b.buffer("true_payload", wc.N_PAYLOAD_BITS, dtype="uint8")
    b.setup("wifi_rx_setup")

    b.node("MATCH_FILTER", args=["rx_stream", "frame_start"],
           cpu="wifi_match_filter")
    b.node("PAYLOAD_EXTRACT", args=["rx_stream", "frame_start", "payload_time"],
           cpu="wifi_payload_extract", after=["MATCH_FILTER"])
    b.node(
        "FFT",
        args=["payload_time", "payload_freq"],
        platforms=[
            PlatformBinding(name="cpu", runfunc="wifi_fft_CPU"),
            PlatformBinding(
                name="fft", runfunc="wifi_fft_ACCEL",
                shared_object=ACCEL_SHARED_OBJECT,
            ),
        ],
        after=["PAYLOAD_EXTRACT"],
    )
    b.node("PILOT_REMOVE", args=["payload_freq", "data_syms"],
           cpu="wifi_pilot_remove", after=["FFT"])
    b.node("QPSK_DEMOD", args=["data_syms", "demod_bits"],
           cpu="wifi_qpsk_demod", after=["PILOT_REMOVE"])
    b.node("DEINTERLEAVER", args=["demod_bits", "deint_bits"],
           cpu="wifi_deinterleaver", after=["QPSK_DEMOD"])
    b.node("VITERBI", args=["deint_bits", "decoded_bits"],
           cpu="wifi_viterbi_decode", after=["DEINTERLEAVER"])
    b.node("DESCRAMBLER", args=["decoded_bits", "payload_out"],
           cpu="wifi_descrambler", after=["VITERBI"])
    b.node("CRC_CHECK", args=["payload_out", "tx_crc", "crc_ok"],
           cpu="wifi_crc_check", after=["DESCRAMBLER"])
    return b.build()


def verify_output(instance) -> bool:
    """Functional check: decoded payload matches and the CRC verified."""
    decoded = instance.variables["payload_out"].as_array(np.uint8)
    truth = instance.variables["true_payload"].as_array(np.uint8)
    return (
        instance.variables["crc_ok"].as_int() == 1
        and bool(np.array_equal(decoded, truth))
    )
