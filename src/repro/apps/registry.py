"""Application repository: wires the SDR suite into the framework.

Provides the default :class:`~repro.appmodel.library.KernelLibrary` with all
four applications' shared objects (plus the common ``fft_accel.so``), and
archetype builders keyed by app name, so the application handler can parse
"all available applications" the way the C framework scans its application
directory.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.appmodel.dag import TaskGraph
from repro.appmodel.library import KernelLibrary
from repro.apps import pulse_doppler, range_detection, wifi_rx, wifi_tx
from repro.common.errors import ApplicationSpecError

#: app name -> zero-argument archetype builder
APPLICATION_BUILDERS: dict[str, Callable[[], TaskGraph]] = {
    range_detection.APP_NAME: range_detection.build_graph,
    pulse_doppler.APP_NAME: pulse_doppler.build_graph,
    wifi_tx.APP_NAME: wifi_tx.build_graph,
    wifi_rx.APP_NAME: wifi_rx.build_graph,
}

#: app name -> functional output verifier (instance -> bool)
OUTPUT_VERIFIERS: dict[str, Callable] = {
    range_detection.APP_NAME: range_detection.verify_output,
    pulse_doppler.APP_NAME: pulse_doppler.verify_output,
    wifi_tx.APP_NAME: wifi_tx.verify_output,
    wifi_rx.APP_NAME: wifi_rx.verify_output,
}


def default_kernel_library() -> KernelLibrary:
    """A library with every SDR shared object registered."""
    lib = KernelLibrary()
    lib.register_shared_object(
        range_detection.SHARED_OBJECT, range_detection.CPU_KERNELS
    )
    lib.register_shared_object(pulse_doppler.SHARED_OBJECT, pulse_doppler.CPU_KERNELS)
    lib.register_shared_object(wifi_tx.SHARED_OBJECT, wifi_tx.CPU_KERNELS)
    lib.register_shared_object(wifi_rx.SHARED_OBJECT, wifi_rx.CPU_KERNELS)
    # The shared accelerator library referenced by per-platform
    # ``shared_object`` keys (Listing 1's fft_accel.so).
    accel_symbols = {}
    accel_symbols.update(range_detection.ACCEL_KERNELS)
    accel_symbols.update(pulse_doppler.ACCEL_KERNELS)
    accel_symbols.update(wifi_tx.ACCEL_KERNELS)
    accel_symbols.update(wifi_rx.ACCEL_KERNELS)
    lib.register_shared_object("fft_accel.so", accel_symbols)
    return lib


def build_application(app_name: str) -> TaskGraph:
    """Build one archetype by name; error message lists what exists, like
    the framework reporting an unknown ``AppName`` after parsing."""
    try:
        builder = APPLICATION_BUILDERS[app_name]
    except KeyError:
        raise ApplicationSpecError(
            f"application {app_name!r} was not detected "
            f"(available: {sorted(APPLICATION_BUILDERS)})"
        ) from None
    return builder()


def default_applications() -> dict[str, TaskGraph]:
    """All archetypes, parsed and validated."""
    return {name: build_application(name) for name in APPLICATION_BUILDERS}


def verify_instance(instance) -> bool:
    """Dispatch to the app's functional verifier (True when unknown apps
    have nothing to check)."""
    verifier = OUTPUT_VERIFIERS.get(instance.app_name)
    return True if verifier is None else bool(verifier(instance))
