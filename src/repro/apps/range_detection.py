"""Radar range detection (paper Fig. 2 / Listing 1) — 6 tasks.

Pipeline: generate the LFM reference chirp, FFT both the received signal
and the chirp, multiply the RX spectrum with the conjugated reference
spectrum, inverse-FFT to get the cross-correlation, and locate its peak —
whose lag is the round-trip delay, hence the range.

Task graph (matches Listing 1's structure)::

    LFM ──────► FFT_1 ─┐
    FFT_0 ─────────────┴► MUL ► IFFT ► MAX

``FFT_0``, ``FFT_1`` and ``IFFT`` carry both a CPU binding and an ``fft``
accelerator binding whose runfuncs live in the separate ``fft_accel.so``
shared object, exactly as in Listing 1's ``FFT_0`` node.
"""

from __future__ import annotations

import numpy as np

from repro.appmodel.builder import GraphBuilder
from repro.appmodel.dag import PlatformBinding, TaskGraph
from repro.appmodel.library import KernelContext
from repro.apps.kernels import correlation, lfm

APP_NAME = "range_detection"
SHARED_OBJECT = "range_detection.so"
ACCEL_SHARED_OBJECT = "fft_accel.so"

N_SAMPLES = 256
SAMPLING_RATE = 2_560_000  # Hz
TRUE_DELAY = 37            # samples; setup synthesizes the echo here
ECHO_SNR_DB = 20.0
_BUF = N_SAMPLES * 8       # complex64 buffer size in bytes


# -- kernels (the shared object) ------------------------------------------------


def _chirp() -> np.ndarray:
    return lfm.lfm_chirp(N_SAMPLES, sampling_rate=float(SAMPLING_RATE))


def range_detect_setup(ctx: KernelContext) -> None:
    """Instance initialization: synthesize the received echo.

    Writes ``rx`` = attenuated chirp delayed by ``TRUE_DELAY`` samples plus
    AWGN, seeded deterministically so validation is reproducible.
    """
    rng = np.random.default_rng(0x52D)  # stable seed: reproducible validation
    echo = lfm.delayed_echo(_chirp(), TRUE_DELAY, attenuation=0.6)
    noise_scale = 0.6 / (10.0 ** (ECHO_SNR_DB / 20.0))
    noise = noise_scale * (
        rng.standard_normal(N_SAMPLES) + 1j * rng.standard_normal(N_SAMPLES)
    ) / np.sqrt(2.0)
    ctx.complex64("rx")[:] = (echo + noise).astype(np.complex64)


def range_detect_LFM(ctx: KernelContext) -> None:
    """Generate the reference LFM chirp into ``lfm_waveform``."""
    n = ctx.int("n_samples")
    ctx.complex64("lfm_waveform")[:n] = _chirp()[:n].astype(np.complex64)


def range_detect_FFT_0_CPU(ctx: KernelContext) -> None:
    """FFT of the received signal: X1 = FFT(rx)."""
    n = ctx.int("n_samples")
    ctx.complex64("X1")[:n] = np.fft.fft(ctx.complex64("rx")[:n]).astype(np.complex64)


def range_detect_FFT_1_CPU(ctx: KernelContext) -> None:
    """FFT of the reference chirp: X2 = FFT(lfm_waveform)."""
    n = ctx.int("n_samples")
    ctx.complex64("X2")[:n] = np.fft.fft(
        ctx.complex64("lfm_waveform")[:n]
    ).astype(np.complex64)


def range_detect_MUL(ctx: KernelContext) -> None:
    """Correlation spectrum: corr_spec = X1 * conj(X2)."""
    n = ctx.int("n_samples")
    ctx.complex64("corr_spec")[:n] = correlation.correlate_spectra(
        ctx.complex64("X1")[:n], ctx.complex64("X2")[:n]
    ).astype(np.complex64)


def range_detect_IFFT_CPU(ctx: KernelContext) -> None:
    """Back to the lag domain: corr = IFFT(corr_spec)."""
    n = ctx.int("n_samples")
    ctx.complex64("corr")[:n] = np.fft.ifft(
        ctx.complex64("corr_spec")[:n]
    ).astype(np.complex64)


def range_detect_MAX(ctx: KernelContext) -> None:
    """Peak search: write the detected lag index and peak magnitude."""
    n = ctx.int("n_samples")
    idx, peak, _lag_s = correlation.find_peak(
        ctx.complex64("corr")[:n], float(ctx.int("sampling_rate"))
    )
    ctx.set_int("index", idx)
    ctx.set_int("lag", idx)  # lag in samples (rate known separately)
    ctx.array("max_corr", np.float32)[0] = np.float32(peak)


# -- accelerator kernels (fft_accel.so) -----------------------------------------


def _accel_transform(ctx: KernelContext, src: str, dst: str, inverse: bool) -> None:
    """Drive the FFT device through the full DMA protocol of Fig. 6."""
    n = ctx.int("n_samples")
    device = ctx.device
    if device is None:
        raise RuntimeError(
            f"{ctx.node_name}: accelerator kernel invoked without a device"
        )
    device.load(ctx.complex64(src)[:n], inverse=inverse)
    device.start()
    device.step()  # hardware would raise DONE asynchronously
    while not device.poll():  # pragma: no cover - device completes in step()
        pass
    ctx.complex64(dst)[:n] = device.read_result()


def range_detect_FFT_0_ACCEL(ctx: KernelContext) -> None:
    _accel_transform(ctx, "rx", "X1", inverse=False)


def range_detect_FFT_1_ACCEL(ctx: KernelContext) -> None:
    _accel_transform(ctx, "lfm_waveform", "X2", inverse=False)


def range_detect_IFFT_ACCEL(ctx: KernelContext) -> None:
    _accel_transform(ctx, "corr_spec", "corr", inverse=True)


CPU_KERNELS = {
    "range_detect_setup": range_detect_setup,
    "range_detect_LFM": range_detect_LFM,
    "range_detect_FFT_0_CPU": range_detect_FFT_0_CPU,
    "range_detect_FFT_1_CPU": range_detect_FFT_1_CPU,
    "range_detect_MUL": range_detect_MUL,
    "range_detect_IFFT_CPU": range_detect_IFFT_CPU,
    "range_detect_MAX": range_detect_MAX,
}

ACCEL_KERNELS = {
    "range_detect_FFT_0_ACCEL": range_detect_FFT_0_ACCEL,
    "range_detect_FFT_1_ACCEL": range_detect_FFT_1_ACCEL,
    "range_detect_IFFT_ACCEL": range_detect_IFFT_ACCEL,
}


# -- task graph -------------------------------------------------------------------


def _fft_platforms(cpu_func: str, accel_func: str) -> list[PlatformBinding]:
    return [
        PlatformBinding(name="cpu", runfunc=cpu_func),
        PlatformBinding(
            name="fft", runfunc=accel_func, shared_object=ACCEL_SHARED_OBJECT
        ),
    ]


def build_graph(accelerator_platform: str = "fft") -> TaskGraph:
    """The 6-task range-detection archetype.

    ``accelerator_platform`` exists so auto-generated variants (Case Study
    4) can retarget the FFT nodes; pass ``""`` to emit CPU-only bindings.
    """
    b = GraphBuilder(APP_NAME, SHARED_OBJECT)
    b.scalar("n_samples", N_SAMPLES)
    b.scalar("sampling_rate", SAMPLING_RATE)
    b.scalar("index", 0)
    b.scalar("lag", 0)
    b.buffer("lfm_waveform", _BUF, dtype="complex64")
    b.buffer("rx", _BUF, dtype="complex64")
    b.buffer("X1", _BUF, dtype="complex64")
    b.buffer("X2", _BUF, dtype="complex64")
    b.buffer("corr_spec", _BUF, dtype="complex64")
    b.buffer("corr", _BUF, dtype="complex64")
    b.buffer("max_corr", 4, dtype="float32")
    b.setup("range_detect_setup")

    with_accel = bool(accelerator_platform)

    def fft_node_platforms(cpu_func: str, accel_func: str):
        if with_accel:
            return _fft_platforms(cpu_func, accel_func)
        return [PlatformBinding(name="cpu", runfunc=cpu_func)]

    b.node("LFM", args=["n_samples", "lfm_waveform"], cpu="range_detect_LFM")
    b.node(
        "FFT_0",
        args=["n_samples", "rx", "X1"],
        platforms=fft_node_platforms(
            "range_detect_FFT_0_CPU", "range_detect_FFT_0_ACCEL"
        ),
    )
    b.node(
        "FFT_1",
        args=["n_samples", "lfm_waveform", "X2"],
        platforms=fft_node_platforms(
            "range_detect_FFT_1_CPU", "range_detect_FFT_1_ACCEL"
        ),
        after=["LFM"],
    )
    b.node(
        "MUL",
        args=["n_samples", "X1", "X2", "corr_spec"],
        cpu="range_detect_MUL",
        after=["FFT_0", "FFT_1"],
    )
    b.node(
        "IFFT",
        args=["n_samples", "corr_spec", "corr"],
        platforms=fft_node_platforms(
            "range_detect_IFFT_CPU", "range_detect_IFFT_ACCEL"
        ),
        after=["MUL"],
    )
    b.node(
        "MAX",
        args=["n_samples", "corr", "index", "max_corr", "lag", "sampling_rate"],
        cpu="range_detect_MAX",
        after=["IFFT"],
    )
    return b.build()


def verify_output(instance) -> bool:
    """Functional check: the detected lag equals the synthesized delay."""
    return instance.variables["index"].as_int() == TRUE_DELAY
