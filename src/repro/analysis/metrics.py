"""Derived metrics over emulation statistics."""

from __future__ import annotations

import numpy as np

from repro.runtime.stats import EmulationStats


def per_type_utilization(stats: EmulationStats) -> dict[str, float]:
    """Mean utilization per PE *type* (averages Fig. 9b's bars by type)."""
    per_pe = stats.pe_utilization()
    grouped: dict[str, list[float]] = {}
    for name, util in per_pe.items():
        pe_type = stats.pe_usage[name].pe_type
        grouped.setdefault(pe_type, []).append(util)
    return {t: float(np.mean(vals)) for t, vals in grouped.items()}


def queue_delay_stats(stats: EmulationStats) -> dict[str, float]:
    """Ready→start latency distribution across all tasks (µs)."""
    delays = np.array([r.queue_delay for r in stats.task_records])
    if delays.size == 0:
        return {"mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    return {
        "mean": float(delays.mean()),
        "p50": float(np.percentile(delays, 50)),
        "p95": float(np.percentile(delays, 95)),
        "max": float(delays.max()),
    }


def throughput_tasks_per_ms(stats: EmulationStats) -> float:
    """Completed tasks per millisecond of emulation time."""
    if stats.makespan <= 0:
        return 0.0
    return stats.task_count / (stats.makespan / 1000.0)


def schedulability_check(stats: EmulationStats, time_frame_us: float) -> bool:
    """Did the configuration keep up with the offered load?

    True when the workload finished within a small multiple of the
    injection window — the sustained-rate criterion behind the linear
    region of Figs. 10a and 11.
    """
    if time_frame_us <= 0:
        return True
    return stats.makespan <= 3.0 * time_frame_us


def scheduling_overhead_fraction(stats: EmulationStats) -> float:
    """Share of the makespan spent inside workload-manager passes."""
    if stats.makespan <= 0:
        return 0.0
    return min(1.0, stats.sched_overhead_total / stats.makespan)
