"""ASCII figure rendering for experiment output.

The bench harnesses print tables; for sweeps (Figs. 10 and 11) a coarse
terminal plot makes the *shape* — orderings, crossovers, growth — visible
at a glance without any plotting dependency.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render named (x, y) series as a character plot.

    ``log_y=True`` plots log10(y) — the scale Fig. 10 uses, where the three
    schedulers' overheads span five decades.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no data to plot")
    if log_y and any(y <= 0 for _x, y in points):
        raise ValueError("log_y requires strictly positive y values")

    def ty(y: float) -> float:
        return math.log10(y) if log_y else y

    xs = [x for x, _y in points]
    ys = [ty(y) for _x, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = int(round((ty(y) - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"1e{y_max:.2f}" if log_y else _fmt_tick(y_max)
    bot_label = f"1e{y_min:.2f}" if log_y else _fmt_tick(y_min)
    label_width = max(len(top_label), len(bot_label))
    for i, row in enumerate(grid):
        if i == 0:
            label = top_label.rjust(label_width)
        elif i == height - 1:
            label = bot_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = (
        " " * label_width
        + "  "
        + _fmt_tick(x_min)
        + _fmt_tick(x_max).rjust(width - len(_fmt_tick(x_min)))
    )
    lines.append(x_axis)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def fig10_chart(points) -> str:
    """Fig. 10a as an ASCII chart (log-scale execution time vs rate)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for p in points:
        series.setdefault(p.policy, []).append((p.rate, p.execution_time_s))
    for pts in series.values():
        pts.sort()
    return ascii_chart(
        series,
        title="Fig 10a: execution time (s, log scale) vs injection rate",
        log_y=True,
    )


def pareto_chart(
    rows: Sequence[Mapping],
    *,
    x_key: str = "makespan_ms",
    y_key: str = "total_energy_j",
    title: str = "Campaign Pareto plane",
) -> str:
    """Campaign cells on the (x, y) minimization plane.

    Frontier members (computed via :func:`repro.dse.frontier.frontier_rows`
    when rows lack a ``pareto`` flag) are drawn with the first marker,
    dominated designs with the second.
    """
    rows = list(rows)
    if rows and "pareto" not in rows[0]:
        from repro.dse.frontier import frontier_rows

        rows = frontier_rows(rows, x=x_key, y=y_key)
    series: dict[str, list[tuple[float, float]]] = {
        "frontier": [], "dominated": [],
    }
    for row in rows:
        x, y = row.get(x_key), row.get(y_key)
        if not isinstance(x, (int, float)) or not isinstance(y, (int, float)):
            continue
        series["frontier" if row.get("pareto") else "dominated"].append(
            (float(x), float(y))
        )
    if not series["dominated"]:
        del series["dominated"]
    return ascii_chart(
        series, title=f"{title} ({x_key} vs {y_key})"
    )


def fig11_chart(points, configs: Sequence[str] | None = None) -> str:
    """Fig. 11 as an ASCII chart (execution time vs rate per config)."""
    series: dict[str, list[tuple[float, float]]] = {}
    for p in points:
        if configs is not None and p.config not in configs:
            continue
        series.setdefault(p.config, []).append((p.rate, p.execution_time_s))
    for pts in series.values():
        pts.sort()
    return ascii_chart(
        series,
        title="Fig 11: execution time (s) vs injection rate",
    )
