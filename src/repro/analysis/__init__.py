"""Analysis and reporting: turn emulation stats into the paper's artifacts."""

from repro.analysis.boxstats import BoxStats, box_stats
from repro.analysis.figures import ascii_chart, fig10_chart, fig11_chart
from repro.analysis.metrics import (
    per_type_utilization,
    queue_delay_stats,
    schedulability_check,
    throughput_tasks_per_ms,
)
from repro.analysis.tables import format_table, render_rows
from repro.analysis.trace_export import (
    gantt_ascii,
    records_as_dicts,
    to_csv,
    to_json,
    write_csv,
    write_json,
)

__all__ = [
    "BoxStats",
    "box_stats",
    "ascii_chart",
    "fig10_chart",
    "fig11_chart",
    "per_type_utilization",
    "queue_delay_stats",
    "schedulability_check",
    "throughput_tasks_per_ms",
    "format_table",
    "render_rows",
    "gantt_ascii",
    "records_as_dicts",
    "to_csv",
    "to_json",
    "write_csv",
    "write_json",
]
