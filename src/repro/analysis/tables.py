"""Plain-text table rendering for the benchmark harnesses.

The bench targets print the same rows/series the paper reports; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Fixed-width table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def render_rows(rows: Sequence[dict], columns: Sequence[str], title: str = "") -> str:
    """Table from dict rows, selecting and ordering ``columns``."""
    body = [[row.get(col, "") for col in columns] for row in rows]
    return format_table(columns, body, title=title)


#: Default column order for DSE campaign rows (``CampaignResult.rows()``).
CAMPAIGN_COLUMNS = (
    "label", "status", "makespan_ms", "total_energy_j",
    "avg_sched_overhead_us", "tasks", "cached",
)


def campaign_table(
    rows: Sequence[dict],
    *,
    columns: Sequence[str] = CAMPAIGN_COLUMNS,
    sort_by: str | None = None,
    title: str = "Campaign results",
) -> str:
    """Comparison table over a DSE campaign's flattened cell rows.

    ``sort_by`` orders by any numeric column (missing values sink to the
    bottom); the default preserves grid order.
    """
    rows = list(rows)
    if sort_by is not None:
        def key(row: dict):
            value = row.get(sort_by)
            missing = not isinstance(value, (int, float))
            return (missing, value if not missing else 0.0)

        rows.sort(key=key)
    body = [[_cell(row, col) for col in columns] for row in rows]
    return format_table(list(columns), body, title=title)


def _cell(row: dict, col: str) -> object:
    value = row.get(col, "")
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else ""
    return value


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.1f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)
