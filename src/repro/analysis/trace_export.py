"""Execution-trace export: per-task schedules as CSV/JSON and ASCII Gantt.

The framework "collects the scheduling statistics for all the applications
and their tasks" before termination (Sec. II-A); this module turns those
records into artifacts downstream tools can consume — a CSV/JSON schedule
dump, and a terminal Gantt chart for eyeballing PE occupancy and dispatch
gaps while debugging schedulers or accelerator integrations.
"""

from __future__ import annotations

import csv
import io
import json

from repro.runtime.stats import EmulationStats

_CSV_FIELDS = (
    "task_id", "app_name", "instance_id", "task_name", "pe_name", "pe_type",
    "ready_time", "dispatch_time", "start_time", "finish_time",
    "service_time", "queue_delay",
)


def records_as_dicts(stats: EmulationStats) -> list[dict]:
    """All task records as flat dicts (time fields in µs)."""
    out = []
    for r in sorted(stats.task_records, key=lambda r: r.start_time):
        out.append(
            {
                "task_id": r.task_id,
                "app_name": r.app_name,
                "instance_id": r.instance_id,
                "task_name": r.task_name,
                "pe_name": r.pe_name,
                "pe_type": r.pe_type,
                "ready_time": r.ready_time,
                "dispatch_time": r.dispatch_time,
                "start_time": r.start_time,
                "finish_time": r.finish_time,
                "service_time": r.service_time,
                "queue_delay": r.queue_delay,
            }
        )
    return out


def to_csv(stats: EmulationStats) -> str:
    """The schedule as CSV text (one row per executed task)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS)
    writer.writeheader()
    for row in records_as_dicts(stats):
        writer.writerow(row)
    return buffer.getvalue()


def to_json(stats: EmulationStats) -> str:
    """Schedule + summary as a JSON document."""
    return json.dumps(
        {"summary": stats.summary(), "tasks": records_as_dicts(stats)},
        indent=2,
    )


def write_csv(stats: EmulationStats, path) -> None:
    with open(path, "w", encoding="utf-8", newline="") as fh:
        fh.write(to_csv(stats))


def write_json(stats: EmulationStats, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_json(stats))


def gantt_ascii(
    stats: EmulationStats,
    *,
    width: int = 72,
    until: float | None = None,
) -> str:
    """One row per PE; each task paints its span with a per-app letter.

    ``until`` truncates the horizontal axis (useful when a long tail would
    compress the interesting startup region).
    """
    if not stats.task_records:
        return "(no tasks executed)"
    horizon = until if until is not None else stats.makespan
    if horizon <= 0:
        return "(empty horizon)"
    app_letters: dict[str, str] = {}
    for rec in stats.task_records:
        if rec.app_name not in app_letters:
            app_letters[rec.app_name] = chr(ord("A") + len(app_letters) % 26)
    rows: dict[str, list[str]] = {
        name: [" "] * width for name in sorted(stats.pe_usage)
    }
    for rec in stats.task_records:
        if rec.start_time >= horizon:
            continue
        row = rows[rec.pe_name]
        begin = int(rec.start_time / horizon * (width - 1))
        end = int(min(rec.finish_time, horizon) / horizon * (width - 1))
        letter = app_letters[rec.app_name]
        for col in range(begin, max(begin, end) + 1):
            row[col] = letter
    name_width = max(len(n) for n in rows)
    lines = [
        f"{name.rjust(name_width)} |{''.join(cells)}|"
        for name, cells in rows.items()
    ]
    legend = "  ".join(f"{v}={k}" for k, v in app_letters.items())
    scale = f"0 .. {horizon:.0f} us"
    lines.append(" " * name_width + f"  {scale}")
    lines.append(" " * name_width + f"  {legend}")
    return "\n".join(lines)
