"""Box-plot statistics for repeated-iteration experiments (Fig. 9a)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, as a box plot would draw."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "n": self.n,
        }


def box_stats(samples: list[float] | np.ndarray) -> BoxStats:
    """Compute box statistics; requires at least one sample."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("box_stats needs at least one sample")
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    return BoxStats(
        minimum=float(data.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(data.max()),
        mean=float(data.mean()),
        n=int(data.size),
    )
