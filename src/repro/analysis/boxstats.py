"""Box-plot statistics for repeated-iteration experiments (Fig. 9a)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary plus mean, as a box plot would draw."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def as_dict(self) -> dict[str, float]:
        return {
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
            "mean": self.mean,
            "n": self.n,
        }


def box_stats(samples: list[float] | np.ndarray) -> BoxStats:
    """Compute box statistics; requires at least one sample."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        raise ValueError("box_stats needs at least one sample")
    q1, median, q3 = np.percentile(data, [25, 50, 75])
    minimum = float(data.min())
    maximum = float(data.max())
    # Pairwise summation can land the mean a few ULPs outside [min, max]
    # (e.g. three identical samples); clamp so min <= mean <= max holds.
    mean = min(max(float(data.mean()), minimum), maximum)
    return BoxStats(
        minimum=minimum,
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=maximum,
        mean=mean,
        n=int(data.size),
    )
