"""Time and size units.

The framework's canonical time unit is the **microsecond**, stored as a
``float``.  The paper reports scheduling overheads of a few microseconds and
workload makespans of tens of seconds, so microseconds keep both ends of the
range well inside float64 precision (2^53 µs ≈ 285 years).

All public runtime APIs accept and return microseconds unless a name says
otherwise (``*_ms``, ``*_sec``).
"""

from __future__ import annotations

# -- canonical multipliers (value of one unit, expressed in microseconds) --
US: float = 1.0
MS: float = 1_000.0
SEC: float = 1_000_000.0

# -- size units (bytes) --
KiB: int = 1024
MiB: int = 1024 * 1024


def usec(value: float) -> float:
    """Microseconds → canonical time (identity; for call-site clarity)."""
    return float(value)


def msec(value: float) -> float:
    """Milliseconds → canonical microseconds."""
    return float(value) * MS


def sec(value: float) -> float:
    """Seconds → canonical microseconds."""
    return float(value) * SEC


def to_usec(value: float) -> float:
    """Canonical time → microseconds (identity)."""
    return float(value)


def to_msec(value: float) -> float:
    """Canonical time → milliseconds."""
    return float(value) / MS


def to_sec(value: float) -> float:
    """Canonical time → seconds."""
    return float(value) / SEC


def format_duration(value_us: float) -> str:
    """Render a canonical duration with an auto-selected unit.

    >>> format_duration(2.5)
    '2.500 us'
    >>> format_duration(5600.0)
    '5.600 ms'
    >>> format_duration(101_920_000.0)
    '101.920 s'
    """
    mag = abs(value_us)
    if mag >= SEC:
        return f"{value_us / SEC:.3f} s"
    if mag >= MS:
        return f"{value_us / MS:.3f} ms"
    return f"{value_us:.3f} us"


def format_bytes(n: int) -> str:
    """Render a byte count with an auto-selected binary unit.

    >>> format_bytes(2048)
    '2.0 KiB'
    """
    if abs(n) >= MiB:
        return f"{n / MiB:.1f} MiB"
    if abs(n) >= KiB:
        return f"{n / KiB:.1f} KiB"
    return f"{n} B"
