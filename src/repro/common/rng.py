"""Deterministic random-number management.

Every stochastic component (workload generation, execution-time jitter,
RANDOM scheduler) draws from its own :class:`numpy.random.Generator`,
derived from a single experiment seed via named sub-streams.  This makes
experiment sweeps reproducible bit-for-bit while keeping streams independent
— changing how many draws one component makes never perturbs another.
"""

from __future__ import annotations

import zlib

import numpy as np

_DEFAULT_SEED = 0xD550C  # "DSSoC"


def derive_seed(root_seed: int, *names: object) -> int:
    """Derive a stable 63-bit child seed from a root seed and a name path.

    Uses CRC32 over the textual path so the mapping is stable across runs,
    platforms, and Python hash randomization.
    """
    path = "/".join(str(n) for n in names)
    digest = zlib.crc32(path.encode("utf-8"))
    return (int(root_seed) * 0x9E3779B1 + digest) & 0x7FFF_FFFF_FFFF_FFFF


def default_rng(seed: int | None = None) -> np.random.Generator:
    """A fresh PCG64 generator; ``None`` selects the framework default seed."""
    return np.random.default_rng(_DEFAULT_SEED if seed is None else seed)


class SeedSequenceFactory:
    """Hands out independent, named RNG streams from one root seed.

    >>> factory = SeedSequenceFactory(42)
    >>> jitter_rng = factory.rng("jitter", "pe0")
    >>> arrivals_rng = factory.rng("arrivals")

    Asking for the same name path twice returns a generator in the same
    initial state, so components may re-derive their stream instead of
    plumbing generator objects around.
    """

    def __init__(self, root_seed: int | None = None) -> None:
        self.root_seed = _DEFAULT_SEED if root_seed is None else int(root_seed)

    def seed(self, *names: object) -> int:
        """The child seed for a name path (useful for logging/replay)."""
        return derive_seed(self.root_seed, *names)

    def rng(self, *names: object) -> np.random.Generator:
        """A fresh generator for the given name path."""
        return np.random.default_rng(self.seed(*names))

    def spawn(self, *names: object) -> "SeedSequenceFactory":
        """A child factory rooted at a name path (for nested components)."""
        return SeedSequenceFactory(self.seed(*names))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequenceFactory(root_seed={self.root_seed:#x})"
