"""Logging setup.

The emulator's hot loops never format log strings unless the level is
enabled; modules obtain loggers through :func:`get_logger` so the whole
framework lives under the ``repro`` logger namespace and can be silenced or
redirected by embedding applications with one call.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"
_configured = False


def _ensure_configured() -> None:
    global _configured
    if _configured:
        return
    root = logging.getLogger(_ROOT_NAME)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(logging.WARNING)
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """A logger under the framework namespace, e.g. ``repro.runtime.wm``."""
    _ensure_configured()
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def set_level(level: int | str) -> None:
    """Set the framework-wide log level (e.g. ``'DEBUG'`` while integrating)."""
    _ensure_configured()
    logging.getLogger(_ROOT_NAME).setLevel(level)
