"""Bounded retry with exponential backoff and full jitter.

One retry policy serves every transient-failure site in the framework:
the network transport's client calls (connection resets, timeouts), the
shared result cache's writes and the journal's shard appends (NFS
hiccups such as ``EINTR``/``ESTALE``/``EAGAIN``).  Centralizing it keeps
the failure behavior auditable — the same bounded attempt count, the
same capped exponential backoff, the same full-jitter draw — instead of
ad-hoc ``time.sleep`` loops with different constants at every call site.

The jitter scheme is "full jitter" (AWS architecture blog): each delay
is drawn uniformly from ``[0, min(cap, base * 2**attempt)]``.  Compared
to equal or decorrelated jitter it minimizes synchronized retry storms
when a whole worker fleet loses the same server at the same moment.
"""

from __future__ import annotations

import errno
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: ``errno`` values treated as transient filesystem/network hiccups: an
#: interrupted syscall, a stale NFS handle (server rebooted or re-exported
#: mid-operation), and a would-block/temporary-resource failure.  A single
#: occurrence of any of these must not fail a whole sweep cell.
TRANSIENT_ERRNOS = frozenset({
    errno.EINTR,
    errno.ESTALE,
    errno.EAGAIN,
})


def is_transient_oserror(exc: BaseException) -> bool:
    """Is this an :class:`OSError` worth retrying (see TRANSIENT_ERRNOS)?"""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


class RetryBudgetExceeded(Exception):
    """All attempts failed; ``__cause__`` carries the last error."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry: ``attempts`` tries, exponential backoff, full jitter.

    ``deadline_s`` is a per-*call* wall-clock budget: once it is spent no
    further attempt starts (the attempt bound still applies).  ``rng`` is
    injectable for deterministic tests; ``sleep`` for no-sleep tests.
    """

    attempts: int = 5
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")

    def backoff_caps(self) -> Iterator[float]:
        """The deterministic upper envelope of each retry's delay."""
        for attempt in range(self.attempts - 1):
            yield min(self.max_delay_s, self.base_delay_s * (2.0 ** attempt))

    def delays(self, rng: random.Random | None = None) -> Iterator[float]:
        """Full-jitter delays, one per retry (``attempts - 1`` of them)."""
        rng = rng or random
        for cap in self.backoff_caps():
            yield rng.uniform(0.0, cap)

    def call(
        self,
        fn: Callable[[], Any],
        *,
        retry_on: Callable[[BaseException], bool] = is_transient_oserror,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ) -> Any:
        """Run ``fn`` until it succeeds or the retry budget is spent.

        Exceptions ``retry_on`` rejects propagate immediately; once the
        attempt count or the deadline is exhausted the last retryable
        error is re-raised (not wrapped — callers keep their except
        clauses).  ``on_retry(attempt_number, exc)`` observes each retry.
        """
        deadline = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None
            else None
        )
        delays = self.delays(rng)
        for attempt in range(1, self.attempts + 1):
            try:
                return fn()
            except BaseException as exc:  # noqa: BLE001 — filtered below
                if not retry_on(exc) or attempt >= self.attempts:
                    raise
                delay = next(delays, 0.0)
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise
                    delay = min(delay, remaining)
                if on_retry is not None:
                    on_retry(attempt, exc)
                if delay > 0:
                    sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


#: Default policy for filesystem writes that may hit NFS hiccups: quick,
#: bounded, sub-second total worst case.
FS_RETRY = RetryPolicy(attempts=4, base_delay_s=0.02, max_delay_s=0.25)


@dataclass
class RetryStats:
    """Optional shared counter for surfacing retry activity in status."""

    retries: int = 0
    last_error: str = ""
    _by_site: dict[str, int] = field(default_factory=dict)

    def note(self, site: str, exc: BaseException) -> None:
        self.retries += 1
        self.last_error = f"{type(exc).__name__}: {exc}"
        self._by_site[site] = self._by_site.get(site, 0) + 1

    def to_dict(self) -> dict[str, Any]:
        return {
            "retries": self.retries,
            "last_error": self.last_error,
            "by_site": dict(self._by_site),
        }
