"""Shared infrastructure: errors, units, RNG management, logging, id pools."""

from repro.common.errors import (
    ReproError,
    ApplicationSpecError,
    SymbolResolutionError,
    SchedulingError,
    HardwareConfigError,
    MemoryError_,
    ToolchainError,
    EmulationError,
)
from repro.common.units import (
    US,
    MS,
    SEC,
    usec,
    msec,
    sec,
    to_usec,
    to_msec,
    to_sec,
    format_duration,
    KiB,
    MiB,
    format_bytes,
)
from repro.common.rng import SeedSequenceFactory, derive_seed, default_rng
from repro.common.ids import IdAllocator, monotonic_names
from repro.common.log import get_logger

__all__ = [
    "ReproError",
    "ApplicationSpecError",
    "SymbolResolutionError",
    "SchedulingError",
    "HardwareConfigError",
    "MemoryError_",
    "ToolchainError",
    "EmulationError",
    "US",
    "MS",
    "SEC",
    "usec",
    "msec",
    "sec",
    "to_usec",
    "to_msec",
    "to_sec",
    "format_duration",
    "KiB",
    "MiB",
    "format_bytes",
    "SeedSequenceFactory",
    "derive_seed",
    "default_rng",
    "IdAllocator",
    "monotonic_names",
    "get_logger",
]
