"""Exception hierarchy for the DSSoC emulation framework.

Every framework-raised error derives from :class:`ReproError` so callers can
catch framework failures without masking programming errors (``TypeError``
etc. propagate unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


class ApplicationSpecError(ReproError):
    """A JSON application specification is malformed or inconsistent.

    Raised for schema violations, dangling predecessor/successor references,
    cycles in the task graph, unknown variables in node argument lists, and
    variable storage declarations that contradict their initial values.
    """


class SymbolResolutionError(ReproError):
    """A ``runfunc`` symbol could not be found in its shared object.

    Mirrors the ``dlsym`` failure mode of the C runtime: the JSON names a
    function that the referenced kernel library does not export.
    """


class SchedulingError(ReproError):
    """A scheduling policy produced an invalid assignment.

    Examples: assigning a task to a PE type that is not in the task's
    supported platform list, dispatching to a PE that is not idle, or a
    custom policy returning tasks that are not in the ready list.
    """


class HardwareConfigError(ReproError):
    """A DSSoC hardware configuration is invalid or unsatisfiable.

    Examples: requesting more PEs than the underlying SoC resource pool
    provides, a configuration string that does not parse, or zero PEs.
    """


class MemoryError_(ReproError):
    """Emulated memory-pool violation (out of pool, bad handle, overrun).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class ToolchainError(ReproError):
    """Automatic application conversion failed (trace, outline, or emit)."""


class EmulationError(ReproError):
    """The emulation run itself reached an inconsistent state.

    Examples: deadlock (tasks outstanding but nothing ready and all PEs
    idle), a resource handler protocol violation, or a task that raised
    inside its kernel function.
    """
