"""Small id/naming helpers used across the runtime."""

from __future__ import annotations

import itertools
from collections.abc import Iterator


class IdAllocator:
    """Monotonically increasing integer ids, optionally namespaced.

    The runtime labels every task instance, application instance, and PE
    with a dense integer id; dense ids let the stats module use arrays
    instead of dicts on the hot path.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def allocate(self) -> int:
        """Return the next id."""
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The id the next :meth:`allocate` call would return."""
        return self._next

    def reset(self, start: int = 0) -> None:
        """Restart the sequence (used between emulation runs)."""
        self._next = int(start)


def monotonic_names(prefix: str) -> Iterator[str]:
    """Yield ``prefix0, prefix1, ...`` forever.

    >>> names = monotonic_names("core")
    >>> next(names), next(names)
    ('core0', 'core1')
    """
    return (f"{prefix}{i}" for i in itertools.count())
