"""Command-line interface: ``dssoc-emulate``.

Runs an emulation or regenerates an experiment from the shell::

    dssoc-emulate run --config 3C+2F --policy frfs \
        --apps range_detection=3,wifi_tx=2
    dssoc-emulate perf --config 3C+2F --policy met --rate 2.28
    dssoc-emulate experiment table1|fig9|fig10|fig11|cs4
    dssoc-emulate list
"""

from __future__ import annotations

import argparse
import contextlib
import json
import signal
import sys
import threading

from repro.analysis.tables import format_table
from repro.common.errors import ReproError
from repro.hardware.platform import odroid_xu3, zcu102
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.backends.virtual import VirtualBackend
from repro.runtime.emulation import Emulation
from repro.runtime.faults import FaultSpec, FaultSpecError
from repro.runtime.qos import QoSController, QoSSpec, QoSSpecError
from repro.runtime.schedulers import available_policies
from repro.runtime.workload import validation_workload
from repro.experiments.workloads import TABLE_II_RATES, table_ii_workload

#: Exit codes (see docs/qos.md): 0 success (including a budget-interrupted
#: drain that flushed partial results), 1 framework error or failed sweep
#: cells, 2 usage error, 130 signal-interrupted.
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_INTERRUPTED = 130


def _parse_apps(text: str) -> dict[str, int]:
    counts: dict[str, int] = {}
    for part in text.split(","):
        name, _sep, num = part.partition("=")
        counts[name.strip()] = int(num) if num else 1
    return counts


def _platform(name: str):
    if name == "zcu102":
        return zcu102()
    if name == "odroid_xu3":
        return odroid_xu3()
    raise ReproError(f"unknown platform {name!r} (zcu102 | odroid_xu3)")


def _backend(name: str):
    if name == "virtual":
        return VirtualBackend()
    if name == "threaded":
        return ThreadedBackend()
    raise ReproError(f"unknown backend {name!r} (virtual | threaded)")


def _apply_core(args: argparse.Namespace) -> None:
    """Apply ``--core`` for this process and any children it spawns.

    ``set_core`` validates the choice (an explicit ``compiled`` with no
    importable extension is an error, not a fallback); exporting the
    selection through ``DSSOC_CORE`` makes sweep worker processes
    inherit it.
    """
    choice = getattr(args, "core", None)
    if not choice:
        return
    from repro import core as core_select

    core_select.set_core(choice)
    import os

    os.environ[core_select.ENV_VAR] = choice


def _qos_controller(args: argparse.Namespace) -> QoSController:
    """One controller per run/perf invocation, even with no QoS spec: the
    empty controller carries the interrupt flag the signal handlers set,
    and an empty spec leaves the emulation bit-identical to a bare run."""
    spec = QoSSpec.from_json_file(args.qos) if args.qos else None
    return QoSController(spec, wall_budget_s=args.wall_budget)


@contextlib.contextmanager
def _graceful_signals(controller: QoSController):
    """SIGINT/SIGTERM ask the running backend to drain-then-flush.

    The original handlers are restored as soon as one signal fires, so a
    second signal terminates the process the ordinary way.
    """
    if threading.current_thread() is not threading.main_thread():
        yield  # signal.signal is main-thread-only (e.g. pytest workers)
        return
    originals: dict[int, object] = {}

    def restore() -> None:
        while originals:
            signum, previous = originals.popitem()
            signal.signal(signum, previous)

    def on_signal(signum, _frame) -> None:
        controller.request_interrupt(signal.Signals(signum).name)
        restore()

    for signum in (signal.SIGINT, signal.SIGTERM):
        originals[signum] = signal.signal(signum, on_signal)
    try:
        yield
    finally:
        restore()


def _interrupt_exit_code(stats) -> int:
    """130 for signal-interrupted runs; budget drains still exit 0."""
    if stats.interrupted and stats.interrupt_reason in ("SIGINT", "SIGTERM"):
        print(
            f"run interrupted ({stats.interrupt_reason}); partial results "
            "flushed", file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return EXIT_OK


def cmd_run(args: argparse.Namespace) -> int:
    _apply_core(args)
    faults = FaultSpec.from_json_file(args.faults) if args.faults else None
    controller = _qos_controller(args)
    emu = Emulation(
        platform=_platform(args.platform),
        config=args.config,
        policy=args.policy,
        materialize_memory=args.backend == "threaded",
        jitter=not args.no_jitter,
        seed=args.seed,
        faults=faults,
        qos=controller,
    )
    if args.arrivals:
        from repro.runtime.workload import ArrivalSpec

        if args.backend == "threaded":
            print("--arrivals requires the virtual backend (open-loop "
                  "streaming runs are timing-only)", file=sys.stderr)
            return EXIT_USAGE
        workload = ArrivalSpec.from_json_file(args.arrivals).build(
            rate_scale=args.rate_scale,
            duration_ms=args.duration_ms,
            max_apps=args.max_apps,
        )
    else:
        workload = validation_workload(_parse_apps(args.apps))
    backend = _backend(args.backend)
    if args.profile:
        # Profile the emulation phase only: workload construction and the
        # initialization phase (build_session) stay outside the profile so
        # the pstats file shows the DES hot loop, not JSON parsing.
        import cProfile

        from repro.runtime.emulation import EmulationResult

        session = emu.build_session(workload)
        profiler = cProfile.Profile()
        profiler.enable()
        with _graceful_signals(controller):
            stats = backend.run(session)
        profiler.disable()
        profiler.dump_stats(args.profile)
        result = EmulationResult(
            stats=stats,
            instances=session.instances,
            workload=workload,
            config_label=emu.config.describe(),
            policy=session.scheduler.name,
        )
        print(f"profile written to {args.profile}", file=sys.stderr)
    else:
        with _graceful_signals(controller):
            result = emu.run(workload, backend)
    if args.json:
        from repro import core as core_select
        from repro.analysis.trace_export import records_as_dicts

        doc = {
            "summary": result.stats.summary(),
            "core": core_select.core_info(),
            "tasks": records_as_dicts(result.stats),
        }
        if args.backend == "threaded":
            doc["outputs_correct"] = result.verify_outputs()
        print(json.dumps(doc, indent=2))
    else:
        print(json.dumps(result.stats.summary(), indent=2))
        if args.backend == "threaded":
            print("outputs correct:", result.verify_outputs())
    if result.stats.streaming and (args.gantt or args.trace):
        # Streaming stats keep no per-task records by design.
        print("note: --gantt/--trace are unavailable for streaming "
              "(--arrivals) runs; per-task records are not retained",
              file=sys.stderr)
    elif args.gantt or args.trace:
        if args.gantt and not args.json:
            from repro.analysis.trace_export import gantt_ascii

            print()
            print(gantt_ascii(result.stats))
        if args.trace:
            from repro.analysis.trace_export import write_csv, write_json

            if args.trace.endswith(".json"):
                write_json(result.stats, args.trace)
            else:
                write_csv(result.stats, args.trace)
            # keep stdout machine-readable under --json
            print(f"trace written to {args.trace}",
                  file=sys.stderr if args.json else sys.stdout)
    return _interrupt_exit_code(result.stats)


def _parse_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _sweep_grid(args: argparse.Namespace):
    """Build the SweepGrid from a spec file or from flags (flags win)."""
    from repro.dse import SweepGrid, rate_sweep, validation_sweep

    if args.spec:
        with open(args.spec, encoding="utf-8") as fh:
            grid = SweepGrid.from_dict(json.load(fh))
        return grid
    workloads: list[dict] = []
    if args.rates:
        workloads.extend(rate_sweep(float(r)) for r in _parse_list(args.rates))
    if args.apps or not workloads:
        workloads.append(validation_sweep(_parse_apps(args.apps or
                                                      "range_detection=1")))
    seeds: tuple[int | None, ...] = (
        tuple(int(s) for s in _parse_list(args.seeds)) if args.seeds else (None,)
    )
    return SweepGrid(
        platforms=tuple(_parse_list(args.platforms)),
        configs=tuple(_parse_list(args.configs)),
        policies=tuple(_parse_list(args.policies)),
        workloads=tuple(workloads),
        seeds=seeds,
        iterations=args.iterations,
        jitter=args.jitter,
        backend=args.backend,
        faults=_parse_faults_axis(args.faults),
        qos=_parse_qos_axis(args.qos),
    )


def _parse_faults_axis(path: str) -> tuple[dict | None, ...]:
    """A fault axis from a JSON file: one spec object, or a list of specs
    (``null`` entries meaning a fault-free cell)."""
    if not path:
        return (None,)
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FaultSpecError(f"cannot load fault axis {path!r}: {exc}") from exc
    entries = data if isinstance(data, list) else [data]
    axis = []
    for entry in entries:
        if entry is None:
            axis.append(None)
        else:
            # validate early; the grid carries the plain dict form
            axis.append(FaultSpec.from_dict(entry).to_dict())
    return tuple(axis)


def _parse_qos_axis(path: str) -> tuple[dict | None, ...]:
    """A QoS axis from a JSON file, same shape as the fault axis."""
    if not path:
        return (None,)
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise QoSSpecError(f"cannot load QoS axis {path!r}: {exc}") from exc
    entries = data if isinstance(data, list) else [data]
    axis = []
    for entry in entries:
        if entry is None:
            axis.append(None)
        else:
            axis.append(QoSSpec.from_dict(entry).to_dict())
    return tuple(axis)


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Make SIGTERM raise KeyboardInterrupt (sweep shutdown path)."""
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def on_signal(_signum, _frame) -> None:
        raise KeyboardInterrupt

    original = signal.signal(signal.SIGTERM, on_signal)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, original)


def cmd_sweep(args: argparse.Namespace) -> int:
    """Run a DSE campaign: expand the grid, execute cells in parallel."""
    from repro.analysis.figures import pareto_chart
    from repro.dse import run_campaign
    from repro.dse.frontier import render_frontier

    # --status / --gc operate on an existing campaign directory and run
    # no cells; the grid flags only serve to derive the default --out.
    _apply_core(args)
    if args.gc:
        from repro.dse.maintenance import gc_campaign

        out_dir = args.out or f".dssoc_campaigns/{_sweep_grid(args).grid_id}"
        print(json.dumps(gc_campaign(out_dir), indent=2))
        return EXIT_OK
    if args.status:
        from repro.dse.distrib import campaign_snapshot, render_status

        if args.server:
            # Ask the running server (authoritative, and immune to
            # cross-host clock skew: it stamps heartbeats on receipt).
            from repro.dse.distrib.net import NetTransport

            transport = NetTransport(args.server, worker_id="status")
            try:
                snap = transport.status_snapshot()
            finally:
                transport.close()
        else:
            out_dir = args.out or f".dssoc_campaigns/{_sweep_grid(args).grid_id}"
            snap = campaign_snapshot(out_dir)
        print(json.dumps(snap, indent=2) if args.json else render_status(snap))
        return EXIT_OK

    grid = _sweep_grid(args)
    out_dir = args.out or f".dssoc_campaigns/{grid.grid_id}"
    quiet = args.json

    def progress(done: int, total: int, result) -> None:
        if quiet:
            return
        status = "cached" if result.cached else result.status
        extra = ""
        if result.ok and result.metrics:
            extra = f"  makespan={result.metrics['makespan_ms']:.3f}ms"
        print(f"[{done:>4}/{total}] {result.cell.label:<40} {status}{extra}",
              file=sys.stderr)

    # SIGTERM behaves like Ctrl-C: the campaign journals in-flight cells as
    # interrupted (so --resume re-runs only those) before the interrupt
    # propagates to main(), which exits 130.
    if args.server:
        from repro.dse.distrib import (
            DEFAULT_LEASE_TTL_S,
            run_networked_campaign,
            status_line,
        )

        def net_status_fn(snap) -> None:
            print(status_line(snap), file=sys.stderr)

        with _sigterm_as_interrupt():
            campaign = run_networked_campaign(
                grid,
                out_dir=out_dir,
                server=args.server,
                workers=args.workers if args.workers is not None else 1,
                resume=args.resume,
                force=args.force,
                retries=args.retries,
                timeout_s=args.timeout,
                lease_ttl_s=(args.lease_ttl if args.lease_ttl is not None
                             else DEFAULT_LEASE_TTL_S),
                poll_s=args.poll,
                progress=progress,
                status_fn=None if quiet else net_status_fn,
            )
    elif args.workers is not None:
        from repro.dse.distrib import (
            DEFAULT_LEASE_TTL_S,
            run_distributed_campaign,
            status_line,
        )

        def status_fn(snap) -> None:
            print(status_line(snap), file=sys.stderr)

        with _sigterm_as_interrupt():
            campaign = run_distributed_campaign(
                grid,
                out_dir=out_dir,
                workers=args.workers,
                resume=args.resume,
                force=args.force,
                retries=args.retries,
                timeout_s=args.timeout,
                lease_ttl_s=(args.lease_ttl if args.lease_ttl is not None
                             else DEFAULT_LEASE_TTL_S),
                poll_s=args.poll,
                progress=progress,
                status_fn=None if quiet else status_fn,
            )
    else:
        with _sigterm_as_interrupt():
            campaign = run_campaign(
                grid,
                out_dir=out_dir,
                jobs=args.jobs,
                timeout_s=args.timeout,
                retries=args.retries,
                resume=args.resume,
                force=args.force,
                progress=progress,
            )

    if args.json:
        print(json.dumps(
            {"summary": campaign.summary(), "cells": campaign.rows()}, indent=2
        ))
    else:
        summary = campaign.summary()
        print(campaign.table(sort_by=args.sort_by))
        rows = [r for r in campaign.rows() if r["status"] == "ok"]
        if len(rows) > 1:
            print()
            print(render_frontier(rows))
            try:
                print()
                print(pareto_chart(rows))
            except ValueError:
                pass  # degenerate plane (all failed / single point)
        print()
        print(
            f"campaign: {summary['cells']} cells, {summary['executed']} "
            f"executed, {summary['cached']} cached, {summary['failed']} "
            f"failed in {summary['elapsed_s']}s -> {out_dir}"
        )
    return 0 if campaign.ok else 1


def cmd_sweep_worker(args: argparse.Namespace) -> int:
    """Attach one worker process to a distributed campaign.

    Spawned by ``sweep --workers N`` on the campaign host, started by
    hand on any machine mounting the campaign directory (``--out DIR``),
    or attached over TCP to a ``sweep-server`` (``--server HOST:PORT`` —
    no shared mount needed).  SIGINT/SIGTERM drain gracefully: the
    in-flight cell completes (and is journaled) before the worker exits
    130.  A network worker that exhausts its reconnect budget exits 130
    too (``server_lost``), leaving its local spool intact for the next
    attach.
    """
    from repro.dse.distrib import run_worker

    _apply_core(args)
    if not args.out and not args.server:
        print("sweep-worker needs --out DIR or --server HOST:PORT",
              file=sys.stderr)
        return EXIT_USAGE
    controller = QoSController(None, wall_budget_s=args.wall_budget)

    transport = None
    if args.server:
        from repro.dse.distrib.net import NetTransport
        from repro.dse.distrib.queue import default_worker_id

        transport = NetTransport(
            args.server,
            worker_id=args.worker_id or default_worker_id(),
            spool_dir=args.spool or None,
        )

    def log(msg: str) -> None:
        print(msg, file=sys.stderr)

    with _graceful_signals(controller):
        summary = run_worker(
            args.out or None,
            worker_id=args.worker_id or None,
            transport=transport,
            lease_ttl_s=args.lease_ttl,
            poll_s=args.poll,
            oneshot=args.oneshot,
            max_cells=args.max_cells,
            controller=controller,
            reconnect_budget_s=args.reconnect_budget,
            log=log,
        )
    print(json.dumps(summary.to_dict(), indent=2))
    if summary.stop_reason in ("SIGINT", "SIGTERM", "server_lost"):
        return EXIT_INTERRUPTED
    return EXIT_OK


def cmd_sweep_server(args: argparse.Namespace) -> int:
    """Serve one sweep campaign over TCP (the network-transport hub).

    Owns the campaign directory: manifest, leases, result submission,
    failure records, heartbeats, and the canonical journal.  Workers and
    coordinators attach with ``--server HOST:PORT``.  All campaign state
    is durable — a SIGKILL'd server restarted on the same directory
    resumes exactly where it was (workers spool, reconnect, and re-claim
    on their own).  SIGINT/SIGTERM shut down cleanly.
    """
    from repro.dse.distrib.net.server import run_server

    stop = threading.Event()
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            signal.signal(signum, lambda _s, _f: stop.set())

    def ready(host: str, port: int) -> None:
        import os

        print(json.dumps({"host": host, "port": port, "pid": os.getpid()}),
              flush=True)
        print(f"sweep-server listening on {host}:{port} "
              f"(campaign: {args.out})", file=sys.stderr)

    run_server(
        args.out,
        host=args.host,
        port=args.port,
        lease_ttl_s=args.lease_ttl,
        stop=stop,
        ready=ready,
    )
    return EXIT_OK


def cmd_perf(args: argparse.Namespace) -> int:
    _apply_core(args)
    if args.rate not in TABLE_II_RATES:
        print(f"rate must be one of {TABLE_II_RATES}", file=sys.stderr)
        return EXIT_USAGE
    controller = _qos_controller(args)
    emu = Emulation(
        platform=_platform(args.platform),
        config=args.config,
        policy=args.policy,
        materialize_memory=False,
        jitter=False,
        qos=controller,
    )
    with _graceful_signals(controller):
        result = emu.run(table_ii_workload(args.rate), VirtualBackend())
    print(json.dumps(result.stats.summary(), indent=2))
    return _interrupt_exit_code(result.stats)


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf benchmark suite; write a BENCH_<timestamp>.json report."""
    from repro.perf import (
        all_scenario_names,
        compare_reports,
        format_core_compare,
        format_report,
        load_report,
        run_suite,
        run_suite_compare_cores,
        write_report,
    )

    if args.list:
        for name in all_scenario_names():
            print(name)
        return 0
    _apply_core(args)
    names = _parse_list(args.scenario) if args.scenario else None
    quiet = args.json

    def progress(done: int, total: int, name: str) -> None:
        if not quiet:
            print(f"[{done + 1}/{total}] {name} ...", file=sys.stderr)

    if args.compare_cores:
        pure_doc, compiled_doc = run_suite_compare_cores(
            names,
            reps=args.reps,
            warmup=args.warmup,
            quick=args.quick,
            progress=progress,
        )
        paths = []
        if not args.no_write:
            paths = [
                write_report(pure_doc, out_dir=args.out, tag="pure"),
                write_report(compiled_doc, out_dir=args.out, tag="compiled"),
            ]
        if args.json:
            print(json.dumps(
                {"pure": pure_doc, "compiled": compiled_doc}, indent=2
            ))
        else:
            print(format_core_compare(pure_doc, compiled_doc))
        for p in paths:
            print(f"report written to {p}", file=sys.stderr)
        return 0

    doc = run_suite(
        names,
        reps=args.reps,
        warmup=args.warmup,
        quick=args.quick,
        progress=progress,
    )
    path = None
    if not args.no_write:
        path = write_report(doc, out_dir=args.out)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(format_report(doc))
    if args.baseline:
        base = load_report(args.baseline)
        print()
        print(compare_reports(base, doc))
    if path is not None:
        print(f"report written to {path}", file=sys.stderr)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    name = args.name
    if name == "table1":
        from repro.experiments.case_study_2 import render_table_i, run_table_i

        print(render_table_i(run_table_i()))
    elif name == "fig9":
        from repro.experiments.case_study_1 import render_fig9, run_fig9

        print(render_fig9(run_fig9(iterations=args.iterations)))
    elif name == "fig10":
        from repro.experiments.case_study_2 import render_fig10, run_fig10

        print(render_fig10(run_fig10()))
    elif name == "fig11":
        from repro.experiments.case_study_3 import render_fig11, run_fig11

        print(render_fig11(run_fig11()))
    elif name == "cs4":
        from repro.experiments.case_study_4 import (
            render_case_study_4,
            run_case_study_4,
        )

        print(render_case_study_4(run_case_study_4()))
    else:
        print(f"unknown experiment {name!r}", file=sys.stderr)
        return 2
    return 0


def cmd_export_specs(args: argparse.Namespace) -> int:
    """Write every bundled application's Listing-1 JSON to a directory."""
    from pathlib import Path

    from repro.appmodel.jsonspec import dump_graph
    from repro.apps import default_applications

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, graph in sorted(default_applications().items()):
        path = outdir / f"{name}.json"
        dump_graph(graph, path)
        print(f"wrote {path} ({graph.task_count} tasks)")
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    from repro.apps import default_applications

    rows = [
        [name, graph.task_count, len(graph.variables)]
        for name, graph in sorted(default_applications().items())
    ]
    print(format_table(["application", "tasks", "variables"], rows,
                       title="Registered applications"))
    print()
    print("Scheduling policies:", ", ".join(available_policies()))
    print("Platforms: zcu102, odroid_xu3")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dssoc-emulate",
        description="User-space emulation framework for DSSoC design",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_core_flag(p: argparse.ArgumentParser) -> None:
        p.add_argument("--core", default="",
                       choices=["auto", "pure", "compiled"],
                       help="DES core variant (default: DSSOC_CORE env or "
                            "auto); 'compiled' errors if the extension is "
                            "not built")

    run_p = sub.add_parser("run", help="validation-mode emulation")
    add_core_flag(run_p)
    run_p.add_argument("--platform", default="zcu102")
    run_p.add_argument("--config", default="3C+2F")
    run_p.add_argument("--policy", default="frfs")
    run_p.add_argument("--apps", default="range_detection=1")
    run_p.add_argument("--arrivals", default="",
                       help="arrival-spec JSON file: open-loop streaming "
                            "injection instead of --apps "
                            "(see docs/serving.md)")
    run_p.add_argument("--rate-scale", type=float, default=1.0,
                       help="with --arrivals: multiply the spec's offered "
                            "load (trace replay: divide timestamps)")
    run_p.add_argument("--duration-ms", type=float, default=None,
                       help="with --arrivals: override the spec's arrival "
                            "window")
    run_p.add_argument("--max-apps", type=int, default=None,
                       help="with --arrivals: override the spec's arrival "
                            "cap")
    run_p.add_argument("--backend", default="virtual",
                       choices=["virtual", "threaded"])
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--no-jitter", action="store_true")
    run_p.add_argument("--faults", default="",
                       help="fault-spec JSON file (see docs/faults.md)")
    run_p.add_argument("--qos", default="",
                       help="QoS-spec JSON file (see docs/qos.md)")
    run_p.add_argument("--wall-budget", type=float, default=None,
                       help="wall-clock run budget in seconds; on expiry "
                            "the run drains and flushes partial results")
    run_p.add_argument("--gantt", action="store_true",
                       help="print an ASCII Gantt chart of the schedule")
    run_p.add_argument("--trace", default="",
                       help="write the task schedule to a .csv/.json file")
    run_p.add_argument("--json", action="store_true",
                       help="print summary + full task schedule as one JSON "
                            "document (machine-readable stdout)")
    run_p.add_argument("--profile", default="",
                       help="dump a cProfile pstats file of the emulation "
                            "phase (excludes workload construction)")
    run_p.set_defaults(fn=cmd_run)

    perf_p = sub.add_parser("perf", help="performance-mode emulation")
    add_core_flag(perf_p)
    perf_p.add_argument("--platform", default="zcu102")
    perf_p.add_argument("--config", default="3C+2F")
    perf_p.add_argument("--policy", default="frfs")
    perf_p.add_argument("--rate", type=float, default=1.71)
    perf_p.add_argument("--qos", default="",
                        help="QoS-spec JSON file (see docs/qos.md)")
    perf_p.add_argument("--wall-budget", type=float, default=None,
                        help="wall-clock run budget in seconds")
    perf_p.set_defaults(fn=cmd_perf)

    exp_p = sub.add_parser("experiment", help="regenerate a paper artifact")
    exp_p.add_argument("name", choices=["table1", "fig9", "fig10", "fig11", "cs4"])
    exp_p.add_argument("--iterations", type=int, default=50)
    exp_p.set_defaults(fn=cmd_experiment)

    sweep_p = sub.add_parser(
        "sweep", help="run a DSE campaign (configs x policies x workloads)"
    )
    add_core_flag(sweep_p)
    sweep_p.add_argument("--spec", default="",
                         help="JSON campaign spec file (overrides grid flags)")
    sweep_p.add_argument("--platforms", default="zcu102")
    sweep_p.add_argument("--configs", default="2C+2F,3C+2F")
    sweep_p.add_argument("--policies", default="frfs")
    sweep_p.add_argument("--apps", default="",
                         help="validation workload, e.g. range_detection=2,wifi_tx=1")
    sweep_p.add_argument("--rates", default="",
                         help="comma-separated injection rates (jobs/ms) "
                              "swept as performance-mode workloads")
    sweep_p.add_argument("--seeds", default="", help="comma-separated seeds")
    sweep_p.add_argument("--faults", default="",
                         help="fault axis: JSON file with one fault spec or "
                              "a list of specs (null = fault-free cell)")
    sweep_p.add_argument("--qos", default="",
                         help="QoS axis: JSON file with one QoS spec or a "
                              "list of specs (null = QoS-free cell)")
    sweep_p.add_argument("--iterations", type=int, default=1,
                         help="emulation iterations per cell")
    sweep_p.add_argument("--jitter", action="store_true",
                         help="enable the execution-time jitter model")
    sweep_p.add_argument("--backend", default="virtual",
                         choices=["virtual", "threaded"])
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = inline execution)")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-cell wall-clock timeout in seconds")
    sweep_p.add_argument("--retries", type=int, default=1,
                         help="re-attempts per failing cell")
    sweep_p.add_argument("--out", default="",
                         help="campaign directory (cache + journal + results); "
                              "defaults to .dssoc_campaigns/<grid-hash>")
    sweep_p.add_argument("--resume", action="store_true",
                         help="append to the existing journal and re-queue "
                              "only incomplete cells")
    sweep_p.add_argument("--force", action="store_true",
                         help="ignore cached results and recompute")
    sweep_p.add_argument("--sort-by", default=None,
                         help="sort the results table by this column "
                              "(e.g. makespan_ms, total_energy_j)")
    sweep_p.add_argument("--json", action="store_true",
                         help="print the campaign result set as JSON")
    sweep_p.add_argument("--workers", type=int, default=None,
                         help="distributed mode: spawn N local worker "
                              "processes coordinated through the campaign "
                              "directory (0 = coordinate only; more workers "
                              "may attach with 'sweep-worker --out DIR')")
    sweep_p.add_argument("--server", default="",
                         help="network mode: coordinate through a running "
                              "sweep-server at HOST:PORT instead of a shared "
                              "campaign directory (with --status: query the "
                              "server's live snapshot)")
    sweep_p.add_argument("--lease-ttl", type=float, default=None,
                         help="distributed cell-lease TTL in seconds; a "
                              "worker that stops heartbeating for this long "
                              "forfeits its cell (default 30)")
    sweep_p.add_argument("--poll", type=float, default=0.5,
                         help="distributed coordinator/worker poll interval "
                              "in seconds")
    sweep_p.add_argument("--status", action="store_true",
                         help="print live status of the campaign in --out "
                              "(cells/sec, ETA, worker health, cache hits) "
                              "and exit without running anything")
    sweep_p.add_argument("--gc", action="store_true",
                         help="garbage-collect the campaign in --out (prune "
                              "orphaned/corrupt cache entries, compact the "
                              "journal) and exit without running anything")
    sweep_p.set_defaults(fn=cmd_sweep)

    worker_p = sub.add_parser(
        "sweep-worker",
        help="attach one worker to a distributed sweep campaign "
             "(directory or server)",
    )
    add_core_flag(worker_p)
    worker_p.add_argument("--out", default="",
                          help="campaign directory (as passed to sweep --out)")
    worker_p.add_argument("--server", default="",
                          help="attach over TCP to a sweep-server at "
                               "HOST:PORT instead of a shared directory")
    worker_p.add_argument("--worker-id", default="",
                          help="stable worker name (default: <host>-<pid>)")
    worker_p.add_argument("--lease-ttl", type=float, default=None,
                          help="override the campaign manifest's lease TTL")
    worker_p.add_argument("--poll", type=float, default=0.5,
                          help="idle poll interval in seconds")
    worker_p.add_argument("--oneshot", action="store_true",
                          help="exit after the first pass that finds no "
                               "claimable work instead of waiting on peers")
    worker_p.add_argument("--max-cells", type=int, default=None,
                          help="stop after resolving this many cells")
    worker_p.add_argument("--wall-budget", type=float, default=None,
                          help="wall-clock budget in seconds; on expiry the "
                               "worker finishes its in-flight cell and exits")
    worker_p.add_argument("--spool", default="",
                          help="network mode: directory for results computed "
                               "while the server is unreachable (default: a "
                               "stable per-endpoint path under the system "
                               "temp dir)")
    worker_p.add_argument("--reconnect-budget", type=float,
                          default=60.0,
                          help="network mode: seconds to keep retrying a "
                               "lost server before exiting with its spool "
                               "intact (default 60)")
    worker_p.set_defaults(fn=cmd_sweep_worker)

    server_p = sub.add_parser(
        "sweep-server",
        help="serve one sweep campaign over TCP (no shared mount needed)",
    )
    server_p.add_argument("--out", required=True,
                          help="campaign directory the server owns (journal, "
                               "cache, failure records live here)")
    server_p.add_argument("--host", default="127.0.0.1",
                          help="bind address (default 127.0.0.1; use 0.0.0.0 "
                               "for off-host workers)")
    server_p.add_argument("--port", type=int, default=0,
                          help="bind port (default 0 = ephemeral; the chosen "
                               "port is printed and written to "
                               "<out>/distrib/server.json)")
    server_p.add_argument("--lease-ttl", type=float, default=None,
                          help="override the published campaign's lease TTL")
    server_p.set_defaults(fn=cmd_sweep_server)

    bench_p = sub.add_parser(
        "bench", help="measure emulator throughput on canonical scenarios"
    )
    add_core_flag(bench_p)
    bench_p.add_argument("--scenario", default="",
                         help="comma-separated scenario names (default: all)")
    bench_p.add_argument("--quick", action="store_true",
                         help="small workloads, 1 rep, no warmup (CI smoke)")
    bench_p.add_argument("--reps", type=int, default=3,
                         help="timed repetitions per scenario")
    bench_p.add_argument("--warmup", type=int, default=1,
                         help="untimed warmup runs per scenario")
    bench_p.add_argument("--out", default="benchmarks/results",
                         help="directory for the BENCH_<timestamp>.json report")
    bench_p.add_argument("--no-write", action="store_true",
                         help="skip writing the report file")
    bench_p.add_argument("--baseline", default="",
                         help="prior BENCH_*.json to print a speedup table "
                              "against")
    bench_p.add_argument("--json", action="store_true",
                         help="print the report document as JSON on stdout")
    bench_p.add_argument("--list", action="store_true",
                         help="list scenario names and exit")
    bench_p.add_argument("--compare-cores", action="store_true",
                         help="run every scenario under both the pure and "
                              "compiled cores (interleaved), assert their "
                              "stats are bit-identical, and print a speedup "
                              "table; writes one BENCH report per core")
    bench_p.set_defaults(fn=cmd_bench)

    list_p = sub.add_parser("list", help="show registered apps and policies")
    list_p.set_defaults(fn=cmd_list)

    export_p = sub.add_parser(
        "export-specs", help="write bundled app JSONs (Listing 1 schema)"
    )
    export_p.add_argument("--outdir", default="specs")
    export_p.set_defaults(fn=cmd_export_specs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
