"""Runtime selection of the DES core implementation (pure vs compiled).

The virtual backend and the scheduler inner loops exist twice: the
pure-Python reference (always available) and the compiled extension in
``repro._native._coreext`` (built with ``python -m repro._native.build``).
Both are bit-identical by contract; this module decides which one a
process uses.

Selection precedence:

1. An explicit programmatic/CLI choice (``set_core``/``--core``).
   Requesting ``compiled`` when the extension cannot be imported is an
   error — the user asked for something that does not exist.
2. The ``DSSOC_CORE`` environment variable (``pure``/``compiled``/
   ``auto``).  ``compiled`` without the extension falls back to pure
   with a single warning: env vars travel between machines, and a
   missing optional build should not break scripted runs.
3. ``auto`` (the default): compiled when importable, else pure, silently.

Sweep workers inherit the selection through ``DSSOC_CORE`` (the CLI
exports its ``--core`` choice into the environment before forking).
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager

from repro import _native
from repro.common.errors import ReproError

CORE_PURE = "pure"
CORE_COMPILED = "compiled"
CORE_AUTO = "auto"
_CHOICES = (CORE_AUTO, CORE_PURE, CORE_COMPILED)

ENV_VAR = "DSSOC_CORE"

#: explicit programmatic selection; None defers to the environment
_forced: str | None = None
_warned_fallback = False


def _unavailable_message() -> str:
    err = _native.import_error()
    hint = (
        "build it with `python -m repro._native.build` "
        "(or `pip install -e .` with a C compiler available)"
    )
    detail = f": {err}" if err else ""
    return f"compiled core extension is not importable{detail}; {hint}"


def set_core(choice: str | None) -> str:
    """Select the core explicitly (CLI ``--core``); returns the variant.

    ``None`` or ``"auto"`` clears the explicit choice and re-resolves
    from the environment.  An explicit ``"compiled"`` with no importable
    extension raises :class:`ReproError` instead of falling back.
    """
    global _forced
    if choice is None:
        choice = CORE_AUTO
    if choice not in _CHOICES:
        raise ReproError(
            f"unknown core {choice!r}; expected one of {', '.join(_CHOICES)}"
        )
    if choice == CORE_COMPILED and not _native.available():
        raise ReproError(f"--core compiled requested but {_unavailable_message()}")
    _forced = None if choice == CORE_AUTO else choice
    return selected_core()


def selected_core() -> str:
    """The active core variant: ``"pure"`` or ``"compiled"``."""
    global _warned_fallback
    if _forced is not None:
        return _forced
    env = os.environ.get(ENV_VAR, CORE_AUTO).strip().lower() or CORE_AUTO
    if env not in _CHOICES:
        raise ReproError(
            f"invalid {ENV_VAR}={env!r}; expected one of {', '.join(_CHOICES)}"
        )
    if env == CORE_PURE:
        return CORE_PURE
    if env == CORE_COMPILED:
        if _native.available():
            return CORE_COMPILED
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"{ENV_VAR}=compiled but {_unavailable_message()}; "
                "falling back to the pure-Python core",
                RuntimeWarning,
                stacklevel=2,
            )
        return CORE_PURE
    # auto: use the extension when present, silently
    return CORE_COMPILED if _native.available() else CORE_PURE


def native_kernels():
    """The compiled kernel module when selected, else None.

    Hot-path call sites branch on this once per construction: a non-None
    return means the compiled scheduler kernels and engine are in use.
    """
    if selected_core() == CORE_COMPILED:
        return _native.load()
    return None


def make_engine():
    """A DES engine of the selected variant (same API either way)."""
    if selected_core() == CORE_COMPILED:
        from repro.sim.compiled import CompiledEngine

        return CompiledEngine()
    from repro.sim.engine import Engine

    return Engine()


def core_info() -> dict:
    """Provenance record for reports: variant + build metadata."""
    variant = selected_core()
    info: dict = {"variant": variant}
    if variant == CORE_COMPILED:
        info["build"] = _native.build_info()
    return info


@contextmanager
def forced(choice: str):
    """Temporarily force a core variant (test hook)."""
    global _forced
    prev = _forced
    set_core(choice)
    try:
        yield
    finally:
        _forced = prev


def reset_for_tests() -> None:
    """Clear explicit selection and the fallback-warning latch."""
    global _forced, _warned_fallback
    _forced = None
    _warned_fallback = False
