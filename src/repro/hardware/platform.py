"""COTS SoC platform descriptions — the emulation testbeds.

A :class:`SoCPlatform` describes the underlying chip the framework runs on:
its host CPU cores (with relative speeds and cluster tags), which core is
reserved as the *overlay/management* processor (runs the application
handler and workload manager), which cores form the resource pool, what PE
types can be instantiated and how many of each, and a factory for
accelerator devices.

Two factory functions build the paper's platforms:

* :func:`zcu102` — Zynq UltraScale+ MPSoC: quad Cortex-A53 (core 0 reserved
  for the overlay processor; cores 1–3 in the resource pool) plus up to two
  FFT accelerators in the programmable fabric.
* :func:`odroid_xu3` — Exynos 5422: four A15 big cores and four A7 LITTLE
  cores; one LITTLE core is the overlay processor, the remaining four big
  and three LITTLE cores form the resource pool.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import HardwareConfigError
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.hardware.pe import PE_BIG, PE_CPU, PE_FFT, PE_LITTLE, PEType


@dataclass(frozen=True)
class HostCoreSpec:
    """One physical core of the underlying SoC.

    ``cluster`` names which PE type's tasks this core can host ("cpu" on
    the ZCU102; "big"/"little" on the Odroid's heterogeneous clusters).
    ``speed`` is relative to the reference A53.
    """

    index: int
    name: str
    cluster: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise HardwareConfigError(f"core {self.name!r}: speed must be > 0")


@dataclass
class SoCPlatform:
    """An underlying SoC: host cores, PE-type inventory, device factory."""

    name: str
    host_cores: tuple[HostCoreSpec, ...]
    management_core: int
    pool_cores: tuple[int, ...]
    pe_types: dict[str, PEType]
    max_pe_counts: dict[str, int]
    accelerator_factory: Callable[[str], FFTAcceleratorDevice] | None = None
    description: str = ""

    def __post_init__(self) -> None:
        indices = {c.index for c in self.host_cores}
        if len(indices) != len(self.host_cores):
            raise HardwareConfigError(f"{self.name}: duplicate host core indices")
        if self.management_core not in indices:
            raise HardwareConfigError(
                f"{self.name}: management core {self.management_core} not a host core"
            )
        if self.management_core in self.pool_cores:
            raise HardwareConfigError(
                f"{self.name}: management core cannot also be in the resource pool"
            )
        for idx in self.pool_cores:
            if idx not in indices:
                raise HardwareConfigError(f"{self.name}: pool core {idx} unknown")
        for type_name in self.max_pe_counts:
            if type_name not in self.pe_types:
                raise HardwareConfigError(
                    f"{self.name}: max count given for unknown PE type {type_name!r}"
                )

    def core(self, index: int) -> HostCoreSpec:
        for c in self.host_cores:
            if c.index == index:
                return c
        raise HardwareConfigError(f"{self.name}: no host core {index}")

    def pool_cores_for_cluster(self, cluster: str) -> list[int]:
        """Resource-pool cores belonging to a cluster, in index order."""
        return [
            idx for idx in self.pool_cores if self.core(idx).cluster == cluster
        ]

    def pe_type(self, name: str) -> PEType:
        try:
            return self.pe_types[name]
        except KeyError:
            raise HardwareConfigError(
                f"{self.name}: unknown PE type {name!r} "
                f"(available: {sorted(self.pe_types)})"
            ) from None

    def max_count(self, type_name: str) -> int:
        return self.max_pe_counts.get(type_name, 0)

    def make_accelerator(self, name: str) -> FFTAcceleratorDevice:
        if self.accelerator_factory is None:
            raise HardwareConfigError(
                f"{self.name}: platform has no accelerator devices"
            )
        return self.accelerator_factory(name)

    @property
    def management_core_speed(self) -> float:
        return self.core(self.management_core).speed


def zcu102() -> SoCPlatform:
    """Zynq UltraScale+ MPSoC evaluation platform (paper Sec. III-B)."""
    cores = tuple(
        HostCoreSpec(index=i, name=f"A53_{i}", cluster="cpu", speed=1.0)
        for i in range(4)
    )
    return SoCPlatform(
        name="zcu102",
        host_cores=cores,
        management_core=0,
        pool_cores=(1, 2, 3),
        pe_types={"cpu": PE_CPU, "fft": PE_FFT},
        max_pe_counts={"cpu": 3, "fft": 2},
        accelerator_factory=lambda name: FFTAcceleratorDevice(name),
        description=(
            "Quad Cortex-A53 + programmable fabric; core 0 is the overlay "
            "processor, up to 2 FFT accelerators behind AXI DMA"
        ),
    )


def odroid_xu3() -> SoCPlatform:
    """Odroid XU3 (Exynos 5422 big.LITTLE) platform (paper Sec. III-B).

    Cores 0–3 are Cortex-A15 (big), cores 4–7 Cortex-A7 (LITTLE).  Core 7
    (a LITTLE core) is the overlay processor — the paper notes its lower
    operating frequency inflates scheduling overhead, which is what makes
    high-PE-count configurations lose in Fig. 11.
    """
    bigs = tuple(
        HostCoreSpec(index=i, name=f"A15_{i}", cluster="big", speed=PE_BIG.speed)
        for i in range(4)
    )
    littles = tuple(
        HostCoreSpec(
            index=4 + i, name=f"A7_{i}", cluster="little", speed=PE_LITTLE.speed
        )
        for i in range(4)
    )
    return SoCPlatform(
        name="odroid_xu3",
        host_cores=bigs + littles,
        management_core=7,
        pool_cores=(0, 1, 2, 3, 4, 5, 6),
        pe_types={"big": PE_BIG, "little": PE_LITTLE},
        max_pe_counts={"big": 4, "little": 3},
        accelerator_factory=None,
        description=(
            "Exynos 5422 big.LITTLE: 4x A15 + 4x A7; one A7 is the overlay "
            "processor, 4 big + 3 LITTLE cores form the resource pool"
        ),
    )
