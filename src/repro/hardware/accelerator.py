"""FFT accelerator device model (programmable-fabric IP on the ZCU102).

The device has a bounded Block RAM, a start/busy/done control interface,
and a compute-time model.  Both backends use it:

* the **threaded** backend drives the functional path — stage input through
  the DMA buffer, ``start()``, poll ``state`` until DONE, read results —
  and the device really computes the FFT of whatever is in its BRAM;
* the **virtual** backend uses only :meth:`compute_time` and the DMA model
  to charge virtual time for the same protocol steps.

Following the paper's accelerator-integration contract, a user integrates a
new device by implementing exactly this surface: data-transfer blocks plus
programming logic to start the device and monitor completion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmulationError, HardwareConfigError, MemoryError_
from repro.hardware.dma import DMAModel, DmaBuffer


class AcceleratorState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    DONE = "done"


@dataclass(frozen=True)
class FFTTimingModel:
    """Compute-time model for the fabric FFT: ``setup + n*log2(n)*per_stage``.

    A streaming radix-2 pipeline processes n log n butterfly operations;
    ``setup_us`` covers configuration-register writes and pipeline fill.
    """

    setup_us: float = 4.0
    per_point_stage_us: float = 0.004

    def compute_time(self, n_points: int) -> float:
        if n_points <= 0:
            raise MemoryError_(f"FFT size must be positive, got {n_points}")
        stages = max(1, int(np.ceil(np.log2(n_points))))
        return self.setup_us + n_points * stages * self.per_point_stage_us


class FFTAcceleratorDevice:
    """One FFT accelerator instance with its DMA engine and BRAM."""

    def __init__(
        self,
        name: str,
        *,
        bram_bytes: int = 32 * 1024,
        dma: DMAModel | None = None,
        timing: FFTTimingModel | None = None,
        max_points: int = 4096,
    ) -> None:
        if bram_bytes <= 0:
            raise HardwareConfigError("BRAM capacity must be positive")
        self.name = name
        self.bram_bytes = bram_bytes
        self.dma = dma if dma is not None else DMAModel(
            setup_latency_us=14.0, bandwidth_bytes_per_us=300.0
        )
        self.timing = timing if timing is not None else FFTTimingModel()
        self.max_points = max_points
        self.buffer = DmaBuffer(bram_bytes)
        self.state = AcceleratorState.IDLE
        self._pending_points = 0
        self._pending_inverse = False
        self.jobs_completed = 0

    # -- timing-model interface (virtual backend) ------------------------------

    def compute_time(self, n_points: int) -> float:
        """Device compute time in µs, excluding DMA."""
        return self.timing.compute_time(n_points)

    def job_time(self, n_points: int, *, complex_bytes: int = 8) -> float:
        """End-to-end accelerator service time: DMA in + compute + DMA out."""
        nbytes = n_points * complex_bytes
        return self.dma.round_trip_time(nbytes, nbytes) + self.compute_time(n_points)

    # -- functional interface (threaded backend) --------------------------------

    def load(self, samples: np.ndarray, inverse: bool = False) -> None:
        """DMA input samples into BRAM; device must be idle."""
        if self.state is not AcceleratorState.IDLE:
            raise EmulationError(
                f"accelerator {self.name!r}: load() while {self.state.value}"
            )
        data = np.ascontiguousarray(samples, dtype=np.complex64)
        if data.size > self.max_points:
            raise MemoryError_(
                f"accelerator {self.name!r}: {data.size} points exceeds "
                f"max {self.max_points}"
            )
        self.buffer.write(data)
        self._pending_points = data.size
        self._pending_inverse = inverse

    def start(self) -> None:
        """Kick off the transform on whatever was loaded."""
        if self.state is not AcceleratorState.IDLE:
            raise EmulationError(
                f"accelerator {self.name!r}: start() while {self.state.value}"
            )
        if self._pending_points == 0:
            raise EmulationError(f"accelerator {self.name!r}: start() before load()")
        self.state = AcceleratorState.BUSY

    def step(self) -> None:
        """Advance the device: performs the transform and raises DONE.

        In hardware this happens asynchronously; the threaded backend calls
        ``step()`` from its device-service path between the resource
        manager's ``start()`` and its completion poll.
        """
        if self.state is not AcceleratorState.BUSY:
            return
        n = self._pending_points
        data = self.buffer.view(n * 8, np.complex64)
        if self._pending_inverse:
            result = np.fft.ifft(data).astype(np.complex64)
        else:
            result = np.fft.fft(data).astype(np.complex64)
        data[:] = result
        self.state = AcceleratorState.DONE
        self.jobs_completed += 1

    def poll(self) -> bool:
        """True once the device has finished (the status-register read)."""
        return self.state is AcceleratorState.DONE

    def read_result(self) -> np.ndarray:
        """DMA results back out of BRAM; resets the device to idle."""
        if self.state is not AcceleratorState.DONE:
            raise EmulationError(
                f"accelerator {self.name!r}: read_result() while {self.state.value}"
            )
        out = self.buffer.read(self._pending_points * 8, np.complex64)
        self.state = AcceleratorState.IDLE
        self._pending_points = 0
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FFTAcceleratorDevice({self.name!r}, state={self.state.value})"
