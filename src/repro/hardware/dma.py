"""DMA engine model — the AXI-Stream + udmabuf data path of Fig. 6.

On the ZCU102 the framework moves data between main memory (DDR) and an
accelerator's Block RAM through a DMA IP over AXI4-Stream, staged through a
contiguous kernel-space buffer exposed to user space by the udmabuf driver.
Two costs matter for the paper's findings: a fixed per-transfer setup
latency (driver call + descriptor programming) and a bandwidth-limited copy
time.  Their sum is what makes a 128-point FFT *slower* on the fabric
accelerator than on an A53 core (Fig. 9 discussion).

:class:`DmaBuffer` is the functional udmabuf analog used by the threaded
backend: a page-aligned staging region that source data is copied into
before the "device" reads it, and results are copied out of.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import HardwareConfigError, MemoryError_


@dataclass(frozen=True)
class DMAModel:
    """Transfer-cost model: ``time = setup_latency + bytes / bandwidth``.

    ``setup_latency_us`` covers descriptor programming and the user-space
    driver round trip; ``bandwidth_bytes_per_us`` the streaming rate (e.g.
    300 B/us = 300 MB/s for a modestly clocked AXI DMA).
    """

    setup_latency_us: float
    bandwidth_bytes_per_us: float

    def __post_init__(self) -> None:
        if self.setup_latency_us < 0:
            raise HardwareConfigError("DMA setup latency must be >= 0")
        if self.bandwidth_bytes_per_us <= 0:
            raise HardwareConfigError("DMA bandwidth must be > 0")

    def transfer_time(self, nbytes: int) -> float:
        """One-way transfer time in µs for ``nbytes``."""
        if nbytes < 0:
            raise MemoryError_(f"negative transfer size: {nbytes}")
        return self.setup_latency_us + nbytes / self.bandwidth_bytes_per_us

    def round_trip_time(self, in_bytes: int, out_bytes: int) -> float:
        """DDR→device plus device→DDR transfer time."""
        return self.transfer_time(in_bytes) + self.transfer_time(out_bytes)


class DmaBuffer:
    """Functional udmabuf analog: a contiguous, device-visible staging buffer.

    The threaded backend copies task data into the buffer (DDR→buffer), the
    device model reads/writes it in place (buffer = its stream port), and
    results are copied back out.  Capacity violations raise, mirroring a
    real udmabuf allocation being too small for the requested transfer.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise MemoryError_("DMA buffer capacity must be positive")
        self.capacity = capacity
        self._storage = np.zeros(capacity, dtype=np.uint8)
        self.bytes_in: int = 0
        self.transfer_count: int = 0

    def write(self, data: np.ndarray) -> None:
        """Stage data into the buffer (the DDR→device copy)."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if raw.nbytes > self.capacity:
            raise MemoryError_(
                f"transfer of {raw.nbytes} bytes exceeds DMA buffer capacity "
                f"of {self.capacity}"
            )
        self._storage[: raw.nbytes] = raw
        self.bytes_in = raw.nbytes
        self.transfer_count += 1

    def read(self, nbytes: int, dtype: str | np.dtype = np.uint8) -> np.ndarray:
        """Copy data out of the buffer (the device→DDR copy)."""
        if nbytes > self.capacity:
            raise MemoryError_(
                f"read of {nbytes} bytes exceeds DMA buffer capacity "
                f"of {self.capacity}"
            )
        self.transfer_count += 1
        out = self._storage[:nbytes].copy()
        return out.view(np.dtype(dtype))

    def view(self, nbytes: int, dtype: str | np.dtype = np.uint8) -> np.ndarray:
        """In-place typed view (the device side of the stream)."""
        if nbytes > self.capacity:
            raise MemoryError_(f"view of {nbytes} bytes exceeds capacity")
        return self._storage[:nbytes].view(np.dtype(dtype))
