"""Calibrated performance models for the virtual-time backend.

Two models live here:

* :class:`PerformanceModel` — service time of each kernel (``runfunc``
  symbol) on each PE type.  CPU times are stored as microseconds on the
  *reference core* (ZCU102 Cortex-A53) and scaled by a PE type's ``speed``;
  accelerator times come from the device's DMA + compute model using the
  kernel's registered transform size.
* :class:`SchedulerCostModel` — per-invocation scheduling overhead as a
  function of ready-queue length and PE count, reflecting the policies'
  computational complexity (paper: FRFS ∝ #PEs, MET O(n), EFT O(n²)).

Calibration
-----------
The CPU kernel-time table is calibrated so the standalone application times
of Table I land near the paper's values (RD ≈ 0.32 ms, PD ≈ 5.6 ms, WiFi TX
≈ 0.13 ms, WiFi RX ≈ 2.22 ms on a 3-core + 2-FFT configuration under FRFS),
and so the 128-point FFT is faster on an A53 core than on the fabric FFT
accelerator once DMA overheads are counted (the paper's Fig. 9 discussion),
while the 256-point radar FFTs still benefit from the accelerator.
EXPERIMENTS.md records paper-vs-measured for every calibrated figure.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import HardwareConfigError
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.hardware.pe import PEType

# -- CPU kernel-time table (µs on the reference Cortex-A53) -------------------
#
# Derivation notes: Table I gives aggregate app times; per-kernel splits are
# chosen so each app's critical path plus per-task runtime overhead matches,
# with FFT times following n·log2(n) scaling between the 64/128/256-point
# sizes used by the three applications, and the Viterbi decoder dominating
# WiFi RX (as it does on real A53 silicon).
REFERENCE_KERNEL_TIMES_US: dict[str, float] = {
    # range detection (256-point complex chirp processing)
    "range_detect_LFM": 38.0,
    "range_detect_FFT_0_CPU": 98.0,
    "range_detect_FFT_1_CPU": 98.0,
    "range_detect_MUL": 36.0,
    "range_detect_IFFT_CPU": 98.0,
    "range_detect_MAX": 22.0,
    # pulse Doppler (128 pulses x 128 samples, 64 Doppler bins)
    "pd_ref_FFT_CPU": 19.0,
    "pd_pulse_FFT_CPU": 19.0,
    "pd_conjugate": 6.0,
    "pd_vector_multiply": 9.0,
    "pd_pulse_IFFT_CPU": 19.0,
    "pd_realign_matrix": 28.0,
    "pd_doppler_FFT_CPU": 19.0,
    "pd_fft_shift": 5.5,
    "pd_find_max": 13.0,
    # WiFi TX (64-bit frame, 64-point OFDM symbol)
    "wifi_scrambler": 12.0,
    "wifi_encoder": 20.0,
    "wifi_interleaver": 14.0,
    "wifi_qpsk_mod": 16.0,
    "wifi_pilot_insert": 12.0,
    "wifi_ifft_CPU": 15.0,
    "wifi_crc": 10.0,
    # WiFi RX
    "wifi_match_filter": 45.0,
    "wifi_payload_extract": 12.0,
    "wifi_fft_CPU": 11.0,
    "wifi_pilot_remove": 8.0,
    "wifi_qpsk_demod": 14.0,
    "wifi_deinterleaver": 10.0,
    "wifi_viterbi_decode": 2000.0,
    "wifi_descrambler": 8.0,
    "wifi_crc_check": 7.0,
}

# Accelerator-bound kernels: runfunc -> FFT size (points). The device model
# turns the size into DMA + compute time.
ACCEL_FFT_POINTS: dict[str, int] = {
    "range_detect_FFT_0_ACCEL": 256,
    "range_detect_FFT_1_ACCEL": 256,
    "range_detect_IFFT_ACCEL": 256,
    "pd_ref_FFT_ACCEL": 128,
    "pd_pulse_FFT_ACCEL": 128,
    "pd_pulse_IFFT_ACCEL": 128,
    "pd_doppler_FFT_ACCEL": 128,
    "wifi_ifft_ACCEL": 64,
    "wifi_fft_ACCEL": 64,
}


class PerformanceModel:
    """Kernel service times per PE type for the virtual backend."""

    def __init__(
        self,
        cpu_times: dict[str, float] | None = None,
        accel_points: dict[str, int] | None = None,
        *,
        default_cpu_time: float = 25.0,
        jitter_sigma: float = 0.05,
    ) -> None:
        self._cpu_times = dict(
            REFERENCE_KERNEL_TIMES_US if cpu_times is None else cpu_times
        )
        self._accel_points = dict(
            ACCEL_FFT_POINTS if accel_points is None else accel_points
        )
        if default_cpu_time <= 0:
            raise HardwareConfigError("default_cpu_time must be positive")
        self.default_cpu_time = default_cpu_time
        #: lognormal sigma for per-execution multiplicative jitter (models
        #: caches/branches/DRAM variability that produce the Fig. 9a boxes).
        self.jitter_sigma = jitter_sigma

    # -- registration -----------------------------------------------------------

    def set_time(self, runfunc: str, reference_us: float) -> None:
        """Register/override a kernel's reference-core time."""
        if reference_us <= 0:
            raise HardwareConfigError(f"{runfunc}: time must be positive")
        self._cpu_times[runfunc] = float(reference_us)

    def set_accel_job(self, runfunc: str, n_points: int) -> None:
        """Register an accelerator-bound kernel's transform size."""
        if n_points <= 0:
            raise HardwareConfigError(f"{runfunc}: n_points must be positive")
        self._accel_points[runfunc] = int(n_points)

    def has_kernel(self, runfunc: str) -> bool:
        return runfunc in self._cpu_times or runfunc in self._accel_points

    # -- queries -----------------------------------------------------------------

    def cpu_time(self, runfunc: str, pe_type: PEType) -> float:
        """Service time of a kernel on a CPU-type PE (speed-scaled)."""
        base = self._cpu_times.get(runfunc, self.default_cpu_time)
        return base / pe_type.speed

    def accel_compute_time(self, runfunc: str, device: FFTAcceleratorDevice) -> float:
        """Device compute time (no DMA) for an accelerator-bound kernel."""
        return device.compute_time(self.accel_points(runfunc))

    def accel_transfer_bytes(self, runfunc: str) -> int:
        """One-way DMA payload for an accelerator-bound kernel."""
        return self.accel_points(runfunc) * 8  # complex64

    def accel_points(self, runfunc: str) -> int:
        n = self._accel_points.get(runfunc)
        if n is None:
            raise HardwareConfigError(
                f"kernel {runfunc!r} has no registered accelerator job size"
            )
        return n

    def service_time(
        self,
        runfunc: str,
        pe_type: PEType,
        device: FFTAcceleratorDevice | None = None,
    ) -> float:
        """Total PE-side service time (accelerators include DMA round trip)."""
        if pe_type.is_accelerator:
            if device is None:
                raise HardwareConfigError(
                    f"accelerator service time for {runfunc!r} needs a device"
                )
            return device.job_time(self.accel_points(runfunc))
        return self.cpu_time(runfunc, pe_type)

    def jitter(self, rng: np.random.Generator) -> float:
        """A multiplicative jitter factor (mean ≈ 1)."""
        if self.jitter_sigma <= 0:
            return 1.0
        return float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))


# -- scheduling-overhead model -------------------------------------------------


class SchedulerCostModel:
    """Per-invocation scheduling cost charged on the management core.

    The paper accumulates, per scheduler run: monitoring completion status,
    ready-queue update, the policy itself, and communicating selected tasks
    to resource managers.  We split those into:

    * ``policy_cost(policy, ready_len, n_pes)`` — the heuristic's own time,
    * ``monitor_cost_per_completion`` — handler status read + ready update,
    * ``dispatch_cost_per_task`` — handler hand-off of one selected task,
    * ``base_cost`` — fixed loop overhead per invocation.

    Defaults reproduce Fig. 10b's decades at 5 PEs: FRFS ≈ 2.5 µs flat,
    MET linear in ready length, EFT quadratic.
    """

    DEFAULT_POLICY_COEFFS: dict[str, tuple[float, float, int]] = {
        # policy -> (c0, coeff, power): cost = c0 + coeff * ready^power * n_pes
        #
        # Calibrated against Fig. 10b at 5 PEs: FRFS flat (complexity
        # proportional to PE count only); MET linear in ready length with a
        # coefficient small enough that low injection rates drain each
        # pulse-Doppler ready burst without a feedback spiral; EFT quadratic
        # with a coefficient large enough that the spiral starts at the
        # lowest evaluated rate, as in the paper.
        "frfs": (0.0, 0.30, 0),
        "random": (0.0, 0.24, 0),
        "met": (0.3, 0.008, 1),
        "eft": (0.8, 1.2e-4, 2),
        "heft": (1.0, 1.5e-4, 2),
        "met_power": (0.4, 0.009, 1),
        "frfs_reserve": (0.2, 0.32, 0),
        "eft_reserve": (0.8, 1.2e-4, 2),
        # Lookahead policies: cprank pays HEFT's sort+placement (the rank
        # cache amortizes the rank computation itself); rollout's bounded
        # forward simulations cost more per pass but are capped by its
        # scan_limit, so the model is linear rather than quadratic.
        "cprank": (1.0, 1.5e-4, 2),
        "rollout": (1.2, 0.012, 1),
    }

    def __init__(
        self,
        policy_coeffs: dict[str, tuple[float, float, int]] | None = None,
        *,
        base_cost: float = 0.4,
        monitor_cost_per_completion: float = 0.25,
        dispatch_cost_per_task: float = 0.8,
        default_coeffs: tuple[float, float, int] = (0.5, 0.15, 1),
    ) -> None:
        self._coeffs = dict(
            self.DEFAULT_POLICY_COEFFS if policy_coeffs is None else policy_coeffs
        )
        self.base_cost = base_cost
        self.monitor_cost_per_completion = monitor_cost_per_completion
        self.dispatch_cost_per_task = dispatch_cost_per_task
        self.default_coeffs = default_coeffs

    def set_policy(self, name: str, c0: float, coeff: float, power: int) -> None:
        self._coeffs[name] = (c0, coeff, power)

    def policy_cost(self, policy: str, ready_len: int, n_pes: int) -> float:
        """The heuristic's compute time for one invocation (reference core)."""
        coeffs = self._coeffs.get(policy)
        if coeffs is None and "+" in policy:
            # Policy variants (e.g. "frfs+edf") cost like their base policy;
            # the EDF tie-break is a ready-list sort, dominated by it.
            coeffs = self._coeffs.get(policy.partition("+")[0])
        c0, coeff, power = coeffs if coeffs is not None else self.default_coeffs
        if power == 0:
            scale = 1.0
        elif power == 1:
            scale = float(ready_len)
        else:
            scale = float(ready_len) ** power
        return c0 + coeff * scale * n_pes

    def invocation_cost(
        self,
        policy: str,
        ready_len: int,
        n_pes: int,
        completions: int,
        dispatched: int,
    ) -> float:
        """Overhead of one scheduling invocation (single completion)."""
        return (
            self.base_cost
            + self.monitor_cost_per_completion * completions
            + self.policy_cost(policy, ready_len, n_pes)
            + self.dispatch_cost_per_task * dispatched
        )

    def pass_cost(
        self,
        policy: str,
        ready_len: int,
        n_pes: int,
        completions: int,
        dispatched: int,
        *,
        per_completion: bool = True,
    ) -> tuple[float, int]:
        """Total overhead of one WM pass and the invocation count it models.

        The paper's runtime has no reservation queues, so "a scheduling
        algorithm incurs this overhead every time a task completes its
        execution": a pass that observed k completions stands for k
        back-to-back scheduler invocations, each paying the base loop and
        the policy's compute cost.  Returns ``(total_us, invocations)``;
        the invocation count is what the overhead statistic averages over
        (Fig. 10b reports *per-invocation* overhead).

        ``per_completion=False`` models the reservation-queue extension:
        resource managers self-serve from their PE work queues, so the
        policy runs once per batch instead of once per completion — the
        overhead reduction the paper's future-work section is after.
        """
        invocations = max(1, completions) if per_completion else 1
        per_invocation = self.base_cost + self.policy_cost(
            policy, ready_len, n_pes
        )
        total = (
            per_invocation * invocations
            + self.monitor_cost_per_completion * completions
            + self.dispatch_cost_per_task * dispatched
        )
        return total, invocations
