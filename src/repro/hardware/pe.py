"""Processing-element types and instances.

A :class:`PEType` describes a *kind* of PE that application platform
bindings can name (``"cpu"``, ``"fft"``, ``"big"``, ``"little"``); a
:class:`ProcessingElement` is one instantiated PE inside a DSSoC test
configuration, carrying its resource-manager thread's host-core affinity.

Power numbers are the framework-extension hook for the paper's future-work
"power aware heuristics": nominal active/idle power per PE type, integrated
by the stats module into per-PE energy estimates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import HardwareConfigError


class PEKind(enum.Enum):
    CPU = "cpu"
    ACCELERATOR = "accelerator"


@dataclass(frozen=True)
class PEType:
    """A processing-element type available on some platform."""

    name: str                  # the platform-binding name apps reference
    kind: PEKind
    speed: float = 1.0         # relative compute speed (1.0 = reference core)
    active_power_w: float = 1.0
    idle_power_w: float = 0.1
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise HardwareConfigError("PE type name must be non-empty")
        if self.speed <= 0:
            raise HardwareConfigError(f"PE type {self.name!r}: speed must be > 0")

    @property
    def is_cpu(self) -> bool:
        return self.kind is PEKind.CPU

    @property
    def is_accelerator(self) -> bool:
        return self.kind is PEKind.ACCELERATOR


# Reference PE types for the two platforms in the paper. Speeds are relative
# to a Cortex-A53 at the ZCU102's clock (the reference core for the
# calibrated kernel-time tables in perfmodel.py).
PE_CPU = PEType(
    name="cpu",
    kind=PEKind.CPU,
    speed=1.0,
    active_power_w=1.2,
    idle_power_w=0.15,
    description="Cortex-A53 application core (ZCU102)",
)
PE_FFT = PEType(
    name="fft",
    kind=PEKind.ACCELERATOR,
    speed=1.0,
    active_power_w=0.8,
    idle_power_w=0.05,
    description="FFT accelerator in programmable fabric (ZCU102)",
)
PE_BIG = PEType(
    name="big",
    kind=PEKind.CPU,
    speed=1.35,
    active_power_w=2.5,
    idle_power_w=0.3,
    description="Cortex-A15 big core (Odroid XU3)",
)
PE_LITTLE = PEType(
    name="little",
    kind=PEKind.CPU,
    speed=0.45,
    active_power_w=0.6,
    idle_power_w=0.08,
    description="Cortex-A7 LITTLE core (Odroid XU3)",
)


@dataclass
class ProcessingElement:
    """One PE inside an instantiated DSSoC configuration.

    ``host_core`` is the index of the underlying SoC core that runs this
    PE's resource-manager thread (for CPU-type PEs this is also the core
    the task executes on).
    """

    pe_id: int
    pe_type: PEType
    name: str
    host_core: int

    @property
    def is_cpu(self) -> bool:
        return self.pe_type.is_cpu

    @property
    def is_accelerator(self) -> bool:
        return self.pe_type.is_accelerator

    @property
    def type_name(self) -> str:
        return self.pe_type.name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ProcessingElement(id={self.pe_id}, type={self.pe_type.name!r}, "
            f"host_core={self.host_core})"
        )
