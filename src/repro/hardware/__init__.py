"""Emulated hardware substrate.

Models the COTS SoCs the paper runs on — ZCU102 (quad A53 + programmable
fabric with FFT accelerators behind AXI DMA) and Odroid XU3 (Exynos 5422
big.LITTLE) — as resource pools the framework instantiates DSSoC test
configurations from, plus calibrated performance models used by the
virtual-time backend.
"""

from repro.hardware.pe import PEKind, PEType, ProcessingElement, PE_CPU, PE_FFT, PE_BIG, PE_LITTLE
from repro.hardware.dma import DMAModel, DmaBuffer
from repro.hardware.accelerator import FFTAcceleratorDevice, AcceleratorState
from repro.hardware.perfmodel import PerformanceModel, SchedulerCostModel
from repro.hardware.platform import SoCPlatform, HostCoreSpec, zcu102, odroid_xu3
from repro.hardware.config import DSSoCConfig, parse_config, AffinityPlan

__all__ = [
    "PEKind",
    "PEType",
    "ProcessingElement",
    "PE_CPU",
    "PE_FFT",
    "PE_BIG",
    "PE_LITTLE",
    "DMAModel",
    "DmaBuffer",
    "FFTAcceleratorDevice",
    "AcceleratorState",
    "PerformanceModel",
    "SchedulerCostModel",
    "SoCPlatform",
    "HostCoreSpec",
    "zcu102",
    "odroid_xu3",
    "DSSoCConfig",
    "parse_config",
    "AffinityPlan",
]
