"""DSSoC test configurations and resource-manager thread affinity.

A configuration names how many PEs of each type to instantiate from a
platform's resource pool, written the way the paper labels its x-axes::

    "3C+2F"      -> 3 cpu cores + 2 FFT accelerators   (ZCU102)
    "2BIG+3LTL"  -> 2 big + 3 LITTLE cores             (Odroid XU3)
    "cpu:3,fft:2" (explicit form)

:class:`AffinityPlan` applies the paper's thread-placement rule (Sec. II-D):
CPU-type PEs pin their resource-manager thread to a dedicated unused pool
core of the matching cluster; accelerator-type PEs take remaining unused
cores first and are then distributed evenly — so a 2C+2F configuration puts
both FFT resource-manager threads on the single leftover A53, which is the
mechanism behind the paper's 2C+2F ≈ 2C+1F observation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.common.errors import HardwareConfigError
from repro.hardware.pe import ProcessingElement
from repro.hardware.platform import SoCPlatform

# Config-string abbreviations used by the paper's figure labels.
_ABBREVIATIONS = {
    "C": "cpu",
    "F": "fft",
    "BIG": "big",
    "B": "big",
    "LTL": "little",
    "L": "little",
}

_TOKEN_RE = re.compile(r"^(\d+)\s*([A-Za-z]+)$")


@dataclass(frozen=True)
class DSSoCConfig:
    """Requested PE counts per type, ordered as written."""

    counts: tuple[tuple[str, int], ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.counts:
            raise HardwareConfigError("configuration requests no PEs")
        seen: set[str] = set()
        total = 0
        for type_name, count in self.counts:
            if count < 0:
                raise HardwareConfigError(
                    f"negative PE count for {type_name!r}: {count}"
                )
            if type_name in seen:
                raise HardwareConfigError(f"duplicate PE type {type_name!r}")
            seen.add(type_name)
            total += count
        if total == 0:
            raise HardwareConfigError("configuration requests zero PEs")

    def count(self, type_name: str) -> int:
        for name, count in self.counts:
            if name == type_name:
                return count
        return 0

    @property
    def total_pes(self) -> int:
        return sum(c for _n, c in self.counts)

    def type_names(self) -> list[str]:
        return [n for n, c in self.counts if c > 0]

    def describe(self) -> str:
        return self.label or ",".join(f"{n}:{c}" for n, c in self.counts)

    def __str__(self) -> str:
        return self.describe()


def parse_config(text: str) -> DSSoCConfig:
    """Parse a configuration string (paper notation or explicit form)."""
    stripped = text.strip()
    if not stripped:
        raise HardwareConfigError("empty configuration string")
    if ":" in stripped:
        counts = []
        for part in stripped.split(","):
            name, _sep, num = part.partition(":")
            name = name.strip().lower()
            if not name or not num.strip().isdigit():
                raise HardwareConfigError(f"cannot parse config part {part!r}")
            counts.append((name, int(num)))
        return DSSoCConfig(counts=tuple(counts), label=stripped)
    counts = []
    for token in stripped.split("+"):
        match = _TOKEN_RE.match(token.strip())
        if match is None:
            raise HardwareConfigError(
                f"cannot parse config token {token!r} in {text!r}"
            )
        count = int(match.group(1))
        abbrev = match.group(2).upper()
        type_name = _ABBREVIATIONS.get(abbrev, abbrev.lower())
        counts.append((type_name, count))
    return DSSoCConfig(counts=tuple(counts), label=stripped)


@dataclass
class AffinityPlan:
    """The instantiated PE list plus each RM thread's host-core pin."""

    platform: SoCPlatform
    config: DSSoCConfig
    pes: list[ProcessingElement] = field(default_factory=list)

    @classmethod
    def build(cls, platform: SoCPlatform, config: DSSoCConfig | str) -> "AffinityPlan":
        if isinstance(config, str):
            config = parse_config(config)
        plan = cls(platform=platform, config=config)
        plan._place()
        return plan

    def _place(self) -> None:
        platform, config = self.platform, self.config
        # Validate against the platform inventory.
        for type_name, count in config.counts:
            pe_type = platform.pe_type(type_name)
            limit = platform.max_count(type_name)
            if count > limit:
                raise HardwareConfigError(
                    f"{platform.name}: config {config} requests {count} "
                    f"{type_name!r} PEs but the platform provides {limit}"
                )
            del pe_type
        used_cores: set[int] = set()
        pe_id = 0
        type_counters: dict[str, int] = {}

        def next_name(type_name: str) -> str:
            n = type_counters.get(type_name, 0)
            type_counters[type_name] = n + 1
            return f"{type_name}{n}"

        # 1. CPU-type PEs: dedicated cores of the matching cluster.
        for type_name, count in config.counts:
            pe_type = platform.pe_type(type_name)
            if not pe_type.is_cpu:
                continue
            cluster_cores = platform.pool_cores_for_cluster(type_name)
            free = [c for c in cluster_cores if c not in used_cores]
            if count > len(free):
                raise HardwareConfigError(
                    f"{platform.name}: {count} {type_name!r} PEs need "
                    f"{count} free {type_name!r}-cluster cores, "
                    f"only {len(free)} available"
                )
            for _ in range(count):
                core = free.pop(0)
                used_cores.add(core)
                self.pes.append(
                    ProcessingElement(
                        pe_id=pe_id,
                        pe_type=pe_type,
                        name=next_name(type_name),
                        host_core=core,
                    )
                )
                pe_id += 1

        # 2. Accelerator-type PEs: resource-manager threads take unused pool
        # cores first (cycling through them), then spread evenly over all
        # pool cores.
        unused = [c for c in platform.pool_cores if c not in used_cores]
        accel_index = 0
        for type_name, count in config.counts:
            pe_type = platform.pe_type(type_name)
            if not pe_type.is_accelerator:
                continue
            for _ in range(count):
                if unused:
                    core = unused[accel_index % len(unused)]
                else:
                    pool = list(platform.pool_cores)
                    core = pool[accel_index % len(pool)]
                self.pes.append(
                    ProcessingElement(
                        pe_id=pe_id,
                        pe_type=pe_type,
                        name=next_name(type_name),
                        host_core=core,
                    )
                )
                pe_id += 1
                accel_index += 1

    # -- queries -----------------------------------------------------------------

    def cores_in_use(self) -> set[int]:
        return {pe.host_core for pe in self.pes}

    def pes_on_core(self, core: int) -> list[ProcessingElement]:
        return [pe for pe in self.pes if pe.host_core == core]

    def shared_cores(self) -> dict[int, list[ProcessingElement]]:
        """Cores hosting more than one resource-manager thread."""
        return {
            core: pes
            for core in self.cores_in_use()
            if len(pes := self.pes_on_core(core)) > 1
        }

    def supported_platform_names(self) -> set[str]:
        return {pe.type_name for pe in self.pes}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        placement = ", ".join(f"{pe.name}@core{pe.host_core}" for pe in self.pes)
        return f"AffinityPlan({self.config}: {placement})"
