/* Compiled DES core: event heap, run()-loop dispatch, and the positional
 * scheduler inner loops, behind the same semantics as the pure-Python
 * reference in repro.sim.engine / repro.runtime.schedulers.
 *
 * Bit-identity contract: every comparison, tie-break, iteration order, and
 * error message below replicates the pure implementation exactly.  The heap
 * orders entries by (at, seq) with a strict (a->at < b->at) / seq tiebreak,
 * which is the same total order heapq imposes on (at, seq, event) tuples
 * (seq is unique, so the event is never compared).  All arithmetic is on
 * C doubles, which are the same IEEE-754 binary64 values CPython floats
 * hold, so availability/finish-time accumulation is bit-identical.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <float.h>
#include <math.h>

/* Resolved at module init from the pure modules (single source of truth). */
static PyObject *EmulationError;  /* repro.common.errors.EmulationError */
static PyObject *CallbackType;    /* repro.sim.engine._Callback */
static PyObject *EventType;       /* repro.sim.engine.Event */
static PyObject *TimeoutType;     /* repro.sim.engine.Timeout */

static PyObject *PEStatusIdle;    /* repro.runtime.handler.PEStatus.IDLE */

static PyObject *str_fire;       /* "_fire" */
static PyObject *str_now;        /* "now" */
static PyObject *str_events_fired;
static PyObject *str_callbacks;
static PyObject *str_state;      /* "_state" */
static PyObject *str_fn;
static PyObject *str_node;
static PyObject *str_failed;
static PyObject *str_status;     /* "_status": the raw attribute behind the
                                  * ResourceHandler.status property.  One
                                  * read is GIL-atomic, so skipping the
                                  * property's lock acquisition returns the
                                  * same value the property would. */
static PyObject *str_eft;        /* "estimated_free_time" */
static PyObject *int_fired;      /* 2 == repro.sim.engine._FIRED */

/* ------------------------------------------------------------------ */
/* EventHeap: binary heap of (at, seq, event) with a built-in seq     */
/* counter (mirrors Engine._seq).                                      */
/* ------------------------------------------------------------------ */

typedef struct {
    double at;
    long long seq;
    PyObject *ev; /* owned */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *arr;
    Py_ssize_t size;
    Py_ssize_t cap;
    long long seq;
} EventHeapObject;

static PyTypeObject EventHeap_Type; /* fwd */

static inline int
heap_less(const HeapEntry *a, const HeapEntry *b)
{
    if (a->at < b->at)
        return 1;
    if (a->at > b->at)
        return 0;
    return a->seq < b->seq;
}

static int
heap_reserve(EventHeapObject *self, Py_ssize_t need)
{
    if (need <= self->cap)
        return 0;
    Py_ssize_t cap = self->cap ? self->cap : 64;
    while (cap < need)
        cap *= 2;
    HeapEntry *arr = PyMem_Realloc(self->arr, (size_t)cap * sizeof(HeapEntry));
    if (!arr) {
        PyErr_NoMemory();
        return -1;
    }
    self->arr = arr;
    self->cap = cap;
    return 0;
}

static void
heap_sift_up(HeapEntry *arr, Py_ssize_t pos)
{
    HeapEntry item = arr[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!heap_less(&item, &arr[parent]))
            break;
        arr[pos] = arr[parent];
        pos = parent;
    }
    arr[pos] = item;
}

static void
heap_sift_down(HeapEntry *arr, Py_ssize_t size, Py_ssize_t pos)
{
    HeapEntry item = arr[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && heap_less(&arr[child + 1], &arr[child]))
            child += 1;
        if (!heap_less(&arr[child], &item))
            break;
        arr[pos] = arr[child];
        pos = child;
    }
    arr[pos] = item;
}

/* Pop the root into *at / *ev (ownership of ev transfers to caller).
 * Caller must check size > 0 first. */
static void
heap_pop_root(EventHeapObject *self, double *at, PyObject **ev)
{
    HeapEntry *arr = self->arr;
    *at = arr[0].at;
    *ev = arr[0].ev;
    self->size -= 1;
    if (self->size > 0) {
        arr[0] = arr[self->size];
        heap_sift_down(arr, self->size, 0);
    }
}

static PyObject *
EventHeap_push(EventHeapObject *self, PyObject *args)
{
    double at;
    PyObject *ev;
    if (!PyArg_ParseTuple(args, "dO:push", &at, &ev))
        return NULL;
    if (heap_reserve(self, self->size + 1) < 0)
        return NULL;
    self->seq += 1;
    HeapEntry *slot = &self->arr[self->size];
    slot->at = at;
    slot->seq = self->seq;
    Py_INCREF(ev);
    slot->ev = ev;
    self->size += 1;
    heap_sift_up(self->arr, self->size - 1);
    Py_RETURN_NONE;
}

static PyObject *
EventHeap_pop(EventHeapObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->size == 0) {
        PyErr_SetString(PyExc_IndexError, "pop from empty EventHeap");
        return NULL;
    }
    long long seq = self->arr[0].seq;
    double at;
    PyObject *ev;
    heap_pop_root(self, &at, &ev);
    PyObject *res = Py_BuildValue("(dLN)", at, seq, ev);
    if (!res)
        Py_DECREF(ev);
    return res;
}

static PyObject *
EventHeap_peek_at(EventHeapObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->size == 0)
        Py_RETURN_NONE;
    return PyFloat_FromDouble(self->arr[0].at);
}

static Py_ssize_t
EventHeap_len(EventHeapObject *self)
{
    return self->size;
}

static PyObject *
EventHeap_get_seq(EventHeapObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->seq);
}

static PyObject *
EventHeap_new(PyTypeObject *type, PyObject *Py_UNUSED(args),
              PyObject *Py_UNUSED(kwds))
{
    EventHeapObject *self = (EventHeapObject *)type->tp_alloc(type, 0);
    if (self) {
        self->arr = NULL;
        self->size = 0;
        self->cap = 0;
        self->seq = 0;
    }
    return (PyObject *)self;
}

static int
EventHeap_traverse(EventHeapObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->arr[i].ev);
    return 0;
}

static int
EventHeap_clear_impl(EventHeapObject *self)
{
    Py_ssize_t n = self->size;
    self->size = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->arr[i].ev);
    return 0;
}

static void
EventHeap_dealloc(EventHeapObject *self)
{
    PyObject_GC_UnTrack(self);
    EventHeap_clear_impl(self);
    PyMem_Free(self->arr);
    self->arr = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef EventHeap_methods[] = {
    {"push", (PyCFunction)EventHeap_push, METH_VARARGS,
     "push(at, event): schedule event at time `at` with the next seq."},
    {"pop", (PyCFunction)EventHeap_pop, METH_NOARGS,
     "pop() -> (at, seq, event): remove and return the earliest entry."},
    {"peek_at", (PyCFunction)EventHeap_peek_at, METH_NOARGS,
     "peek_at() -> float | None: time of the next entry."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef EventHeap_getset[] = {
    {"seq", (getter)EventHeap_get_seq, NULL,
     "monotone push counter (mirrors Engine._seq)", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PySequenceMethods EventHeap_as_sequence = {
    .sq_length = (lenfunc)EventHeap_len,
};

static PyTypeObject EventHeap_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._coreext.EventHeap",
    .tp_basicsize = sizeof(EventHeapObject),
    .tp_dealloc = (destructor)EventHeap_dealloc,
    .tp_as_sequence = &EventHeap_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Binary (time, seq) event heap with built-in seq counter.",
    .tp_traverse = (traverseproc)EventHeap_traverse,
    .tp_clear = (inquiry)EventHeap_clear_impl,
    .tp_methods = EventHeap_methods,
    .tp_getset = EventHeap_getset,
    .tp_new = EventHeap_new,
};

/* ------------------------------------------------------------------ */
/* run_loop: the Engine.run() dispatch loop                            */
/* ------------------------------------------------------------------ */

/* Run the externally attached callbacks of `ev`, swapping the list out
 * first exactly like Event._fire (appends during iteration land on the
 * fresh list and are NOT run this firing, matching the pure semantics). */
static int
run_external_callbacks(PyObject *ev)
{
    PyObject *cbs = PyObject_GetAttr(ev, str_callbacks);
    if (!cbs)
        return -1;
    if (!PyList_Check(cbs) || PyList_GET_SIZE(cbs) != 0) {
        PyObject *empty = PyList_New(0);
        if (!empty) {
            Py_DECREF(cbs);
            return -1;
        }
        int rc = PyObject_SetAttr(ev, str_callbacks, empty);
        Py_DECREF(empty);
        if (rc < 0) {
            Py_DECREF(cbs);
            return -1;
        }
        Py_ssize_t n = PySequence_Length(cbs);
        if (n < 0) {
            Py_DECREF(cbs);
            return -1;
        }
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *cb = PySequence_GetItem(cbs, i);
            if (!cb) {
                Py_DECREF(cbs);
                return -1;
            }
            PyObject *r = PyObject_CallOneArg(cb, ev);
            Py_DECREF(cb);
            if (!r) {
                Py_DECREF(cbs);
                return -1;
            }
            Py_DECREF(r);
        }
    }
    Py_DECREF(cbs);
    return 0;
}

/* Fire one event: exact-type fast paths inline _Callback._fire and
 * Event._fire; everything else (Process, _Consume, AllOf/AnyOf,
 * subclasses) goes through its own _fire method. */
static int
fire_event(PyObject *ev)
{
    PyObject *tp = (PyObject *)Py_TYPE(ev);
    if (tp == CallbackType) {
        if (PyObject_SetAttr(ev, str_state, int_fired) < 0)
            return -1;
        PyObject *fn = PyObject_GetAttr(ev, str_fn);
        if (!fn)
            return -1;
        PyObject *r = PyObject_CallNoArgs(fn);
        Py_DECREF(fn);
        if (!r)
            return -1;
        Py_DECREF(r);
        return run_external_callbacks(ev);
    }
    if (tp == EventType || tp == TimeoutType) {
        if (PyObject_SetAttr(ev, str_state, int_fired) < 0)
            return -1;
        return run_external_callbacks(ev);
    }
    PyObject *r = PyObject_CallMethodNoArgs(ev, str_fire);
    if (!r)
        return -1;
    Py_DECREF(r);
    return 0;
}

static int
set_engine_now(PyObject *engine, double now)
{
    PyObject *f = PyFloat_FromDouble(now);
    if (!f)
        return -1;
    int rc = PyObject_SetAttr(engine, str_now, f);
    Py_DECREF(f);
    return rc;
}

/* engine.events_fired += fired, preserving any in-flight exception. */
static int
add_events_fired(PyObject *engine, long long fired)
{
    PyObject *cur = PyObject_GetAttr(engine, str_events_fired);
    if (!cur)
        return -1;
    PyObject *inc = PyLong_FromLongLong(fired);
    if (!inc) {
        Py_DECREF(cur);
        return -1;
    }
    PyObject *total = PyNumber_Add(cur, inc);
    Py_DECREF(cur);
    Py_DECREF(inc);
    if (!total)
        return -1;
    int rc = PyObject_SetAttr(engine, str_events_fired, total);
    Py_DECREF(total);
    return rc;
}

static PyObject *
coreext_run_loop(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *engine, *heapobj, *until_obj, *maxev_obj;
    if (!PyArg_ParseTuple(args, "OO!OO:run_loop", &engine, &EventHeap_Type,
                          &heapobj, &until_obj, &maxev_obj))
        return NULL;
    EventHeapObject *heap = (EventHeapObject *)heapobj;

    int has_until = (until_obj != Py_None);
    double until = 0.0;
    if (has_until) {
        until = PyFloat_AsDouble(until_obj);
        if (until == -1.0 && PyErr_Occurred())
            return NULL;
    }
    int has_max = (maxev_obj != Py_None);
    long long max_events = 0;
    if (has_max) {
        max_events = PyLong_AsLongLong(maxev_obj);
        if (max_events == -1 && PyErr_Occurred())
            return NULL;
    }

    long long fired = 0;
    int err = 0;
    double now = 0.0;
    int saw_event = 0;
    while (heap->size > 0) {
        if (has_until && heap->arr[0].at > until) {
            now = until;
            saw_event = 1;
            if (set_engine_now(engine, until) < 0)
                err = 1;
            break;
        }
        double at;
        PyObject *ev;
        heap_pop_root(heap, &at, &ev);
        now = at;
        saw_event = 1;
        if (set_engine_now(engine, at) < 0) {
            Py_DECREF(ev);
            err = 1;
            break;
        }
        int rc = fire_event(ev);
        Py_DECREF(ev);
        if (rc < 0) {
            err = 1;
            break;
        }
        fired += 1;
        if (has_max && fired >= max_events) {
            PyErr_Format(EmulationError,
                         "exceeded max_events=%lld; possible livelock",
                         max_events);
            err = 1;
            break;
        }
    }

    /* "finally": the fired count is recorded even when an event raised. */
    PyObject *ptype = NULL, *pval = NULL, *ptb = NULL;
    if (err)
        PyErr_Fetch(&ptype, &pval, &ptb);
    if (add_events_fired(engine, fired) < 0) {
        if (err) {
            /* keep the original exception, drop the bookkeeping one */
            PyErr_Clear();
        }
        else {
            return NULL;
        }
    }
    if (err) {
        PyErr_Restore(ptype, pval, ptb);
        return NULL;
    }
    if (!saw_event) {
        /* heap was empty on entry: the clock does not move */
        return PyObject_GetAttr(engine, str_now);
    }
    return PyFloat_FromDouble(now);
}

/* ------------------------------------------------------------------ */
/* ReadyList: the WM's ready-task list (see the pure class in          */
/* runtime/workload_manager.py for the design rationale).  Same        */
/* offset + tombstone semantics; iteration is a C array walk, which    */
/* is what makes the scheduler kernels' PyIter_Next loop cheap.        */
/* The id bookkeeping reuses Python sets of id() ints so remove_ids    */
/* interoperates with the caller-built {id(task), ...} sets.           */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    PyObject **items;
    Py_ssize_t size;
    Py_ssize_t cap;
    Py_ssize_t start;
    PyObject *dead; /* set[int]: tombstoned ids awaiting compaction */
    PyObject *ids;  /* set[int]: live member ids */
} ReadyListObject;

typedef struct {
    PyObject_HEAD
    ReadyListObject *owner; /* owned */
    Py_ssize_t pos;
} ReadyListIterObject;

static PyTypeObject ReadyList_Type;     /* fwd */
static PyTypeObject ReadyListIter_Type; /* fwd */
static int readylist_compact(ReadyListObject *self); /* fwd */

static int
readylist_reserve(ReadyListObject *self, Py_ssize_t need)
{
    if (need <= self->cap)
        return 0;
    Py_ssize_t cap = self->cap ? self->cap : 32;
    while (cap < need)
        cap *= 2;
    PyObject **items = PyMem_Realloc(self->items,
                                     (size_t)cap * sizeof(PyObject *));
    if (!items) {
        PyErr_NoMemory();
        return -1;
    }
    self->items = items;
    self->cap = cap;
    return 0;
}

static PyObject *
ReadyList_extend(ReadyListObject *self, PyObject *tasks)
{
    PyObject *seq = PySequence_Fast(tasks, "extend() expects a sequence");
    if (!seq)
        return NULL;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    /* A task re-entering while its mid-list tombstone is still pending
     * (fault requeue of a dispatched task, or an id() recycled onto a
     * tombstoned address) would be invisible to iteration while len()
     * still counts it.  Compact first so the stale occurrence is
     * physically gone before the id goes live again. */
    if (PySet_GET_SIZE(self->dead) > 0) {
        for (Py_ssize_t i = 0; i < n; i++) {
            PyObject *t = PySequence_Fast_GET_ITEM(seq, i);
            PyObject *key = PyLong_FromVoidPtr((void *)t);
            if (!key) {
                Py_DECREF(seq);
                return NULL;
            }
            int hit = PySet_Contains(self->dead, key);
            Py_DECREF(key);
            if (hit < 0) {
                Py_DECREF(seq);
                return NULL;
            }
            if (hit) {
                if (readylist_compact(self) < 0) {
                    Py_DECREF(seq);
                    return NULL;
                }
                break;
            }
        }
    }
    if (readylist_reserve(self, self->size + n) < 0) {
        Py_DECREF(seq);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *t = PySequence_Fast_GET_ITEM(seq, i);
        PyObject *key = PyLong_FromVoidPtr((void *)t);
        if (!key || PySet_Add(self->ids, key) < 0) {
            Py_XDECREF(key);
            Py_DECREF(seq);
            return NULL;
        }
        Py_DECREF(key);
        Py_INCREF(t);
        self->items[self->size++] = t;
    }
    Py_DECREF(seq);
    Py_RETURN_NONE;
}

/* Drop the swallowed prefix: del items[:start] */
static void
readylist_trim_prefix(ReadyListObject *self)
{
    Py_ssize_t start = self->start;
    if (!start)
        return;
    for (Py_ssize_t i = 0; i < start; i++)
        Py_DECREF(self->items[i]);
    memmove(self->items, self->items + start,
            (size_t)(self->size - start) * sizeof(PyObject *));
    self->size -= start;
    self->start = 0;
}

static int
readylist_compact(ReadyListObject *self)
{
    readylist_trim_prefix(self);
    if (PySet_GET_SIZE(self->dead) == 0)
        return 0;
    Py_ssize_t w = 0;
    for (Py_ssize_t r = 0; r < self->size; r++) {
        PyObject *t = self->items[r];
        PyObject *key = PyLong_FromVoidPtr((void *)t);
        if (!key)
            return -1;
        int hit = PySet_Contains(self->dead, key);
        Py_DECREF(key);
        if (hit < 0)
            return -1;
        if (hit)
            Py_DECREF(t);
        else
            self->items[w++] = t;
    }
    self->size = w;
    if (PySet_Clear(self->dead) < 0)
        return -1;
    return 0;
}

static PyObject *
ReadyList_remove_ids(ReadyListObject *self, PyObject *id_set)
{
    PyObject *it = PyObject_GetIter(id_set);
    if (!it)
        return NULL;
    PyObject *key;
    while ((key = PyIter_Next(it))) {
        if (PySet_Add(self->dead, key) < 0 ||
            PySet_Discard(self->ids, key) < 0) {
            Py_DECREF(key);
            Py_DECREF(it);
            return NULL;
        }
        Py_DECREF(key);
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return NULL;
    /* swallow the contiguous dead prefix */
    Py_ssize_t start = self->start, n = self->size;
    while (start < n) {
        PyObject *k = PyLong_FromVoidPtr((void *)self->items[start]);
        if (!k)
            return NULL;
        int hit = PySet_Contains(self->dead, k);
        if (hit > 0) {
            if (PySet_Discard(self->dead, k) < 0) {
                Py_DECREF(k);
                return NULL;
            }
        }
        Py_DECREF(k);
        if (hit < 0)
            return NULL;
        if (!hit)
            break;
        start += 1;
    }
    self->start = start;
    if (start > 64 && start * 2 > n)
        readylist_trim_prefix(self);
    Py_ssize_t limit = PySet_GET_SIZE(self->ids);
    if (limit < 64)
        limit = 64;
    if (PySet_GET_SIZE(self->dead) > limit) {
        if (readylist_compact(self) < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
ReadyList_iter(ReadyListObject *self)
{
    ReadyListIterObject *it = PyObject_GC_New(ReadyListIterObject,
                                              &ReadyListIter_Type);
    if (!it)
        return NULL;
    Py_INCREF(self);
    it->owner = self;
    it->pos = self->start;
    PyObject_GC_Track((PyObject *)it);
    return (PyObject *)it;
}

static PyObject *
ReadyList_snapshot(ReadyListObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *it = ReadyList_iter(self);
    if (!it)
        return NULL;
    PyObject *out = PySequence_List(it);
    Py_DECREF(it);
    return out;
}

static Py_ssize_t
ReadyList_len(ReadyListObject *self)
{
    return PySet_GET_SIZE(self->ids);
}

static int
ReadyList_contains(ReadyListObject *self, PyObject *task)
{
    PyObject *key = PyLong_FromVoidPtr((void *)task);
    if (!key)
        return -1;
    int hit = PySet_Contains(self->ids, key);
    Py_DECREF(key);
    return hit;
}

static PyObject *
ReadyList_new(PyTypeObject *type, PyObject *Py_UNUSED(args),
              PyObject *Py_UNUSED(kwds))
{
    ReadyListObject *self = (ReadyListObject *)type->tp_alloc(type, 0);
    if (!self)
        return NULL;
    self->items = NULL;
    self->size = 0;
    self->cap = 0;
    self->start = 0;
    self->dead = PySet_New(NULL);
    self->ids = PySet_New(NULL);
    if (!self->dead || !self->ids) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static int
ReadyList_traverse(ReadyListObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT(self->items[i]);
    Py_VISIT(self->dead);
    Py_VISIT(self->ids);
    return 0;
}

static int
ReadyList_clear_impl(ReadyListObject *self)
{
    Py_ssize_t n = self->size;
    self->size = 0;
    self->start = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_CLEAR(self->items[i]);
    Py_CLEAR(self->dead);
    Py_CLEAR(self->ids);
    return 0;
}

static void
ReadyList_dealloc(ReadyListObject *self)
{
    PyObject_GC_UnTrack(self);
    ReadyList_clear_impl(self);
    PyMem_Free(self->items);
    self->items = NULL;
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyMethodDef ReadyList_methods[] = {
    {"extend", (PyCFunction)ReadyList_extend, METH_O,
     "extend(tasks): append tasks in order."},
    {"remove_ids", (PyCFunction)ReadyList_remove_ids, METH_O,
     "remove_ids(ids): remove members whose id() is in the set."},
    {"snapshot", (PyCFunction)ReadyList_snapshot, METH_NOARGS,
     "snapshot() -> list of live members in order."},
    {NULL, NULL, 0, NULL},
};

static PySequenceMethods ReadyList_as_sequence = {
    .sq_length = (lenfunc)ReadyList_len,
    .sq_contains = (objobjproc)ReadyList_contains,
};

static PyTypeObject ReadyList_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._coreext.ReadyList",
    .tp_basicsize = sizeof(ReadyListObject),
    .tp_dealloc = (destructor)ReadyList_dealloc,
    .tp_as_sequence = &ReadyList_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Ready task list: FIFO walk, offset + tombstone removal.",
    .tp_traverse = (traverseproc)ReadyList_traverse,
    .tp_clear = (inquiry)ReadyList_clear_impl,
    .tp_iter = (getiterfunc)ReadyList_iter,
    .tp_methods = ReadyList_methods,
    .tp_new = ReadyList_new,
};

static PyObject *
ReadyListIter_next(ReadyListIterObject *it)
{
    ReadyListObject *rl = it->owner;
    if (!rl)
        return NULL;
    int check_dead = PySet_GET_SIZE(rl->dead) != 0;
    while (it->pos < rl->size) {
        PyObject *t = rl->items[it->pos++];
        if (check_dead) {
            PyObject *key = PyLong_FromVoidPtr((void *)t);
            if (!key)
                return NULL;
            int hit = PySet_Contains(rl->dead, key);
            Py_DECREF(key);
            if (hit < 0)
                return NULL;
            if (hit)
                continue;
        }
        Py_INCREF(t);
        return t;
    }
    return NULL;
}

static int
ReadyListIter_traverse(ReadyListIterObject *it, visitproc visit, void *arg)
{
    Py_VISIT(it->owner);
    return 0;
}

static void
ReadyListIter_dealloc(ReadyListIterObject *it)
{
    PyObject_GC_UnTrack(it);
    Py_CLEAR(it->owner);
    PyObject_GC_Del(it);
}

static PyTypeObject ReadyListIter_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro._native._coreext.ReadyListIter",
    .tp_basicsize = sizeof(ReadyListIterObject),
    .tp_dealloc = (destructor)ReadyListIter_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_traverse = (traverseproc)ReadyListIter_traverse,
    .tp_iter = PyObject_SelfIter,
    .tp_iternext = (iternextfunc)ReadyListIter_next,
};

/* ------------------------------------------------------------------ */
/* Scheduler-pass kernels                                              */
/*                                                                     */
/* Each kernel receives the ready iterable, the scheduler's row cache  */
/* dict (id(node) -> (node, row)) and a fallback callable computing    */
/* (and caching) a missing row, plus positional per-PE state built by  */
/* the Python prologue.  They return a list of (task, handler_index)   */
/* pairs in dispatch order; the Python side maps them to Assignments.  */
/* The caller must have called _sync_row_cache(handlers) first so the  */
/* cache dict identity is stable for the whole pass.                   */
/* ------------------------------------------------------------------ */

/* ------------------------------------------------------------------ */
/* Row-cache mirror: an open-addressed pointer table over a scheduler  */
/* row-cache dict, so the per-task lookup skips boxing id(node) into   */
/* a PyLong and hashing it.  Sound because of the cache contract in    */
/* Scheduler._sync_row_cache: entries are only ever *added* to a cache */
/* dict; invalidation replaces the whole dict object.  Identity change */
/* resets the mirror; a size change (fallback added rows) resyncs it.  */
/* Row pointers are borrowed from the dict, which cannot drop them     */
/* while the mirror holds a strong reference to the dict itself.       */
/* ------------------------------------------------------------------ */

typedef struct {
    void *key;       /* the node pointer (== id(node)) */
    PyObject *row;   /* borrowed from the dict's (node, row) tuple */
} MirrorSlot;

typedef struct {
    PyObject *dict;        /* strong ref; NULL when empty */
    Py_ssize_t dict_size;  /* dict size at last sync */
    MirrorSlot *slots;
    size_t mask;           /* table capacity - 1 (capacity is a power of 2) */
} RowMirror;

/* Two slots: the estimate cache and the support cache of the active
 * scheduler (policies use one of each at most). */
static RowMirror mirrors[2];

static inline size_t
mirror_hash(void *p)
{
    /* Pointers are aligned; spread the useful bits. */
    uintptr_t x = (uintptr_t)p >> 4;
    x ^= x >> 17;
    return (size_t)x;
}

static int
mirror_sync(RowMirror *mr, PyObject *cache)
{
    Py_ssize_t n = PyDict_GET_SIZE(cache);
    size_t cap = 16;
    while ((size_t)n * 2 >= cap)
        cap <<= 1;
    if (!mr->slots || mr->mask + 1 < cap) {
        PyMem_Free(mr->slots);
        mr->slots = PyMem_Calloc(cap, sizeof(MirrorSlot));
        if (!mr->slots) {
            mr->mask = 0;
            Py_CLEAR(mr->dict);
            PyErr_NoMemory();
            return -1;
        }
        mr->mask = cap - 1;
    } else {
        memset(mr->slots, 0, (mr->mask + 1) * sizeof(MirrorSlot));
    }
    Py_ssize_t pos = 0;
    PyObject *key, *value;
    while (PyDict_Next(cache, &pos, &key, &value)) {
        if (!PyTuple_Check(value) || PyTuple_GET_SIZE(value) != 2) {
            PyErr_SetString(PyExc_TypeError,
                            "row cache entries must be (node, row) tuples");
            Py_CLEAR(mr->dict); /* don't leave a half-built mirror live */
            return -1;
        }
        void *node = PyLong_AsVoidPtr(key);
        if (!node && PyErr_Occurred()) {
            Py_CLEAR(mr->dict);
            return -1;
        }
        size_t i = mirror_hash(node) & mr->mask;
        while (mr->slots[i].key)
            i = (i + 1) & mr->mask;
        mr->slots[i].key = node;
        mr->slots[i].row = PyTuple_GET_ITEM(value, 1);
    }
    if (mr->dict != cache) {
        Py_INCREF(cache);
        Py_XSETREF(mr->dict, cache);
    }
    mr->dict_size = n;
    return 0;
}

/* Row lookup: same key as the pure caches (id(node) ==
 * PyLong_FromVoidPtr(node) in CPython).  Returns a new reference. */
static PyObject *
fetch_row(PyObject *cache, PyObject *task, PyObject *fallback)
{
    PyObject *node = PyObject_GetAttr(task, str_node);
    if (!node)
        return NULL;
    Py_DECREF(node); /* the task keeps its node alive for the pass */
    RowMirror *mr = &mirrors[0];
    if (mr->dict != cache) {
        if (mirrors[1].dict == cache) {
            /* Keep the most recently used cache in slot 0. */
            RowMirror tmp = mirrors[0];
            mirrors[0] = mirrors[1];
            mirrors[1] = tmp;
        } else {
            /* Evict the least recently used slot for the new dict. */
            RowMirror tmp = mirrors[0];
            mirrors[0] = mirrors[1];
            mirrors[1] = tmp;
            if (mirror_sync(mr, cache) < 0)
                return NULL;
        }
    }
    if (mr->dict_size != PyDict_GET_SIZE(mr->dict)) {
        if (mirror_sync(mr, cache) < 0)
            return NULL;
    }
    size_t i = mirror_hash((void *)node) & mr->mask;
    while (mr->slots[i].key) {
        if (mr->slots[i].key == (void *)node) {
            PyObject *row = mr->slots[i].row;
            Py_INCREF(row);
            return row;
        }
        i = (i + 1) & mr->mask;
    }
    /* Miss: compute via the Python fallback, which inserts into the dict;
     * the size change triggers a resync on the next lookup. */
    return PyObject_CallOneArg(fallback, task);
}

static int
check_row(PyObject *row)
{
    if (!PyTuple_Check(row)) {
        PyErr_SetString(PyExc_TypeError, "estimate/support row must be a tuple");
        return -1;
    }
    return 0;
}

/* Convert a list of numbers to a fresh double array (caller frees). */
static double *
doubles_from_list(PyObject *list, Py_ssize_t *out_n)
{
    if (!PyList_Check(list)) {
        PyErr_SetString(PyExc_TypeError, "expected a list of floats");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(list);
    double *arr = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(double));
    if (!arr) {
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        arr[i] = PyFloat_AsDouble(PyList_GET_ITEM(list, i));
        if (arr[i] == -1.0 && PyErr_Occurred()) {
            PyMem_Free(arr);
            return NULL;
        }
    }
    *out_n = n;
    return arr;
}

/* Convert a list of ints to a fresh long long array (caller frees). */
static long long *
longs_from_list(PyObject *list, Py_ssize_t *out_n)
{
    if (!PyList_Check(list)) {
        PyErr_SetString(PyExc_TypeError, "expected a list of ints");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(list);
    long long *arr = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(long long));
    if (!arr) {
        PyErr_NoMemory();
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        arr[i] = PyLong_AsLongLong(PyList_GET_ITEM(list, i));
        if (arr[i] == -1 && PyErr_Occurred()) {
            PyMem_Free(arr);
            return NULL;
        }
    }
    *out_n = n;
    return arr;
}

/* Build the EFT availability arrays straight from the handler list:
 *   failed        -> not idle, avail = inf
 *   status IDLE   -> idle,     avail = now
 *   busy          -> not idle, avail = max(estimated_free_time, now)
 * Mirrors the pure-Python prologue bit-for-bit (same float compares). */
static int
eft_prologue(PyObject *handlers, double now, double **avail_out,
             char **idle_out, Py_ssize_t *m_out, Py_ssize_t *idle_rem_out)
{
    if (!PyList_Check(handlers)) {
        PyErr_SetString(PyExc_TypeError, "handlers must be a list");
        return -1;
    }
    Py_ssize_t m = PyList_GET_SIZE(handlers);
    double *avail = PyMem_Malloc((size_t)(m ? m : 1) * sizeof(double));
    char *idle_now = PyMem_Malloc((size_t)(m ? m : 1));
    if (!avail || !idle_now) {
        PyMem_Free(avail);
        PyMem_Free(idle_now);
        PyErr_NoMemory();
        return -1;
    }
    Py_ssize_t idle_remaining = 0;
    for (Py_ssize_t i = 0; i < m; i++) {
        PyObject *h = PyList_GET_ITEM(handlers, i);
        PyObject *failed = PyObject_GetAttr(h, str_failed);
        if (!failed)
            goto fail;
        int f = PyObject_IsTrue(failed);
        Py_DECREF(failed);
        if (f < 0)
            goto fail;
        if (f) {
            idle_now[i] = 0;
            avail[i] = Py_HUGE_VAL;
            continue;
        }
        PyObject *status = PyObject_GetAttr(h, str_status);
        if (!status)
            goto fail;
        int is_idle = (status == PEStatusIdle);
        Py_DECREF(status);
        if (is_idle) {
            idle_now[i] = 1;
            avail[i] = now;
            idle_remaining++;
        } else {
            idle_now[i] = 0;
            PyObject *freeobj = PyObject_GetAttr(h, str_eft);
            if (!freeobj)
                goto fail;
            double fr = PyFloat_AsDouble(freeobj);
            Py_DECREF(freeobj);
            if (fr == -1.0 && PyErr_Occurred())
                goto fail;
            avail[i] = fr > now ? fr : now;
        }
    }
    *avail_out = avail;
    *idle_out = idle_now;
    *m_out = m;
    *idle_rem_out = idle_remaining;
    return 0;
fail:
    PyMem_Free(avail);
    PyMem_Free(idle_now);
    return -1;
}

/* Positions of handlers whose status is PEStatus.IDLE, in order — the
 * FRFS idle pool (FAILED is terminal and never IDLE). */
static long long *
idle_pool(PyObject *handlers, Py_ssize_t *m_out)
{
    if (!PyList_Check(handlers)) {
        PyErr_SetString(PyExc_TypeError, "handlers must be a list");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(handlers);
    long long *idx = PyMem_Malloc((size_t)(n ? n : 1) * sizeof(long long));
    if (!idx) {
        PyErr_NoMemory();
        return NULL;
    }
    Py_ssize_t m = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *status = PyObject_GetAttr(PyList_GET_ITEM(handlers, i),
                                            str_status);
        if (!status) {
            PyMem_Free(idx);
            return NULL;
        }
        if (status == PEStatusIdle)
            idx[m++] = (long long)i;
        Py_DECREF(status);
    }
    *m_out = m;
    return idx;
}

static int
append_pair(PyObject *result, PyObject *task, Py_ssize_t index)
{
    PyObject *idx = PyLong_FromSsize_t(index);
    if (!idx)
        return -1;
    PyObject *pair = PyTuple_Pack(2, task, idx);
    Py_DECREF(idx);
    if (!pair)
        return -1;
    int rc = PyList_Append(result, pair);
    Py_DECREF(pair);
    return rc;
}

/* eft_pass(ready, cache, fallback, handlers, now)
 * The EFT/HEFT placement loop including its availability prologue
 * (HEFT passes its prioritized list as ``ready``). */
static PyObject *
coreext_eft_pass(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *ready, *cache, *fallback, *handlers;
    double now;
    if (!PyArg_ParseTuple(args, "OO!OOd:eft_pass", &ready, &PyDict_Type,
                          &cache, &fallback, &handlers, &now))
        return NULL;
    Py_ssize_t m = 0, idle_remaining = 0;
    double *avail = NULL;
    char *idle_now = NULL;
    if (eft_prologue(handlers, now, &avail, &idle_now, &m,
                     &idle_remaining) < 0)
        return NULL;
    char *dispatched = PyMem_Calloc((size_t)(m ? m : 1), 1);
    PyObject *result = PyList_New(0);
    PyObject *iter = NULL;
    if (!dispatched || !result)
        goto fail;
    iter = PyObject_GetIter(ready);
    if (!iter)
        goto fail;
    PyObject *task;
    while ((task = PyIter_Next(iter))) {
        if (idle_remaining == 0) {
            Py_DECREF(task);
            break;
        }
        PyObject *row = fetch_row(cache, task, fallback);
        if (!row || check_row(row) < 0) {
            Py_XDECREF(row);
            Py_DECREF(task);
            goto fail;
        }
        Py_ssize_t rn = PyTuple_GET_SIZE(row);
        if (rn > m)
            rn = m;
        Py_ssize_t best_i = -1;
        double best_finish = Py_HUGE_VAL;
        for (Py_ssize_t i = 0; i < rn; i++) {
            PyObject *est = PyTuple_GET_ITEM(row, i);
            if (est == Py_None)
                continue;
            double e = PyFloat_AsDouble(est);
            if (e == -1.0 && PyErr_Occurred()) {
                Py_DECREF(row);
                Py_DECREF(task);
                goto fail;
            }
            double finish = avail[i] + e;
            if (finish < best_finish) {
                best_finish = finish;
                best_i = i;
            }
        }
        Py_DECREF(row);
        if (best_i >= 0) {
            avail[best_i] = best_finish;
            if (idle_now[best_i] && !dispatched[best_i]) {
                dispatched[best_i] = 1;
                idle_remaining -= 1;
                if (append_pair(result, task, best_i) < 0) {
                    Py_DECREF(task);
                    goto fail;
                }
            }
        }
        Py_DECREF(task);
    }
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(iter);
    PyMem_Free(avail);
    PyMem_Free(idle_now);
    PyMem_Free(dispatched);
    return result;
fail:
    Py_XDECREF(iter);
    Py_XDECREF(result);
    PyMem_Free(avail);
    PyMem_Free(idle_now);
    PyMem_Free(dispatched);
    return NULL;
}

/* met_pass(ready, cache, fallback, indices, pe_ids, powers)
 * MET / power-aware MET: `indices` are handler positions of the idle
 * pool (in order), `pe_ids` the matching handler.pe_id tie-breakers,
 * `powers` a matching list of multipliers or None for plain MET. */
static PyObject *
coreext_met_pass(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *ready, *cache, *fallback, *idx_list, *peid_list, *pow_list;
    if (!PyArg_ParseTuple(args, "OO!OOOO:met_pass", &ready, &PyDict_Type,
                          &cache, &fallback, &idx_list, &peid_list,
                          &pow_list))
        return NULL;
    Py_ssize_t m = 0, m2 = 0, m3 = 0;
    long long *idx = longs_from_list(idx_list, &m);
    if (!idx)
        return NULL;
    long long *peid = longs_from_list(peid_list, &m2);
    if (!peid) {
        PyMem_Free(idx);
        return NULL;
    }
    double *powers = NULL;
    if (pow_list != Py_None) {
        powers = doubles_from_list(pow_list, &m3);
        if (!powers) {
            PyMem_Free(idx);
            PyMem_Free(peid);
            return NULL;
        }
    }
    if (m2 != m || (powers && m3 != m)) {
        PyErr_SetString(PyExc_ValueError, "met_pass: pool lists misaligned");
        goto fail0;
    }
    PyObject *result = PyList_New(0);
    PyObject *iter = NULL;
    if (!result)
        goto fail0;
    iter = PyObject_GetIter(ready);
    if (!iter)
        goto fail;
    PyObject *task;
    while ((task = PyIter_Next(iter))) {
        if (m == 0) {
            Py_DECREF(task);
            break;
        }
        PyObject *row = fetch_row(cache, task, fallback);
        if (!row || check_row(row) < 0) {
            Py_XDECREF(row);
            Py_DECREF(task);
            goto fail;
        }
        Py_ssize_t rn = PyTuple_GET_SIZE(row);
        Py_ssize_t best_pos = -1;
        double best_cost = 0.0;
        long long best_pe = 0;
        for (Py_ssize_t pos = 0; pos < m; pos++) {
            Py_ssize_t i = (Py_ssize_t)idx[pos];
            if (i < 0 || i >= rn)
                continue;
            PyObject *est = PyTuple_GET_ITEM(row, i);
            if (est == Py_None)
                continue;
            double e = PyFloat_AsDouble(est);
            if (e == -1.0 && PyErr_Occurred()) {
                Py_DECREF(row);
                Py_DECREF(task);
                goto fail;
            }
            double cost = powers ? e * powers[pos] : e;
            /* (cost, pe_id) tuple < (best_cost, best_pe) */
            if (best_pos < 0 || cost < best_cost ||
                (cost == best_cost && peid[pos] < best_pe)) {
                best_pos = pos;
                best_cost = cost;
                best_pe = peid[pos];
            }
        }
        Py_DECREF(row);
        if (best_pos >= 0) {
            if (append_pair(result, task, (Py_ssize_t)idx[best_pos]) < 0) {
                Py_DECREF(task);
                goto fail;
            }
            /* available.pop(best_pos) */
            memmove(&idx[best_pos], &idx[best_pos + 1],
                    (size_t)(m - best_pos - 1) * sizeof(long long));
            memmove(&peid[best_pos], &peid[best_pos + 1],
                    (size_t)(m - best_pos - 1) * sizeof(long long));
            if (powers)
                memmove(&powers[best_pos], &powers[best_pos + 1],
                        (size_t)(m - best_pos - 1) * sizeof(double));
            m -= 1;
        }
        Py_DECREF(task);
    }
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(iter);
    PyMem_Free(idx);
    PyMem_Free(peid);
    PyMem_Free(powers);
    return result;
fail:
    Py_XDECREF(iter);
    Py_XDECREF(result);
fail0:
    PyMem_Free(idx);
    PyMem_Free(peid);
    PyMem_Free(powers);
    return NULL;
}

/* frfs_pass(ready, cache, fallback, handlers)
 * First ready task onto the first idle supporting PE; builds the idle
 * pool from the handler list itself. */
static PyObject *
coreext_frfs_pass(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *ready, *cache, *fallback, *handlers;
    if (!PyArg_ParseTuple(args, "OO!OO:frfs_pass", &ready, &PyDict_Type,
                          &cache, &fallback, &handlers))
        return NULL;
    Py_ssize_t m = 0;
    long long *idx = idle_pool(handlers, &m);
    if (!idx)
        return NULL;
    PyObject *result = PyList_New(0);
    PyObject *iter = NULL;
    if (!result)
        goto fail0;
    if (m == 0) {
        /* Matches the pure path's early "if not idle: return []". */
        PyMem_Free(idx);
        return result;
    }
    iter = PyObject_GetIter(ready);
    if (!iter)
        goto fail;
    PyObject *task;
    while ((task = PyIter_Next(iter))) {
        if (m == 0) {
            Py_DECREF(task);
            break;
        }
        PyObject *row = fetch_row(cache, task, fallback);
        if (!row || check_row(row) < 0) {
            Py_XDECREF(row);
            Py_DECREF(task);
            goto fail;
        }
        Py_ssize_t rn = PyTuple_GET_SIZE(row);
        for (Py_ssize_t pos = 0; pos < m; pos++) {
            Py_ssize_t i = (Py_ssize_t)idx[pos];
            if (i < 0 || i >= rn)
                continue;
            int t = PyObject_IsTrue(PyTuple_GET_ITEM(row, i));
            if (t < 0) {
                Py_DECREF(row);
                Py_DECREF(task);
                goto fail;
            }
            if (t) {
                if (append_pair(result, task, i) < 0) {
                    Py_DECREF(row);
                    Py_DECREF(task);
                    goto fail;
                }
                memmove(&idx[pos], &idx[pos + 1],
                        (size_t)(m - pos - 1) * sizeof(long long));
                m -= 1;
                break;
            }
        }
        Py_DECREF(row);
        Py_DECREF(task);
    }
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(iter);
    PyMem_Free(idx);
    return result;
fail:
    Py_XDECREF(iter);
    Py_XDECREF(result);
fail0:
    PyMem_Free(idx);
    return NULL;
}

/* eft_reserve_pass(ready, cache, fallback, avail, slots, open_slots) */
static PyObject *
coreext_eft_reserve_pass(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *ready, *cache, *fallback, *avail_list, *slots_list;
    Py_ssize_t open_slots;
    if (!PyArg_ParseTuple(args, "OO!OOOn:eft_reserve_pass", &ready,
                          &PyDict_Type, &cache, &fallback, &avail_list,
                          &slots_list, &open_slots))
        return NULL;
    Py_ssize_t m = 0, m2 = 0;
    double *avail = doubles_from_list(avail_list, &m);
    if (!avail)
        return NULL;
    long long *slots = longs_from_list(slots_list, &m2);
    if (!slots) {
        PyMem_Free(avail);
        return NULL;
    }
    PyObject *result = PyList_New(0);
    PyObject *iter = NULL;
    if (!result || m2 != m) {
        if (result && m2 != m)
            PyErr_SetString(PyExc_ValueError,
                            "eft_reserve_pass: lists misaligned");
        goto fail;
    }
    iter = PyObject_GetIter(ready);
    if (!iter)
        goto fail;
    PyObject *task;
    while ((task = PyIter_Next(iter))) {
        if (open_slots == 0) {
            Py_DECREF(task);
            break;
        }
        PyObject *row = fetch_row(cache, task, fallback);
        if (!row || check_row(row) < 0) {
            Py_XDECREF(row);
            Py_DECREF(task);
            goto fail;
        }
        Py_ssize_t rn = PyTuple_GET_SIZE(row);
        if (rn > m)
            rn = m;
        Py_ssize_t best_i = -1;
        double best_finish = Py_HUGE_VAL;
        for (Py_ssize_t i = 0; i < rn; i++) {
            PyObject *est = PyTuple_GET_ITEM(row, i);
            if (est == Py_None || slots[i] <= 0)
                continue;
            double e = PyFloat_AsDouble(est);
            if (e == -1.0 && PyErr_Occurred()) {
                Py_DECREF(row);
                Py_DECREF(task);
                goto fail;
            }
            double finish = avail[i] + e;
            if (finish < best_finish) {
                best_finish = finish;
                best_i = i;
            }
        }
        Py_DECREF(row);
        if (best_i >= 0) {
            avail[best_i] = best_finish;
            slots[best_i] -= 1;
            open_slots -= 1;
            if (append_pair(result, task, best_i) < 0) {
                Py_DECREF(task);
                goto fail;
            }
        }
        Py_DECREF(task);
    }
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(iter);
    PyMem_Free(avail);
    PyMem_Free(slots);
    return result;
fail:
    Py_XDECREF(iter);
    Py_XDECREF(result);
    PyMem_Free(avail);
    PyMem_Free(slots);
    return NULL;
}

/* frfs_reserve_pass(ready, cache, fallback, load, depth)
 * FIFO tasks onto the least-loaded supporting PE (depth is the
 * exclusive load bound). */
static PyObject *
coreext_frfs_reserve_pass(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *ready, *cache, *fallback, *load_list;
    Py_ssize_t depth;
    if (!PyArg_ParseTuple(args, "OO!OOn:frfs_reserve_pass", &ready,
                          &PyDict_Type, &cache, &fallback, &load_list,
                          &depth))
        return NULL;
    Py_ssize_t m = 0;
    long long *load = longs_from_list(load_list, &m);
    if (!load)
        return NULL;
    PyObject *result = PyList_New(0);
    PyObject *iter = NULL;
    if (!result)
        goto fail0;
    iter = PyObject_GetIter(ready);
    if (!iter)
        goto fail;
    PyObject *task;
    while ((task = PyIter_Next(iter))) {
        PyObject *row = fetch_row(cache, task, fallback);
        if (!row || check_row(row) < 0) {
            Py_XDECREF(row);
            Py_DECREF(task);
            goto fail;
        }
        Py_ssize_t rn = PyTuple_GET_SIZE(row);
        if (rn > m)
            rn = m;
        Py_ssize_t best_i = -1;
        long long best_load = (long long)depth;
        for (Py_ssize_t i = 0; i < rn; i++) {
            if (load[i] >= best_load)
                continue;
            int t = PyObject_IsTrue(PyTuple_GET_ITEM(row, i));
            if (t < 0) {
                Py_DECREF(row);
                Py_DECREF(task);
                goto fail;
            }
            if (t) {
                best_i = i;
                best_load = load[i];
                if (load[i] == 0)
                    break;
            }
        }
        Py_DECREF(row);
        if (best_i >= 0) {
            load[best_i] += 1;
            if (append_pair(result, task, best_i) < 0) {
                Py_DECREF(task);
                goto fail;
            }
        }
        Py_DECREF(task);
    }
    if (PyErr_Occurred())
        goto fail;
    Py_DECREF(iter);
    PyMem_Free(load);
    return result;
fail:
    Py_XDECREF(iter);
    Py_XDECREF(result);
fail0:
    PyMem_Free(load);
    return NULL;
}

/* supported_positions(row, indices) -> [pos, ...]
 * Positions within the pool whose handler supports the task (the
 * candidate list of the RANDOM policy; the RNG draw stays in Python). */
static PyObject *
coreext_supported_positions(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *row, *idx_list;
    if (!PyArg_ParseTuple(args, "OO:supported_positions", &row, &idx_list))
        return NULL;
    if (check_row(row) < 0)
        return NULL;
    Py_ssize_t m = 0;
    long long *idx = longs_from_list(idx_list, &m);
    if (!idx)
        return NULL;
    Py_ssize_t rn = PyTuple_GET_SIZE(row);
    PyObject *result = PyList_New(0);
    if (!result) {
        PyMem_Free(idx);
        return NULL;
    }
    for (Py_ssize_t pos = 0; pos < m; pos++) {
        Py_ssize_t i = (Py_ssize_t)idx[pos];
        if (i < 0 || i >= rn)
            continue;
        int t = PyObject_IsTrue(PyTuple_GET_ITEM(row, i));
        if (t < 0)
            goto fail;
        if (t) {
            PyObject *p = PyLong_FromSsize_t(pos);
            if (!p)
                goto fail;
            int rc = PyList_Append(result, p);
            Py_DECREF(p);
            if (rc < 0)
                goto fail;
        }
    }
    PyMem_Free(idx);
    return result;
fail:
    Py_DECREF(result);
    PyMem_Free(idx);
    return NULL;
}

/* ------------------------------------------------------------------ */
/* Module init                                                         */
/* ------------------------------------------------------------------ */

static PyMethodDef coreext_methods[] = {
    {"run_loop", coreext_run_loop, METH_VARARGS,
     "run_loop(engine, heap, until, max_events) -> final now"},
    {"eft_pass", coreext_eft_pass, METH_VARARGS, "EFT/HEFT placement loop"},
    {"met_pass", coreext_met_pass, METH_VARARGS, "MET placement loop"},
    {"frfs_pass", coreext_frfs_pass, METH_VARARGS, "FRFS placement loop"},
    {"eft_reserve_pass", coreext_eft_reserve_pass, METH_VARARGS,
     "reservation-EFT placement loop"},
    {"frfs_reserve_pass", coreext_frfs_reserve_pass, METH_VARARGS,
     "reservation-FRFS placement loop"},
    {"supported_positions", coreext_supported_positions, METH_VARARGS,
     "candidate positions for the RANDOM policy"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef coreext_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro._native._coreext",
    .m_doc = "Compiled DES core: event heap, run loop, scheduler kernels.",
    .m_size = -1,
    .m_methods = coreext_methods,
};

static int
resolve_from(const char *modname, const char *attr, PyObject **slot)
{
    PyObject *mod = PyImport_ImportModule(modname);
    if (!mod)
        return -1;
    *slot = PyObject_GetAttrString(mod, attr);
    Py_DECREF(mod);
    return *slot ? 0 : -1;
}

PyMODINIT_FUNC
PyInit__coreext(void)
{
    PyObject *m = NULL;
    if (PyType_Ready(&EventHeap_Type) < 0 ||
        PyType_Ready(&ReadyList_Type) < 0 ||
        PyType_Ready(&ReadyListIter_Type) < 0)
        return NULL;

    str_fire = PyUnicode_InternFromString("_fire");
    str_now = PyUnicode_InternFromString("now");
    str_events_fired = PyUnicode_InternFromString("events_fired");
    str_callbacks = PyUnicode_InternFromString("callbacks");
    str_state = PyUnicode_InternFromString("_state");
    str_fn = PyUnicode_InternFromString("fn");
    str_node = PyUnicode_InternFromString("node");
    str_failed = PyUnicode_InternFromString("failed");
    str_status = PyUnicode_InternFromString("_status");
    str_eft = PyUnicode_InternFromString("estimated_free_time");
    int_fired = PyLong_FromLong(2); /* repro.sim.engine._FIRED */
    if (!str_fire || !str_now || !str_events_fired || !str_callbacks ||
        !str_state || !str_fn || !str_node || !str_failed || !str_status ||
        !str_eft || !int_fired)
        return NULL;

    if (resolve_from("repro.common.errors", "EmulationError",
                     &EmulationError) < 0)
        return NULL;
    if (resolve_from("repro.sim.engine", "_Callback", &CallbackType) < 0)
        return NULL;
    if (resolve_from("repro.sim.engine", "Event", &EventType) < 0)
        return NULL;
    if (resolve_from("repro.sim.engine", "Timeout", &TimeoutType) < 0)
        return NULL;
    {
        PyObject *pe_status = NULL;
        if (resolve_from("repro.runtime.handler", "PEStatus", &pe_status) < 0)
            return NULL;
        PEStatusIdle = PyObject_GetAttrString(pe_status, "IDLE");
        Py_DECREF(pe_status);
        if (!PEStatusIdle)
            return NULL;
    }

    m = PyModule_Create(&coreext_module);
    if (!m)
        return NULL;
    Py_INCREF(&EventHeap_Type);
    if (PyModule_AddObject(m, "EventHeap", (PyObject *)&EventHeap_Type) < 0) {
        Py_DECREF(&EventHeap_Type);
        Py_DECREF(m);
        return NULL;
    }
    Py_INCREF(&ReadyList_Type);
    if (PyModule_AddObject(m, "ReadyList", (PyObject *)&ReadyList_Type) < 0) {
        Py_DECREF(&ReadyList_Type);
        Py_DECREF(m);
        return NULL;
    }
    PyObject *build = Py_BuildValue(
        "{s:s, s:s, s:s, s:i}",
        "toolchain", "gcc",
        "compiler_version", __VERSION__,
        "python", PY_VERSION,
        "api", 1);
    if (!build || PyModule_AddObject(m, "BUILD_INFO", build) < 0) {
        Py_XDECREF(build);
        Py_DECREF(m);
        return NULL;
    }
    return m;
}

