"""Loader for the optional compiled DES core extension.

The extension (``repro._native._coreext``) is built from ``_coreext.c``
either by ``python -m repro._native.build`` (in-place, gcc) or by the
optional setuptools hook in ``setup.py``.  Import failures are captured,
not raised: the package must keep working from a source checkout with no
compiler, so callers decide whether a missing extension is an error
(explicit ``--core compiled``) or a fallback (env/auto selection) —
see :mod:`repro.core`.
"""

from __future__ import annotations

from types import ModuleType

_module: ModuleType | None = None
_error: str | None = None
_attempted = False


def load() -> ModuleType | None:
    """The compiled extension module, or None if it cannot be imported."""
    global _module, _error, _attempted
    if not _attempted:
        _attempted = True
        try:
            from repro._native import _coreext  # type: ignore[attr-defined]
        except ImportError as exc:  # pragma: no cover - env-dependent
            _module = None
            _error = str(exc)
        else:
            _module = _coreext
            _error = None
    return _module


def available() -> bool:
    return load() is not None


def import_error() -> str | None:
    """The captured ImportError message, or None when loaded."""
    load()
    return _error


def build_info() -> dict | None:
    """Toolchain metadata baked into the extension, or None."""
    mod = load()
    if mod is None:
        return None
    return dict(mod.BUILD_INFO)


def reset_for_tests() -> None:
    """Forget the cached import attempt (test hook)."""
    global _module, _error, _attempted
    _module = None
    _error = None
    _attempted = False
