"""In-place build of the compiled core extension.

``python -m repro._native.build`` compiles ``_coreext.c`` next to this
file with the C compiler from the environment (``CC``, default ``cc``),
so a plain source checkout can enable the compiled core without
setuptools ceremony.  Exits non-zero (with the compiler's output) on
failure; the package itself never requires the result.
"""

from __future__ import annotations

import os
import subprocess
import sys
import sysconfig
from pathlib import Path

HERE = Path(__file__).resolve().parent
SOURCE = HERE / "_coreext.c"


def target_path() -> Path:
    """Where the built extension lands (ABI-tagged, import-ready)."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return HERE / f"_coreext{suffix}"


def build(verbose: bool = True) -> Path:
    """Compile the extension in place; returns the built path."""
    cc = os.environ.get("CC", "cc")
    include = sysconfig.get_paths()["include"]
    out = target_path()
    cmd = [
        cc,
        "-O2",
        "-fPIC",
        "-shared",
        "-fno-strict-aliasing",
        f"-I{include}",
        str(SOURCE),
        "-o",
        str(out),
    ]
    if verbose:
        print(" ".join(cmd))
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"compiled-core build failed (exit {proc.returncode})")
    if verbose:
        print(f"built {out}")
    return out


def main() -> int:
    try:
        build()
    except (RuntimeError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
