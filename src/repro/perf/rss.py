"""Peak-RSS measurement for benchmark runs.

Streaming-workload benchmarks track memory as a first-class number: the
whole point of open-loop injection is that peak RSS stays flat as app
counts grow.  On Linux the kernel keeps a per-process resident-set
high-water mark (``VmHWM`` in ``/proc/self/status``) that can be *reset*
by writing ``5`` to ``/proc/self/clear_refs`` — so each scenario rep can
measure its own peak instead of inheriting the process-lifetime maximum.

Where those files are unavailable (non-Linux, restricted procfs) the
fallback is ``resource.getrusage``'s ``ru_maxrss``, which cannot be reset;
``peak_rss_supported()`` reports which regime applies so callers can
annotate their numbers.
"""

from __future__ import annotations

import resource
import sys

_CLEAR_REFS = "/proc/self/clear_refs"
_STATUS = "/proc/self/status"


def _vm_hwm_bytes() -> int | None:
    """VmHWM from /proc/self/status in bytes, or None when unreadable."""
    try:
        with open(_STATUS, encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    # "VmHWM:     123456 kB"
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def peak_rss_supported() -> bool:
    """True when the per-measurement reset path (clear_refs) works here."""
    if _vm_hwm_bytes() is None:
        return False
    try:
        with open(_CLEAR_REFS, "w") as fh:
            fh.write("5")
    except OSError:
        return False
    return True


def reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark; True if the reset took.

    When it returns False the next :func:`peak_rss_bytes` reading is the
    process-lifetime peak, not the peak since this call.
    """
    try:
        with open(_CLEAR_REFS, "w") as fh:
            fh.write("5")
        return True
    except OSError:
        return False


def _ru_maxrss_bytes(
    ru_maxrss: int | None = None, platform: str | None = None
) -> int:
    """Normalize ``getrusage().ru_maxrss`` to bytes.

    POSIX leaves the unit unspecified and the big platforms disagree:
    Linux (and the BSDs) report kibibytes, macOS reports bytes.  Every
    consumer must go through this one helper — an unconverted reading is
    off by 1024×, which is exactly the kind of silent factor that ruins
    a memory-flatness claim.  Parameters exist for the unit test; real
    callers pass nothing.
    """
    if ru_maxrss is None:
        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform is None:
        platform = sys.platform
    if platform == "darwin":
        return int(ru_maxrss)
    return int(ru_maxrss) * 1024


def peak_rss_bytes() -> int:
    """Current peak resident set size in bytes (0 if unmeasurable).

    Prefers ``VmHWM`` (resettable, Linux); falls back to the
    process-lifetime ``ru_maxrss``, unit-normalized by
    :func:`_ru_maxrss_bytes`.
    """
    hwm = _vm_hwm_bytes()
    if hwm is not None:
        return hwm
    return _ru_maxrss_bytes()
