"""Performance benchmark harness for the emulation framework.

The suite pins down the framework's *own* throughput (host events/sec,
emulated tasks/sec) on a fixed set of canonical scenarios so that perf
work is measured, not guessed:

* every optimization to the virtual backend must keep emulation output
  bit-identical (the exact-vector tests are the oracle) — this harness
  tracks the *speed* axis;
* reports are written as ``BENCH_<timestamp>.json`` files, making the
  perf trajectory a first-class, diffable artifact next to the paper
  reproduction artifacts.

Entry points: ``dssoc-emulate bench`` (CLI) or :func:`run_suite` /
:func:`compare_reports` (programmatic).
"""

from repro.perf.harness import (
    compare_reports,
    format_core_compare,
    format_report,
    load_report,
    run_scenario,
    run_suite,
    run_suite_compare_cores,
    write_report,
)
from repro.perf.rss import peak_rss_bytes, reset_peak_rss
from repro.perf.scenarios import (
    BenchScenario,
    LOOKAHEAD_SCENARIOS,
    SCENARIOS,
    SERVING_SCENARIOS,
    all_scenario_names,
    get_scenario,
    scenario_names,
)

__all__ = [
    "BenchScenario",
    "LOOKAHEAD_SCENARIOS",
    "SCENARIOS",
    "SERVING_SCENARIOS",
    "all_scenario_names",
    "compare_reports",
    "format_core_compare",
    "format_report",
    "get_scenario",
    "load_report",
    "peak_rss_bytes",
    "reset_peak_rss",
    "run_scenario",
    "run_suite",
    "run_suite_compare_cores",
    "scenario_names",
    "write_report",
]
