"""Measurement harness: warmup + repetitions → ``BENCH_<timestamp>.json``.

The report schema (``dssoc-bench/v2``) is documented in
``docs/performance.md``; v1 reports (pre peak-RSS/app-count tracking)
are still readable.  Wall times are reported as the median across
repetitions (min and all samples are kept for inspection); events/sec
and tasks/sec derive from the median so one noisy rep cannot flatter or
slander a commit.  Peak RSS is the max across repetitions — it is a
high-water mark, so the worst rep is the honest number.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import statistics
import subprocess
import sys
import time
from pathlib import Path

from repro import core as core_select
from repro.common.errors import ReproError
from repro.perf.scenarios import SCENARIOS, get_scenario

SCHEMA = "dssoc-bench/v2"
#: older report schemas load_report still accepts
COMPAT_SCHEMAS = ("dssoc-bench/v1",)
DEFAULT_OUT_DIR = "benchmarks/results"

#: stats that must be bit-identical between the pure and compiled cores
#: (wall times and memory are the only things allowed to differ)
DETERMINISTIC_KEYS = (
    "events", "tasks", "apps_completed", "makespan_ms", "sched_invocations",
    "apps_injected", "apps_dropped",
)


def run_scenario(name: str, *, reps: int = 3, warmup: int = 1,
                 quick: bool = False) -> dict:
    """Run one scenario ``warmup + reps`` times; return its report entry."""
    if reps < 1:
        raise ReproError("bench needs at least one repetition")
    scenario = get_scenario(name)
    for _ in range(warmup):
        scenario.run_once(quick=quick)
    samples = [scenario.run_once(quick=quick) for _ in range(reps)]
    walls = [s["wall_s"] for s in samples]
    wall_median = statistics.median(walls)
    ref = samples[0]
    for s in samples[1:]:
        if (s["events"], s["tasks"], s["makespan_ms"]) != (
            ref["events"], ref["tasks"], ref["makespan_ms"]
        ):
            raise ReproError(
                f"scenario {name!r} is nondeterministic across repetitions"
            )
    entry = dict(scenario.spec(quick=quick))
    entry.update(
        {
            "reps": reps,
            "warmup": warmup,
            "wall_s_median": round(wall_median, 6),
            "wall_s_min": round(min(walls), 6),
            "wall_s_all": [round(w, 6) for w in walls],
            "events": ref["events"],
            "events_per_sec": round(ref["events"] / wall_median, 1),
            "tasks": ref["tasks"],
            "tasks_per_sec": round(ref["tasks"] / wall_median, 1),
            "apps_completed": ref["apps"],
            "apps_injected": ref["apps_injected"],
            "apps_degraded": ref["apps_degraded"],
            "apps_dropped": ref["apps_dropped"],
            "makespan_ms": ref["makespan_ms"],
            "sched_invocations": ref["sched_invocations"],
            "peak_rss_bytes": max(s["peak_rss_bytes"] for s in samples),
        }
    )
    return entry


def run_suite(names: list[str] | None = None, *, reps: int = 3,
              warmup: int = 1, quick: bool = False,
              progress=None) -> dict:
    """Run the suite (or a subset) and return the full report document."""
    if quick:
        reps, warmup = min(reps, 1), 0
    selected = names if names else [s.name for s in SCENARIOS]
    scenarios: dict[str, dict] = {}
    for i, name in enumerate(selected):
        if progress is not None:
            progress(i, len(selected), name)
        scenarios[name] = run_scenario(
            name, reps=reps, warmup=warmup, quick=quick
        )
    return _make_doc(scenarios, quick=quick)


def _make_doc(scenarios: dict[str, dict], *, quick: bool) -> dict:
    total_wall = sum(s["wall_s_median"] for s in scenarios.values())
    total_events = sum(s["events"] for s in scenarios.values())
    total_tasks = sum(s["tasks"] for s in scenarios.values())
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "quick": quick,
        "host": {
            "python": sys.version.split()[0],
            "platform": _platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "core": core_select.core_info(),
        "git_commit": _git_commit(),
        "scenarios": scenarios,
        "totals": {
            "wall_s": round(total_wall, 6),
            "events": total_events,
            "events_per_sec": round(total_events / total_wall, 1)
            if total_wall > 0
            else 0.0,
            "tasks": total_tasks,
            "tasks_per_sec": round(total_tasks / total_wall, 1)
            if total_wall > 0
            else 0.0,
        },
    }


def run_suite_compare_cores(names: list[str] | None = None, *,
                            reps: int = 3, warmup: int = 1,
                            quick: bool = False,
                            progress=None) -> tuple[dict, dict]:
    """Run the suite under both cores; return (pure_doc, compiled_doc).

    The cores are interleaved per scenario (pure then compiled back to
    back) so machine drift hits both sides equally, and every scenario's
    deterministic stats are asserted bit-identical between them — a wall
    time may differ, the emulation must not.  Raises :class:`ReproError`
    when the compiled extension is not importable: an explicit
    comparison request cannot be satisfied by a silent fallback.
    """
    if quick:
        reps, warmup = min(reps, 1), 0
    selected = names if names else [s.name for s in SCENARIOS]
    pure: dict[str, dict] = {}
    compiled: dict[str, dict] = {}
    for i, name in enumerate(selected):
        if progress is not None:
            progress(i, len(selected), name)
        with core_select.forced(core_select.CORE_PURE):
            pure[name] = run_scenario(name, reps=reps, warmup=warmup,
                                      quick=quick)
        with core_select.forced(core_select.CORE_COMPILED):
            compiled[name] = run_scenario(name, reps=reps, warmup=warmup,
                                          quick=quick)
        for key in DETERMINISTIC_KEYS:
            if pure[name][key] != compiled[name][key]:
                raise ReproError(
                    f"scenario {name!r}: cores disagree on {key} "
                    f"(pure={pure[name][key]!r}, "
                    f"compiled={compiled[name][key]!r})"
                )
    with core_select.forced(core_select.CORE_PURE):
        pure_doc = _make_doc(pure, quick=quick)
    with core_select.forced(core_select.CORE_COMPILED):
        compiled_doc = _make_doc(compiled, quick=quick)
    return pure_doc, compiled_doc


def format_core_compare(pure_doc: dict, compiled_doc: dict) -> str:
    """Per-scenario speedup table for a compare-cores run."""
    from repro.analysis.tables import format_table

    rows = []
    for name, p in pure_doc["scenarios"].items():
        c = compiled_doc["scenarios"][name]
        speedup = (
            p["wall_s_median"] / c["wall_s_median"]
            if c["wall_s_median"] > 0
            else float("inf")
        )
        rows.append(
            [
                name,
                f"{p['wall_s_median']:.3f}",
                f"{c['wall_s_median']:.3f}",
                f"{speedup:.2f}x",
            ]
        )
    build = compiled_doc.get("core", {}).get("build", {})
    toolchain = build.get("toolchain", "?")
    return format_table(
        ["scenario", "pure wall s", "compiled wall s", "speedup"],
        rows,
        title=f"core compare: pure -> compiled ({toolchain})",
    )


def write_report(doc: dict, out_dir: str | Path = DEFAULT_OUT_DIR,
                 *, tag: str = "") -> Path:
    """Persist a report as ``BENCH_<timestamp>[_<tag>].json``.

    ``tag`` distinguishes reports written in the same invocation (the
    compare-cores pair uses ``pure``/``compiled``).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%S")
    suffix = f"_{tag}" if tag else ""
    path = out / f"BENCH_{stamp}{suffix}.json"
    n = 1
    while path.exists():  # same-second reruns
        path = out / f"BENCH_{stamp}{suffix}_{n}.json"
        n += 1
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    return path


def load_report(path: str | Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != SCHEMA and schema not in COMPAT_SCHEMAS:
        raise ReproError(f"{path}: not a {SCHEMA} report")
    return doc


def format_report(doc: dict) -> str:
    """Human-readable table for one report."""
    from repro.analysis.tables import format_table

    rows = []
    for name, s in doc["scenarios"].items():
        peak = s.get("peak_rss_bytes")  # absent in v1 reports
        rows.append(
            [
                name,
                s["policy"],
                s["config"],
                f"{s['wall_s_median']:.3f}",
                f"{s['events_per_sec']:,.0f}",
                f"{s['tasks_per_sec']:,.0f}",
                s["tasks"],
                f"{s['makespan_ms']:.2f}",
                f"{peak / 1e6:,.0f}" if peak else "-",
            ]
        )
    title = f"dssoc bench — {doc['created']}"
    if doc.get("quick"):
        title += " (quick)"
    return format_table(
        ["scenario", "policy", "config", "wall s", "events/s", "tasks/s",
         "tasks", "makespan ms", "peak MB"],
        rows,
        title=title,
    )


def compare_reports(base: dict, new: dict) -> str:
    """Side-by-side speedup table between two reports (same scenarios)."""
    from repro.analysis.tables import format_table

    rows = []
    for name, b in base["scenarios"].items():
        n = new["scenarios"].get(name)
        if n is None:
            continue
        if b.get("apps") != n.get("apps") or b.get("rate") != n.get("rate"):
            rows.append([name, "-", "-", "workload differs"])
            continue
        speedup = (
            b["wall_s_median"] / n["wall_s_median"]
            if n["wall_s_median"] > 0
            else float("inf")
        )
        rows.append(
            [
                name,
                f"{b['wall_s_median']:.3f}",
                f"{n['wall_s_median']:.3f}",
                f"{speedup:.2f}x",
            ]
        )
    return format_table(
        ["scenario", "base wall s", "new wall s", "speedup"],
        rows,
        title=(
            f"bench compare: {base.get('git_commit', '?')[:12]} -> "
            f"{new.get('git_commit', '?')[:12]}"
        ),
    )


def _git_commit() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        return out.stdout.strip() if out.returncode == 0 else "unknown"
    except OSError:
        return "unknown"
