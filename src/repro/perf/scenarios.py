"""Canonical benchmark scenarios.

Each scenario fixes one load shape the virtual backend must be fast at:

* ``validation-burst`` — everything arrives at t=0 (the paper's
  validation mode): stresses injection and the dispatch handshake.
* ``steady-state`` — performance-mode Table II workload at a sustained
  injection rate: stresses the workload-manager wait/wake loop.
* ``scheduler-stress`` — a large t=0 burst under EFT so the ready queue
  stays long: stresses the O(ready × PEs) policy path and the ready-list
  data structure.
* ``accel-heavy`` — FFT-bound applications on a 2C+2F DSSoC: stresses
  the accelerator DMA/compute path and host-core contention (the Fig. 9
  preemption mechanism).

Scenarios are deterministic (fixed seed, fixed workload) so that two
reports from the same commit agree and cross-commit deltas mean code,
not luck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.common.errors import ReproError


@dataclass(frozen=True)
class BenchScenario:
    """One reproducible emulation whose wall time we track."""

    name: str
    description: str
    platform: str = "zcu102"
    config: str = "3C+2F"
    policy: str = "frfs"
    #: "validation" (apps at t=0) or "table_ii" (performance mode)
    mode: str = "validation"
    apps: tuple[tuple[str, int], ...] = ()
    quick_apps: tuple[tuple[str, int], ...] = ()
    rate: float = 0.0
    quick_rate: float = 0.0
    seed: int = 7
    jitter: bool = True

    def workload(self, *, quick: bool = False):
        if self.mode == "table_ii":
            from repro.experiments.workloads import table_ii_workload

            rate = self.quick_rate if quick and self.quick_rate else self.rate
            return table_ii_workload(rate)
        from repro.runtime.workload import validation_workload

        apps = self.quick_apps if quick and self.quick_apps else self.apps
        return validation_workload(dict(apps))

    def build_emulation(self):
        from repro.hardware.platform import odroid_xu3, zcu102
        from repro.runtime.emulation import Emulation

        platform = zcu102() if self.platform == "zcu102" else odroid_xu3()
        return Emulation(
            platform=platform,
            config=self.config,
            policy=self.policy,
            materialize_memory=False,
            jitter=self.jitter,
            seed=self.seed,
        )

    def run_once(self, *, quick: bool = False) -> dict:
        """Execute once; only the emulation phase itself is timed.

        Workload construction and session setup (the paper's
        initialization phase) are excluded from the clock so the number
        tracks the DES hot loop, not JSON parsing.
        """
        from repro.runtime.backends.virtual import VirtualBackend

        emu = self.build_emulation()
        workload = self.workload(quick=quick)
        session = emu.build_session(workload)
        backend = VirtualBackend()
        t0 = time.perf_counter()
        stats = backend.run(session)
        wall_s = time.perf_counter() - t0
        info = backend.last_run_info or {}
        return {
            "wall_s": wall_s,
            "events": info.get("events_fired", 0),
            "tasks": stats.task_count,
            "apps": stats.apps_completed,
            "makespan_ms": round(stats.makespan / 1000.0, 4),
            "sched_invocations": stats.sched_invocations,
        }

    def spec(self, *, quick: bool = False) -> dict:
        """The scenario's identity, embedded in every report."""
        doc: dict = {
            "description": self.description,
            "platform": self.platform,
            "config": self.config,
            "policy": self.policy,
            "mode": self.mode,
            "seed": self.seed,
            "jitter": self.jitter,
        }
        if self.mode == "table_ii":
            doc["rate"] = (
                self.quick_rate if quick and self.quick_rate else self.rate
            )
        else:
            apps = self.quick_apps if quick and self.quick_apps else self.apps
            doc["apps"] = dict(apps)
        return doc


SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="validation-burst",
        description="t=0 burst of mixed SDR apps, FRFS on 3C+2F",
        policy="frfs",
        apps=(("range_detection", 8), ("wifi_tx", 6), ("wifi_rx", 4)),
        quick_apps=(("range_detection", 3), ("wifi_tx", 2)),
    ),
    BenchScenario(
        name="steady-state",
        description="performance-mode Table II trace at 4.57 jobs/ms, FRFS",
        policy="frfs",
        mode="table_ii",
        rate=4.57,
        quick_rate=1.71,
        jitter=False,
    ),
    BenchScenario(
        name="scheduler-stress",
        description="long ready queues under EFT (O(ready x PEs) policy)",
        policy="eft",
        apps=(("range_detection", 20), ("wifi_tx", 15), ("pulse_doppler", 5)),
        quick_apps=(("range_detection", 8), ("wifi_tx", 6),
                    ("pulse_doppler", 1)),
    ),
    BenchScenario(
        name="accel-heavy",
        description="FFT-bound apps on 2C+2F (DMA + core contention)",
        config="2C+2F",
        policy="frfs",
        apps=(("range_detection", 12), ("pulse_doppler", 3)),
        quick_apps=(("range_detection", 4), ("pulse_doppler", 1)),
    ),
)

_BY_NAME = {s.name: s for s in SCENARIOS}


def scenario_names() -> list[str]:
    return [s.name for s in SCENARIOS]


def get_scenario(name: str) -> BenchScenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown bench scenario {name!r} (available: {scenario_names()})"
        ) from None
