"""Canonical benchmark scenarios.

Each scenario fixes one load shape the virtual backend must be fast at:

* ``validation-burst`` — everything arrives at t=0 (the paper's
  validation mode): stresses injection and the dispatch handshake.
* ``steady-state`` — performance-mode Table II workload at a sustained
  injection rate: stresses the workload-manager wait/wake loop.
* ``scheduler-stress`` — a large t=0 burst under EFT so the ready queue
  stays long: stresses the O(ready × PEs) policy path and the ready-list
  data structure.
* ``accel-heavy`` — FFT-bound applications on a 2C+2F DSSoC: stresses
  the accelerator DMA/compute path and host-core contention (the Fig. 9
  preemption mechanism).

The serving family (``SERVING_SCENARIOS``) exercises the streaming
open-loop path — apps built lazily at injection, released at completion,
streaming stats — so the tracked numbers include peak RSS:

* ``serving-openloop`` — sustained Poisson arrivals of mixed SDR apps
  near platform capacity.
* ``serving-flashcrowd`` — a flash crowd over a steady baseline, with
  QoS deadlines, bounded admission (drop-newest), and ``+edf``.
* ``serving-openloop-100k`` / ``serving-openloop-1m`` — the memory
  scaling pair: 10^5 vs 10^6 injected apps at the same offered load;
  constant-memory injection means their peak RSS must be about equal.

The lookahead family (``LOOKAHEAD_SCENARIOS``, also opt-in by name)
reruns the scheduler-stress and serving-openloop load shapes under the
lookahead policies, timing the cprank rank cache and the rollout
forward simulator under long ready queues.

Scenarios are deterministic (fixed seed, fixed workload) so that two
reports from the same commit agree and cross-commit deltas mean code,
not luck.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.common.errors import ReproError


@dataclass(frozen=True)
class BenchScenario:
    """One reproducible emulation whose wall time we track."""

    name: str
    description: str
    platform: str = "zcu102"
    config: str = "3C+2F"
    policy: str = "frfs"
    #: "validation" (apps at t=0), "table_ii" (performance mode), or
    #: "openloop" (streaming arrivals, lazy injection)
    mode: str = "validation"
    apps: tuple[tuple[str, int], ...] = ()
    quick_apps: tuple[tuple[str, int], ...] = ()
    rate: float = 0.0
    quick_rate: float = 0.0
    #: openloop mode: ArrivalSpec dict forms (see runtime.workload)
    arrivals: dict = field(default_factory=dict)
    quick_arrivals: dict = field(default_factory=dict)
    #: openloop mode: QoS spec dict (admission/deadlines), or empty
    qos: dict = field(default_factory=dict)
    seed: int = 7
    jitter: bool = True

    def workload(self, *, quick: bool = False):
        if self.mode == "table_ii":
            from repro.experiments.workloads import table_ii_workload

            rate = self.quick_rate if quick and self.quick_rate else self.rate
            return table_ii_workload(rate)
        if self.mode == "openloop":
            from repro.runtime.workload import ArrivalSpec

            arrivals = (
                self.quick_arrivals
                if quick and self.quick_arrivals
                else self.arrivals
            )
            return ArrivalSpec.from_dict(arrivals).build()
        from repro.runtime.workload import validation_workload

        apps = self.quick_apps if quick and self.quick_apps else self.apps
        return validation_workload(dict(apps))

    def build_emulation(self):
        from repro.hardware.platform import odroid_xu3, zcu102
        from repro.runtime.emulation import Emulation

        platform = zcu102() if self.platform == "zcu102" else odroid_xu3()
        return Emulation(
            platform=platform,
            config=self.config,
            policy=self.policy,
            materialize_memory=False,
            jitter=self.jitter,
            seed=self.seed,
            qos=dict(self.qos) if self.qos else None,
        )

    def run_once(self, *, quick: bool = False) -> dict:
        """Execute once; only the emulation phase itself is timed.

        Workload construction and session setup (the paper's
        initialization phase) are excluded from the clock so the number
        tracks the DES hot loop, not JSON parsing.  Peak RSS, in
        contrast, covers workload construction too — materialized-list
        memory is exactly what the streaming path exists to avoid, so it
        must not be excluded from the measurement.
        """
        from repro.perf.rss import peak_rss_bytes, reset_peak_rss
        from repro.runtime.backends.virtual import VirtualBackend

        emu = self.build_emulation()
        reset_peak_rss()
        workload = self.workload(quick=quick)
        session = emu.build_session(workload)
        backend = VirtualBackend()
        t0 = time.perf_counter()
        stats = backend.run(session)
        wall_s = time.perf_counter() - t0
        peak_rss = peak_rss_bytes()
        info = backend.last_run_info or {}
        return {
            "wall_s": wall_s,
            "events": info.get("events_fired", 0),
            "tasks": stats.task_count,
            "apps": stats.apps_completed,
            "apps_injected": stats.apps_injected,
            "apps_degraded": stats.apps_degraded,
            "apps_dropped": stats.apps_dropped,
            "makespan_ms": round(stats.makespan / 1000.0, 4),
            "sched_invocations": stats.sched_invocations,
            "peak_rss_bytes": peak_rss,
        }

    def spec(self, *, quick: bool = False) -> dict:
        """The scenario's identity, embedded in every report."""
        doc: dict = {
            "description": self.description,
            "platform": self.platform,
            "config": self.config,
            "policy": self.policy,
            "mode": self.mode,
            "seed": self.seed,
            "jitter": self.jitter,
        }
        if self.mode == "table_ii":
            doc["rate"] = (
                self.quick_rate if quick and self.quick_rate else self.rate
            )
        elif self.mode == "openloop":
            doc["arrivals"] = dict(
                self.quick_arrivals
                if quick and self.quick_arrivals
                else self.arrivals
            )
            if self.qos:
                doc["qos"] = dict(self.qos)
        else:
            apps = self.quick_apps if quick and self.quick_apps else self.apps
            doc["apps"] = dict(apps)
        return doc


SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="validation-burst",
        description="t=0 burst of mixed SDR apps, FRFS on 3C+2F",
        policy="frfs",
        apps=(("range_detection", 8), ("wifi_tx", 6), ("wifi_rx", 4)),
        quick_apps=(("range_detection", 3), ("wifi_tx", 2)),
    ),
    BenchScenario(
        name="steady-state",
        description="performance-mode Table II trace at 4.57 jobs/ms, FRFS",
        policy="frfs",
        mode="table_ii",
        rate=4.57,
        quick_rate=1.71,
        jitter=False,
    ),
    BenchScenario(
        name="scheduler-stress",
        description="long ready queues under EFT (O(ready x PEs) policy)",
        policy="eft",
        apps=(("range_detection", 20), ("wifi_tx", 15), ("pulse_doppler", 5)),
        quick_apps=(("range_detection", 8), ("wifi_tx", 6),
                    ("pulse_doppler", 1)),
    ),
    BenchScenario(
        name="accel-heavy",
        description="FFT-bound apps on 2C+2F (DMA + core contention)",
        config="2C+2F",
        policy="frfs",
        apps=(("range_detection", 12), ("pulse_doppler", 3)),
        quick_apps=(("range_detection", 4), ("pulse_doppler", 1)),
    ),
)

_SDR_MIX = {"range_detection": 2.0, "wifi_tx": 1.0, "wifi_rx": 1.0}

SERVING_SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="serving-openloop",
        description="sustained Poisson open-loop near capacity, EFT",
        policy="eft",
        mode="openloop",
        arrivals={"kind": "poisson", "rate_per_ms": 3.5, "apps": _SDR_MIX,
                  "duration_ms": 1500.0, "seed": 42},
        quick_arrivals={"kind": "poisson", "rate_per_ms": 1.5,
                        "apps": _SDR_MIX, "duration_ms": 200.0, "seed": 42},
    ),
    BenchScenario(
        name="serving-flashcrowd",
        description="flash crowd over steady baseline; QoS admission + EDF",
        policy="eft+edf",
        mode="openloop",
        arrivals={"kind": "bursty", "rate_per_ms": 1.0, "apps": _SDR_MIX,
                  "bursts": [[400.0, 150.0, 10.0], [900.0, 100.0, 8.0]],
                  "duration_ms": 1500.0, "seed": 17},
        quick_arrivals={"kind": "bursty", "rate_per_ms": 0.5,
                        "apps": _SDR_MIX,
                        "bursts": [[50.0, 50.0, 8.0]],
                        "duration_ms": 250.0, "seed": 17},
        qos={"deadlines": {"*": 2000.0},
             "admission": {"max_pending": 64, "policy": "drop-newest"}},
    ),
    BenchScenario(
        name="serving-openloop-100k",
        description="10^5 apps at 4/ms (memory-scaling pair, small half)",
        policy="frfs",
        mode="openloop",
        arrivals={"kind": "poisson", "rate_per_ms": 4.0,
                  "apps": {"range_detection": 1.0},
                  "max_apps": 100_000, "seed": 42},
        quick_arrivals={"kind": "poisson", "rate_per_ms": 4.0,
                        "apps": {"range_detection": 1.0},
                        "max_apps": 2_000, "seed": 42},
    ),
    BenchScenario(
        name="serving-openloop-1m",
        description="10^6 apps at 4/ms (memory-scaling pair, large half)",
        policy="frfs",
        mode="openloop",
        arrivals={"kind": "poisson", "rate_per_ms": 4.0,
                  "apps": {"range_detection": 1.0},
                  "max_apps": 1_000_000, "seed": 42},
        quick_arrivals={"kind": "poisson", "rate_per_ms": 4.0,
                        "apps": {"range_detection": 1.0},
                        "max_apps": 10_000, "seed": 42},
    ),
)

#: Lookahead-policy stress pair (opt-in by name, like the serving family):
#: the same load shapes as ``scheduler-stress``/``serving-openloop`` but
#: under the lookahead policies, so regressions in the rank cache
#: (cprank) or the rollout simulator show up as wall-time deltas rather
#: than only as scheduling-overhead stats inside an emulation report.
LOOKAHEAD_SCENARIOS: tuple[BenchScenario, ...] = (
    BenchScenario(
        name="lookahead-cprank",
        description="long ready queues under cprank (rank cache + repair)",
        policy="cprank",
        apps=(("range_detection", 20), ("wifi_tx", 15), ("pulse_doppler", 5)),
        quick_apps=(("range_detection", 8), ("wifi_tx", 6),
                    ("pulse_doppler", 1)),
    ),
    BenchScenario(
        name="lookahead-rollout",
        description="sustained Poisson open-loop under rollout lookahead",
        policy="rollout",
        mode="openloop",
        arrivals={"kind": "poisson", "rate_per_ms": 3.5, "apps": _SDR_MIX,
                  "duration_ms": 1500.0, "seed": 42},
        quick_arrivals={"kind": "poisson", "rate_per_ms": 1.5,
                        "apps": _SDR_MIX, "duration_ms": 200.0, "seed": 42},
    ),
)

_BY_NAME = {s.name: s for s in SCENARIOS}
_BY_NAME.update({s.name: s for s in SERVING_SCENARIOS})
_BY_NAME.update({s.name: s for s in LOOKAHEAD_SCENARIOS})


def scenario_names() -> list[str]:
    """The default suite (serving scenarios are opt-in by name)."""
    return [s.name for s in SCENARIOS]


def all_scenario_names() -> list[str]:
    return list(_BY_NAME)


def get_scenario(name: str) -> BenchScenario:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown bench scenario {name!r} "
            f"(available: {all_scenario_names()})"
        ) from None
