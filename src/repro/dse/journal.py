"""Append-only JSONL campaign journal with crash-resume replay.

Every campaign event — start, per-cell start/finish/error/cache-hit,
end — is one JSON line, flushed as written.  A campaign killed mid-flight
leaves a journal whose replay identifies exactly which cells completed;
``run_campaign(..., resume=True)`` re-queues only the rest.

The reader is deliberately tolerant: a process killed mid-``write`` can
leave a truncated final line, which replay skips rather than failing,
and unknown event types are ignored so journals stay forward-compatible.

Large campaigns resume through an *index* sidecar (``journal.jsonl.idx``):
a snapshot of the folded :class:`JournalState` plus the byte offset it
covers.  :func:`replay_indexed` seeks past the indexed prefix and folds
only the tail, so resuming a million-cell campaign does not re-read (and
re-parse) the whole journal every time.  The index is advisory — when
missing, stale, or disagreeing with the journal head it is ignored and a
full replay rebuilds it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

from repro.common.retry import FS_RETRY, is_transient_oserror

EVENT_CAMPAIGN_START = "campaign_start"
EVENT_CAMPAIGN_END = "campaign_end"
EVENT_CELL_START = "cell_start"
EVENT_CELL_FINISH = "cell_finish"
EVENT_CELL_ERROR = "cell_error"
EVENT_CELL_CACHED = "cell_cached"
EVENT_CELL_INTERRUPTED = "cell_interrupted"
EVENT_LEASE_EXPIRED = "lease_expired"

#: Events that resolve a cell as completed.
_COMPLETING = (EVENT_CELL_FINISH, EVENT_CELL_CACHED)

#: Bumped when the index sidecar layout changes; other versions are ignored.
INDEX_VERSION = 1

#: Bytes of the journal head stored in the index to detect a journal that
#: was truncated and rewritten underneath its sidecar.
_HEAD_PROBE = 96


class Journal:
    """Append-only event writer (one JSON object per line)."""

    def __init__(self, path: str | Path, *, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            _repair_torn_tail(self.path)
        mode = "a" if resume else "w"
        self._fh: IO[str] | None = open(self.path, mode, encoding="utf-8")
        self._seq = 0

    def append(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._seq += 1
        record = {
            "event": event,
            "seq": self._seq,
            "ts": round(time.time(), 3),
            **fields,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        try:
            self._fh.write(line)
            self._fh.flush()
        except OSError as exc:
            if not is_transient_oserror(exc):
                raise
            self._retry_append(line)

    def _retry_append(self, line: str) -> None:
        """Recover an append hit by a transient filesystem hiccup.

        ``EINTR``/``ESTALE``/``EAGAIN`` (NFS remounts, interrupted
        syscalls) can leave the stream handle poisoned and the file with
        a torn partial line, so each retry reopens the journal after
        isolating any torn tail.  Replay skips torn fragments, and
        completed-set folding is idempotent, so the rare double-written
        line is harmless — losing the event is the only real failure.
        """

        def attempt() -> None:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
            _repair_torn_tail(self.path)
            self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

        FS_RETRY.call(attempt)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> Journal:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def _repair_torn_tail(path: Path) -> None:
    """Terminate a torn final line before appending after a crash.

    A process killed mid-``write`` can leave the journal without a final
    newline; appending straight after it would glue the next record onto
    the torn fragment and lose *both* lines.  A lone newline keeps the
    fragment isolated (replay already skips unparseable lines).
    """
    try:
        with open(path, "rb+") as fh:
            fh.seek(0, os.SEEK_END)
            size = fh.tell()
            if size == 0:
                return
            fh.seek(size - 1)
            if fh.read(1) != b"\n":
                fh.write(b"\n")
    except FileNotFoundError:
        pass


@dataclass
class JournalState:
    """Replay of a journal: where a (possibly crashed) campaign got to."""

    completed: set[str] = field(default_factory=set)
    errored: dict[str, int] = field(default_factory=dict)
    started: set[str] = field(default_factory=set)
    interrupted: set[str] = field(default_factory=set)
    events: int = 0
    #: byte offset of the last fully-parsed line (what an index may skip to)
    offset: int = 0

    @property
    def incomplete(self) -> set[str]:
        """Cells that started (or errored/interrupted) but never finished."""
        return (
            self.started | set(self.errored) | self.interrupted
        ) - self.completed

    def fold(self, record: dict[str, Any]) -> None:
        """Fold one journal event into the state."""
        self.events += 1
        cell_id = record.get("cell_id")
        if not cell_id:
            return
        event = record["event"]
        if event == EVENT_CELL_START:
            self.started.add(cell_id)
        elif event in _COMPLETING:
            self.completed.add(cell_id)
        elif event == EVENT_CELL_ERROR:
            self.errored[cell_id] = self.errored.get(cell_id, 0) + 1
        elif event == EVENT_CELL_INTERRUPTED:
            # Interrupted cells stay incomplete: --resume re-runs them.
            self.interrupted.add(cell_id)


def read_events_from(
    path: str | Path, offset: int = 0
) -> tuple[list[dict[str, Any]], int]:
    """Parseable events at/after ``offset``, plus the offset consumed.

    Only newline-terminated lines count toward the returned offset, so a
    torn tail (crash mid-write) is neither parsed nor consumed — a later
    call resumes exactly where this one stopped.
    """
    events: list[dict[str, Any]] = []
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            consumed = offset
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn tail — leave it for the next reader
                consumed += len(raw)
                line = raw.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue  # torn write from a crash — ignore
                if isinstance(record, dict) and "event" in record:
                    events.append(record)
    except FileNotFoundError:
        return [], offset
    return events, consumed


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """All parseable events in the journal; a truncated tail is skipped."""
    events, _offset = read_events_from(path, 0)
    return events


def replay(path: str | Path) -> JournalState:
    """Fold the whole journal into the completed/incomplete cell sets."""
    state = JournalState()
    events, offset = read_events_from(path, 0)
    for record in events:
        state.fold(record)
    state.offset = offset
    return state


# -- index sidecar ---------------------------------------------------------------


def index_path(path: str | Path) -> Path:
    path = Path(path)
    return path.with_name(path.name + ".idx")


def _journal_head(path: Path) -> str:
    try:
        with open(path, "rb") as fh:
            return fh.read(_HEAD_PROBE).decode("utf-8", "replace")
    except FileNotFoundError:
        return ""


def write_index(path: str | Path, state: JournalState) -> Path:
    """Atomically persist a replay snapshot next to the journal."""
    path = Path(path)
    idx = index_path(path)
    doc = {
        "version": INDEX_VERSION,
        "offset": state.offset,
        "head": _journal_head(path),
        "events": state.events,
        "completed": sorted(state.completed),
        "errored": state.errored,
        "started": sorted(state.started),
        "interrupted": sorted(state.interrupted),
    }
    tmp = idx.with_name(idx.name + f".{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    os.replace(tmp, idx)
    return idx


def _load_index(path: Path) -> JournalState | None:
    """The indexed prefix state, or None when absent/stale/untrusted."""
    try:
        with open(index_path(path), encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(doc, dict) or doc.get("version") != INDEX_VERSION:
        return None
    try:
        offset = int(doc["offset"])
        if offset < 0 or offset > path.stat().st_size:
            return None  # journal shrank: it was truncated/rewritten
        head = str(doc["head"])
        if head != _journal_head(path)[: len(head)]:
            return None  # different journal under the same name
        return JournalState(
            completed=set(doc["completed"]),
            errored={str(k): int(v) for k, v in doc["errored"].items()},
            started=set(doc["started"]),
            interrupted=set(doc["interrupted"]),
            events=int(doc["events"]),
            offset=offset,
        )
    except (KeyError, TypeError, ValueError, OSError):
        return None


def replay_indexed(path: str | Path, *, write: bool = True) -> JournalState:
    """Like :func:`replay` but seeded from the index sidecar when valid.

    Only the journal tail past the indexed offset is read; the refreshed
    snapshot is written back (``write=False`` for read-only callers such
    as ``sweep --status`` on another host's campaign directory).
    """
    path = Path(path)
    state = _load_index(path) or JournalState()
    events, offset = read_events_from(path, state.offset)
    for record in events:
        state.fold(record)
    state.offset = offset
    if write and (events or state.events == 0):
        try:
            write_index(path, state)
        except OSError:
            pass  # a read-only campaign dir only costs the fast path
    return state
