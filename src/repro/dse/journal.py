"""Append-only JSONL campaign journal with crash-resume replay.

Every campaign event — start, per-cell start/finish/error/cache-hit,
end — is one JSON line, flushed as written.  A campaign killed mid-flight
leaves a journal whose replay identifies exactly which cells completed;
``run_campaign(..., resume=True)`` re-queues only the rest.

The reader is deliberately tolerant: a process killed mid-``write`` can
leave a truncated final line, which replay skips rather than failing,
and unknown event types are ignored so journals stay forward-compatible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, IO

EVENT_CAMPAIGN_START = "campaign_start"
EVENT_CAMPAIGN_END = "campaign_end"
EVENT_CELL_START = "cell_start"
EVENT_CELL_FINISH = "cell_finish"
EVENT_CELL_ERROR = "cell_error"
EVENT_CELL_CACHED = "cell_cached"
EVENT_CELL_INTERRUPTED = "cell_interrupted"


class Journal:
    """Append-only event writer (one JSON object per line)."""

    def __init__(self, path: str | Path, *, resume: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume else "w"
        self._fh: IO[str] | None = open(self.path, mode, encoding="utf-8")
        self._seq = 0

    def append(self, event: str, **fields: Any) -> None:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._seq += 1
        record = {"event": event, "seq": self._seq, **fields}
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> Journal:
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


@dataclass
class JournalState:
    """Replay of a journal: where a (possibly crashed) campaign got to."""

    completed: set[str] = field(default_factory=set)
    errored: dict[str, int] = field(default_factory=dict)
    started: set[str] = field(default_factory=set)
    interrupted: set[str] = field(default_factory=set)
    events: int = 0

    @property
    def incomplete(self) -> set[str]:
        """Cells that started (or errored/interrupted) but never finished."""
        return (
            self.started | set(self.errored) | self.interrupted
        ) - self.completed


def read_events(path: str | Path) -> list[dict[str, Any]]:
    """All parseable events in the journal; a truncated tail is skipped."""
    events: list[dict[str, Any]] = []
    try:
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crash — ignore
                if isinstance(record, dict) and "event" in record:
                    events.append(record)
    except FileNotFoundError:
        return []
    return events


def replay(path: str | Path) -> JournalState:
    """Fold the journal into the completed/incomplete cell sets."""
    state = JournalState()
    for record in read_events(path):
        state.events += 1
        cell_id = record.get("cell_id")
        event = record["event"]
        if not cell_id:
            continue
        if event == EVENT_CELL_START:
            state.started.add(cell_id)
        elif event in (EVENT_CELL_FINISH, EVENT_CELL_CACHED):
            state.completed.add(cell_id)
        elif event == EVENT_CELL_ERROR:
            state.errored[cell_id] = state.errored.get(cell_id, 0) + 1
        elif event == EVENT_CELL_INTERRUPTED:
            # Interrupted cells stay incomplete: --resume re-runs them.
            state.interrupted.add(cell_id)
    return state
