"""Distributed sweep coordinator: partition, monitor, merge, conclude.

The coordinator owns the *campaign* while workers own *cells*:

1. expands the grid and publishes the durable manifest (the work queue);
2. runs the same cache pass a single-process campaign runs, journaling
   ``cell_cached`` for every cell already resolved on disk;
3. optionally spawns N local worker processes (any number of additional
   workers may attach from other hosts via ``sweep-worker --out DIR``);
4. periodically merges per-worker journal shards into the canonical
   ``journal.jsonl`` — exactly-once per resolution, with byte offsets of
   the merged prefix persisted so a killed coordinator never re-merges
   or loses events on ``--resume``;
5. watches worker heartbeats and processes, streaming a live status
   line (cells/sec, ETA, worker health, cache hit rate);
6. on completion writes ``results.json``/frontier inputs identical in
   shape to a single-process campaign (modulo worker attribution).

Killing the coordinator mid-flight loses nothing: workers keep draining
the queue (results land in shards + shared cache), and a resumed
coordinator folds it all back together.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro.dse import journal as journal_mod
from repro.dse.cache import ResultCache
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    DistribError,
    WorkQueue,
    _atomic_write_json,
    _read_json,
    write_manifest,
)
from repro.dse.grid import SweepCell, SweepGrid
from repro.dse.journal import Journal, JournalState
from repro.dse.runner import CampaignResult, CellResult, ProgressFn

#: Shard fields copied verbatim into the canonical journal on merge.
_MERGE_DROP = ("event", "seq", "ts")


class ShardMerger:
    """Exactly-once folding of worker journal shards into the canonical log.

    Byte offsets of each shard's merged prefix live in
    ``distrib/merge_state.json`` (written atomically after every merge),
    so a coordinator killed between merges re-reads only unmerged
    suffixes.  Events that would double-resolve a cell — two finishes
    after a lease was re-issued to a second worker just as the first
    woke back up — are dropped here, which is what makes "no
    double-counted results" hold end to end.
    """

    def __init__(
        self, queue: WorkQueue, journal: Journal, state: JournalState
    ) -> None:
        self.queue = queue
        self.journal = journal
        self.state = state
        self.path = queue.root / "merge_state.json"
        doc = _read_json(self.path)
        self.offsets: dict[str, int] = (
            {str(k): int(v) for k, v in doc.items()}
            if isinstance(doc, dict)
            else {}
        )

    def merge(self) -> int:
        """Fold all new shard events into the canonical journal."""
        fresh: list[tuple[float, int, str, dict[str, Any]]] = []
        advanced = False
        for shard in self.queue.shard_paths():
            name = shard.stem
            offset = self.offsets.get(name, 0)
            events, consumed = journal_mod.read_events_from(shard, offset)
            if consumed != offset:
                self.offsets[name] = consumed
                advanced = True
            for event in events:
                fresh.append(
                    (float(event.get("ts", 0.0)), int(event.get("seq", 0)),
                     name, event)
                )
        merged = 0
        for _ts, _seq, name, event in sorted(fresh, key=lambda t: t[:3]):
            kind = event["event"]
            cell_id = event.get("cell_id")
            if cell_id and kind in (
                journal_mod.EVENT_CELL_FINISH,
                journal_mod.EVENT_CELL_CACHED,
            ):
                if cell_id in self.state.completed:
                    continue  # duplicate resolution (lease re-issue race)
            fields = {
                k: v for k, v in event.items() if k not in _MERGE_DROP
            }
            fields.setdefault("worker", name)
            self.journal.append(kind, **fields)
            self.state.fold({"event": kind, **fields})
            merged += 1
        if advanced:
            _atomic_write_json(self.path, self.offsets)
        return merged


def _spawn_worker(
    out_dir: Path | None,
    worker_id: str,
    *,
    lease_ttl_s: float,
    poll_s: float,
    server: str | None = None,
    spool_dir: Path | None = None,
) -> subprocess.Popen:
    """Start one local worker process (directory- or server-attached)."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src_root + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src_root
    )
    cmd = [
        sys.executable, "-m", "repro.cli", "sweep-worker",
        "--worker-id", worker_id,
        "--lease-ttl", str(lease_ttl_s),
        "--poll", str(poll_s),
    ]
    if server is not None:
        cmd += ["--server", server]
        if spool_dir is not None:
            cmd += ["--spool", str(spool_dir)]
    else:
        assert out_dir is not None
        cmd += ["--out", str(out_dir)]
    # Workers narrate to stderr; their stdout JSON summary would
    # otherwise interleave with the coordinator's own --json document.
    return subprocess.Popen(cmd, env=env, stdout=subprocess.DEVNULL)


def _clear_distrib_state(queue: WorkQueue) -> None:
    """Reset queue state for a fresh (non-resume) campaign; keeps the cache."""
    queue.clear_stop()
    for directory in (
        queue.leases.root, queue.journals_dir, queue.workers_dir,
        queue.failed_dir,
    ):
        for path in directory.iterdir():
            try:
                path.unlink()
            except OSError:
                pass
    try:
        (queue.root / "merge_state.json").unlink()
    except OSError:
        pass


def run_distributed_campaign(
    grid: SweepGrid | Iterable[SweepCell],
    out_dir: str | Path,
    *,
    workers: int = 1,
    resume: bool = False,
    force: bool = False,
    retries: int = 1,
    timeout_s: float | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.5,
    status_interval_s: float = 5.0,
    progress: ProgressFn | None = None,
    status_fn=None,
    worker_grace_s: float = 15.0,
) -> CampaignResult:
    """Run a campaign through the distributed service; see module docstring.

    ``workers=0`` coordinates without spawning: external workers attached
    via ``sweep-worker`` (possibly on other hosts) drain the queue.  The
    returned :class:`CampaignResult` matches ``run_campaign``'s — same
    row schema, same frontier inputs — so analysis code cannot tell the
    difference.
    """
    if isinstance(grid, SweepGrid):
        cells = grid.expand()
        grid_id = grid.grid_id
    else:
        cells = list(grid)
        grid_id = f"adhoc-{len(cells)}"
    by_id: dict[str, SweepCell] = {}
    for cell in cells:
        by_id.setdefault(cell.cell_id, cell)

    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    t_start = time.monotonic()
    max_attempts = 1 + max(0, int(retries))

    queue = WorkQueue(out_path, owner="coordinator", lease_ttl_s=lease_ttl_s)
    if not resume:
        _clear_distrib_state(queue)
    queue.clear_stop()
    write_manifest(
        out_path, list(by_id.values()), grid_id=grid_id,
        max_attempts=max_attempts, timeout_s=timeout_s,
        lease_ttl_s=lease_ttl_s,
    )

    cache = ResultCache(out_path / "cache")
    journal_path = out_path / "journal.jsonl"
    state = (
        journal_mod.replay_indexed(journal_path)
        if resume
        else JournalState()
    )
    journal = Journal(journal_path, resume=resume)
    journal.append(
        journal_mod.EVENT_CAMPAIGN_START,
        cells=len(cells),
        resume=resume,
        distributed=True,
        workers=workers,
        prior_completed=len(state.completed),
        prior_incomplete=len(state.incomplete),
    )
    merger = ShardMerger(queue, journal, state)

    done_count = 0
    total = len(by_id)

    def report(result: CellResult) -> None:
        nonlocal done_count
        done_count += 1
        if progress is not None:
            progress(done_count, total, result)

    # Cache pass — identical semantics to the single-process runner: cells
    # already on disk (including ones a prior interrupted run completed)
    # are journaled as cache hits, never queued.
    resolution: dict[str, str] = {}  # cell_id -> "cached" | "finish" | "error"
    for cell_id, cell in by_id.items():
        if cell_id in resolution:
            continue
        if force:
            cache.discard(cell_id)
            continue
        hit = cache.get(cell_id)
        if hit is not None:
            journal.append(
                journal_mod.EVENT_CELL_CACHED,
                cell_id=cell_id,
                label=cell.label,
                worker="coordinator",
                attempts=0,
            )
            state.fold({"event": journal_mod.EVENT_CELL_CACHED,
                        "cell_id": cell_id})
            resolution[cell_id] = "cached"
            report(CellResult(cell, "ok", hit, cached=True))

    procs: dict[str, subprocess.Popen] = {}
    embedded: threading.Thread | None = None
    embedded_error: list[BaseException] = []
    interrupted = False
    try:
        for i in range(max(0, workers)):
            worker_id = f"w{i + 1}"
            procs[worker_id] = _spawn_worker(
                out_path, worker_id,
                lease_ttl_s=lease_ttl_s, poll_s=poll_s,
            )
        if workers == 0 and len(resolution) < total:
            # Coordinate-only mode with no one attached yet: work the
            # queue ourselves so the campaign always makes progress.
            # External workers can still join and share the load.
            from repro.dse.distrib.worker import run_worker

            def _embedded_worker() -> None:
                try:
                    run_worker(
                        out_path, worker_id="w0-embedded",
                        lease_ttl_s=lease_ttl_s, poll_s=poll_s,
                    )
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    embedded_error.append(exc)

            embedded = threading.Thread(
                target=_embedded_worker, name="embedded-worker", daemon=True
            )
            embedded.start()

        last_status = 0.0
        while True:
            merger.merge()
            # Surface newly-resolved cells to the progress callback.
            for cell_id in state.completed:
                if cell_id in by_id and cell_id not in resolution:
                    resolution[cell_id] = "finish"
                    metrics = cache.get(cell_id)
                    report(CellResult(by_id[cell_id], "ok", metrics))
            failed_final = queue.failed_final()
            for cell_id in failed_final:
                if cell_id in by_id and cell_id not in resolution:
                    resolution[cell_id] = "error"
                    record = failed_final[cell_id]
                    report(CellResult(
                        by_id[cell_id], "error",
                        error=(record.get("errors") or ["?"])[-1],
                        attempts=int(record.get("attempts", 1)),
                    ))
            if len(resolution) >= total:
                break

            now = time.monotonic()
            if status_fn is not None and now - last_status >= status_interval_s:
                last_status = now
                from repro.dse.distrib.status import campaign_snapshot

                status_fn(campaign_snapshot(out_path))

            # Liveness: reap exited spawned workers; a fleet that is
            # entirely dead with work outstanding cannot finish.
            for worker_id, proc in list(procs.items()):
                if proc.poll() is not None:
                    del procs[worker_id]
            if embedded is not None and not embedded.is_alive():
                if embedded_error:
                    raise DistribError(
                        f"embedded worker died: {embedded_error[0]}"
                    ) from embedded_error[0]
                embedded = None
            fleet_dead = not procs and embedded is None
            if fleet_dead:
                statuses = queue.worker_statuses()
                fresh = [
                    s for s in statuses.values()
                    if time.time() - float(s.get("ts", 0)) < 3 * lease_ttl_s
                    and s.get("state") not in ("done", "stop_requested")
                ]
                if workers > 0 and not fresh:
                    merger.merge()
                    raise DistribError(
                        f"all workers exited with "
                        f"{total - len(resolution)} cells unresolved — "
                        "check worker logs, then re-run with --resume"
                    )
            time.sleep(poll_s)
    except (KeyboardInterrupt, Exception):
        interrupted = True
        raise
    finally:
        queue.request_stop()
        deadline = time.monotonic() + worker_grace_s
        if embedded is not None:
            embedded.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        try:
            merger.merge()
        except OSError:
            pass
        end_fields: dict[str, Any] = {
            "cells": len(cells),
            "completed": len(state.completed & set(by_id)),
            "failed": sum(1 for r in resolution.values() if r == "error"),
        }
        if interrupted:
            end_fields["interrupted"] = True
        journal.append(journal_mod.EVENT_CAMPAIGN_END, **end_fields)
        journal.close()
        try:
            journal_mod.write_index(journal_path, journal_mod.replay(journal_path))
        except OSError:
            pass

    # -- conclude: same result shape as the single-process runner ------------------
    failed_final = queue.failed_final()
    collected: dict[str, CellResult] = {}
    for cell_id, cell in by_id.items():
        kind = resolution.get(cell_id)
        if kind in ("cached", "finish"):
            collected[cell_id] = CellResult(
                cell, "ok", cache.get(cell_id), cached=(kind == "cached")
            )
        else:
            record = failed_final.get(cell_id) or {}
            collected[cell_id] = CellResult(
                cell, "error",
                error=(record.get("errors") or ["unresolved"])[-1],
                attempts=int(record.get("attempts", 1)),
            )
    results = [collected[cell.cell_id] for cell in cells]
    campaign = CampaignResult(
        results=results,
        out_dir=out_path,
        elapsed_s=time.monotonic() - t_start,
    )
    campaign.save(out_path / "results.json")
    return campaign


def run_networked_campaign(
    grid: SweepGrid | Iterable[SweepCell],
    out_dir: str | Path,
    *,
    server: str,
    workers: int = 1,
    resume: bool = False,
    force: bool = False,
    retries: int = 1,
    timeout_s: float | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = 0.5,
    status_interval_s: float = 5.0,
    progress: ProgressFn | None = None,
    status_fn=None,
    worker_grace_s: float = 15.0,
) -> CampaignResult:
    """Run a campaign against a ``sweep-server`` (no shared mount needed).

    The coordinator publishes the grid to the server, optionally spawns N
    local workers attached by ``--server`` (any number more may attach
    from other hosts), polls the server's resolved set, and concludes
    with the same :class:`CampaignResult` shape as every other runner —
    ``results.json`` lands in the *local* ``out_dir``, while the durable
    campaign state (journal, cache, failure records) lives in the
    server's directory.

    The coordinator deliberately outlasts a dead server: a poll that
    cannot reach it just waits and retries — workers spool and reconnect
    on their own — and the loop only aborts once every worker it spawned
    has exited with work still unresolved.
    """
    from repro.dse.distrib.net.client import NetTransport

    if isinstance(grid, SweepGrid):
        cells = grid.expand()
        grid_id = grid.grid_id
    else:
        cells = list(grid)
        grid_id = f"adhoc-{len(cells)}"
    by_id: dict[str, SweepCell] = {}
    for cell in cells:
        by_id.setdefault(cell.cell_id, cell)
    total = len(by_id)

    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    t_start = time.monotonic()
    max_attempts = 1 + max(0, int(retries))

    transport = NetTransport(
        server,
        worker_id="coordinator",
        spool_dir=out_path / "coordinator-spool",
    )
    transport.publish(
        [cell.to_dict() for cell in by_id.values()],
        grid_id=grid_id,
        max_attempts=max_attempts,
        timeout_s=timeout_s,
        lease_ttl_s=lease_ttl_s,
        resume=resume,
    )
    transport.event(
        journal_mod.EVENT_CAMPAIGN_START,
        cells=len(cells),
        resume=resume,
        distributed=True,
        transport="net",
        workers=workers,
    )

    done_count = 0

    def report(result: CellResult) -> None:
        nonlocal done_count
        done_count += 1
        if progress is not None:
            progress(done_count, total, result)

    # Cache pass — server-side, same semantics as every other runner.
    resolution: dict[str, str] = {}  # cell_id -> "cached" | "finish" | "error"
    failed_records: dict[str, dict[str, Any]] = {}
    cached_ids = transport.cache_pass(force=force)
    if cached_ids:
        cached_metrics = transport.fetch(cached_ids)
        for cell_id in cached_ids:
            if cell_id in by_id and cell_id not in resolution:
                resolution[cell_id] = "cached"
                report(CellResult(
                    by_id[cell_id], "ok", cached_metrics.get(cell_id),
                    cached=True,
                ))

    procs: dict[str, subprocess.Popen] = {}
    embedded: threading.Thread | None = None
    embedded_error: list[BaseException] = []
    interrupted = False
    try:
        for i in range(max(0, workers)):
            worker_id = f"w{i + 1}"
            procs[worker_id] = _spawn_worker(
                None, worker_id,
                lease_ttl_s=lease_ttl_s, poll_s=poll_s,
                server=server,
                spool_dir=out_path / f"spool-{worker_id}",
            )
        if workers == 0 and len(resolution) < total:
            from repro.dse.distrib.worker import run_worker

            def _embedded_worker() -> None:
                try:
                    run_worker(
                        transport=NetTransport(
                            server,
                            worker_id="w0-embedded",
                            spool_dir=out_path / "spool-embedded",
                        ),
                        worker_id="w0-embedded",
                        lease_ttl_s=lease_ttl_s, poll_s=poll_s,
                    )
                except BaseException as exc:  # noqa: BLE001 — surfaced below
                    embedded_error.append(exc)

            embedded = threading.Thread(
                target=_embedded_worker, name="embedded-worker", daemon=True
            )
            embedded.start()

        last_status = 0.0
        fleet_dead_since: float | None = None
        while True:
            try:
                completed, failed_records = transport.resolved_snapshot()
            except DistribError:
                # Server unreachable: workers are spooling and
                # reconnecting on their own; keep waiting it out.
                completed, failed_records = set(), {}
            fresh = [
                cell_id for cell_id in sorted(completed)
                if cell_id in by_id and cell_id not in resolution
            ]
            if fresh:
                metrics = transport.fetch(fresh)
                for cell_id in fresh:
                    resolution[cell_id] = "finish"
                    report(CellResult(
                        by_id[cell_id], "ok", metrics.get(cell_id)
                    ))
            for cell_id, record in failed_records.items():
                if cell_id in by_id and cell_id not in resolution:
                    resolution[cell_id] = "error"
                    report(CellResult(
                        by_id[cell_id], "error",
                        error=str(record.get("error", "?")),
                        attempts=int(record.get("attempts", 1)),
                    ))
            if len(resolution) >= total:
                break

            now = time.monotonic()
            if status_fn is not None and now - last_status >= status_interval_s:
                last_status = now
                try:
                    status_fn(transport.status_snapshot())
                except DistribError:
                    pass

            for worker_id, proc in list(procs.items()):
                if proc.poll() is not None:
                    del procs[worker_id]
            if embedded is not None and not embedded.is_alive():
                if embedded_error:
                    raise DistribError(
                        f"embedded worker died: {embedded_error[0]}"
                    ) from embedded_error[0]
                embedded = None
            if workers > 0 and not procs and embedded is None:
                # All workers are gone — but "done" workers exit as soon
                # as the *server* says everything is resolved, and our
                # own view may lag it (especially across a server
                # restart).  Take a fresh authoritative look before
                # declaring the campaign stranded, and give a restarting
                # server a bounded grace window: workers only exit "done"
                # once the server confirmed every cell, so a snapshot
                # failure here is far more likely a restart-in-progress
                # than a lost campaign.
                if fleet_dead_since is None:
                    fleet_dead_since = time.monotonic()
                try:
                    completed, failed_records = transport.resolved_snapshot()
                except DistribError as exc:
                    if time.monotonic() - fleet_dead_since < worker_grace_s:
                        time.sleep(poll_s)
                        continue
                    raise DistribError(
                        f"all workers exited and the server is "
                        f"unreachable with {total - len(resolution)} "
                        "cells unresolved — restart the server and "
                        "re-run with --resume"
                    ) from exc
                unresolved = [
                    cell_id for cell_id in by_id
                    if cell_id not in resolution
                    and cell_id not in completed
                    and cell_id not in failed_records
                ]
                if unresolved:
                    raise DistribError(
                        f"all workers exited with {len(unresolved)} "
                        "cells unresolved — check worker logs and the "
                        "server, then re-run with --resume"
                    )
                continue  # resolved server-side; fold it next pass
            time.sleep(poll_s)
    except (KeyboardInterrupt, Exception):
        interrupted = True
        raise
    finally:
        try:
            transport.request_stop()
        except DistribError:
            pass
        deadline = time.monotonic() + worker_grace_s
        if embedded is not None:
            embedded.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in procs.values():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
        end_fields: dict[str, Any] = {
            "cells": len(cells),
            "completed": sum(
                1 for r in resolution.values() if r in ("cached", "finish")
            ),
            "failed": sum(1 for r in resolution.values() if r == "error"),
        }
        if interrupted:
            end_fields["interrupted"] = True
        try:
            transport.event(journal_mod.EVENT_CAMPAIGN_END, **end_fields)
        except DistribError:
            pass

    # -- conclude: same result shape as the single-process runner ------------------
    resolved_ids = [
        cell_id for cell_id, kind in resolution.items()
        if kind in ("cached", "finish")
    ]
    metrics = transport.fetch(resolved_ids) if resolved_ids else {}
    transport.close()
    collected: dict[str, CellResult] = {}
    for cell_id, cell in by_id.items():
        kind = resolution.get(cell_id)
        if kind in ("cached", "finish"):
            collected[cell_id] = CellResult(
                cell, "ok", metrics.get(cell_id), cached=(kind == "cached")
            )
        else:
            record = failed_records.get(cell_id) or {}
            collected[cell_id] = CellResult(
                cell, "error",
                error=str(record.get("error", "unresolved")),
                attempts=int(record.get("attempts", 1)),
            )
    results = [collected[cell.cell_id] for cell in cells]
    campaign = CampaignResult(
        results=results,
        out_dir=out_path,
        elapsed_s=time.monotonic() - t_start,
    )
    campaign.save(out_path / "results.json")
    return campaign


def merge_once(out_dir: str | Path) -> dict[str, Any]:
    """One offline merge pass (no campaign run): shards -> canonical journal.

    Lets an operator fold completed workers' shards into the canonical
    journal without re-running the coordinator loop — ``sweep --status``
    after this sees the campaign's true state.  Returns a small report.
    """
    out_path = Path(out_dir)
    queue = WorkQueue(out_path, owner="coordinator")
    journal_path = out_path / "journal.jsonl"
    state = journal_mod.replay_indexed(journal_path)
    journal = Journal(journal_path, resume=True)
    merger = ShardMerger(queue, journal, state)
    merged = merger.merge()
    journal.close()
    journal_mod.write_index(journal_path, journal_mod.replay(journal_path))
    return {"merged_events": merged, "completed": len(state.completed)}
