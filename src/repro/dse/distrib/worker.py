"""Distributed sweep worker: claim leases, run cells, journal a shard.

A worker is one independent process attached to a campaign directory.
It needs no coordinator to make progress — the manifest is the work
list, leases arbitrate ownership, the shared cache is the result bus —
so workers can be spawned by ``sweep --workers N`` on the campaign host
or started by hand on any machine that mounts the same filesystem
(``dssoc-emulate sweep-worker --out DIR``).

Health and shutdown reuse the PR 4 QoS watchdog machinery: the worker
carries a :class:`~repro.runtime.qos.QoSController` whose interrupt flag
is set by signal handlers or a ``--wall-budget`` expiry, polled between
cells exactly the way backends poll it between scheduler passes; and the
lease heartbeat mirrors the QoS heartbeat-timeout protocol — a renewal
thread touches the held lease, and renewals *stop* once the cell exceeds
the campaign's per-cell timeout, so a hung cell's lease expires and the
cell is re-issued to a healthy worker.

Everything a worker learns goes into its private append-only journal
shard (``distrib/journals/<worker>.jsonl``, same event schema as the
canonical journal plus ``worker``/``wall_time_s`` attribution); the
coordinator merges shards into the canonical journal.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.dse import journal as journal_mod
from repro.dse import runner as runner_mod
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    DistribError,
    WorkQueue,
    default_worker_id,
    load_manifest,
    manifest_cells,
)
from repro.dse.distrib.shared_cache import SharedResultCache
from repro.dse.grid import SweepCell
from repro.dse.journal import Journal
from repro.runtime.qos import QoSController


@dataclass
class WorkerSummary:
    """What one worker run accomplished (its exit report)."""

    worker_id: str
    executed: int = 0
    cached: int = 0
    failed: int = 0
    passes: int = 0
    stop_reason: str = "done"

    def to_dict(self) -> dict:
        return {
            "worker": self.worker_id,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "passes": self.passes,
            "stop_reason": self.stop_reason,
        }


@dataclass
class _HeartbeatState:
    """Shared between the worker loop and its heartbeat thread."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    current_cell: str | None = None
    cell_started: float = 0.0
    timeout_s: float | None = None
    done: int = 0
    state: str = "starting"


class _Heartbeat(threading.Thread):
    """Renews the held lease + publishes worker status while cells run.

    Renewal is deliberately bounded: once the running cell has exceeded
    the campaign's per-cell timeout the lease is allowed to expire, which
    is how a worker hung inside a cell hands that cell back to the fleet
    (the QoS heartbeat-watchdog pattern, applied to workers).
    """

    def __init__(
        self,
        queue: WorkQueue,
        cache: SharedResultCache,
        worker_id: str,
        shared: _HeartbeatState,
        interval_s: float,
    ) -> None:
        super().__init__(name=f"heartbeat-{worker_id}", daemon=True)
        self.queue = queue
        self.cache = cache
        self.worker_id = worker_id
        self.shared = shared
        self.interval_s = interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat()

    def beat(self) -> None:
        with self.shared.lock:
            cell = self.shared.current_cell
            started = self.shared.cell_started
            timeout = self.shared.timeout_s
            done = self.shared.done
            state = self.shared.state
        if cell is not None:
            runtime = time.monotonic() - started
            if timeout is None or runtime <= timeout:
                self.queue.renew_claim(cell)
                self.cache.renew_lock(cell)
        try:
            self.queue.write_worker_status(
                self.worker_id,
                state=state,
                current_cell=cell,
                cells_done=done,
                cache=self.cache.stats(),
            )
        except OSError:
            pass  # a transiently unwritable status file is not fatal


def _rotation(n: int, worker_id: str) -> list[int]:
    """Manifest indices rotated by a stable per-worker offset.

    Workers walk the same cell list starting at different points, so a
    fleet ramping up does not stampede the same leases in order.
    """
    if n == 0:
        return []
    digest = hashlib.sha256(worker_id.encode("utf-8")).hexdigest()
    start = int(digest[:8], 16) % n
    return list(range(start, n)) + list(range(start))


def run_worker(
    out_dir: str | Path,
    *,
    worker_id: str | None = None,
    lease_ttl_s: float | None = None,
    poll_s: float = 0.5,
    oneshot: bool = False,
    max_cells: int | None = None,
    controller: QoSController | None = None,
    manifest_wait_s: float = 30.0,
    log=None,
) -> WorkerSummary:
    """Work a campaign directory until it is fully resolved (or told to stop).

    The loop makes claim-check-execute passes over the manifest.  A cell
    is skipped when it is already resolved (shared-cache hit or final
    failure record), or leased to a live peer; otherwise the worker
    claims it, re-checks under the lease, and runs it through the
    ordinary :func:`repro.dse.runner.execute_cell`.  With ``oneshot`` the
    worker exits after the first pass that finds nothing to do (CI
    helpers); otherwise it waits on peers' leases — surviving workers
    automatically absorb a crashed peer's re-issued cells.
    """
    worker_id = worker_id or default_worker_id()
    out_dir = Path(out_dir)

    deadline = time.monotonic() + manifest_wait_s
    while True:
        try:
            manifest = load_manifest(out_dir)
            break
        except DistribError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(min(poll_s, 0.2))

    ttl = float(lease_ttl_s or manifest.get("lease_ttl_s") or DEFAULT_LEASE_TTL_S)
    timeout_s = manifest.get("timeout_s")
    max_attempts = max(1, int(manifest.get("max_attempts", 1)))
    cells = manifest_cells(manifest)
    by_id: dict[str, SweepCell] = {}
    for cell in cells:
        by_id.setdefault(cell.cell_id, cell)
    order = list(by_id)

    queue = WorkQueue(out_dir, owner=worker_id, lease_ttl_s=ttl)
    cache = SharedResultCache(
        out_dir / "cache",
        owner=worker_id,
        lock_ttl_s=max(ttl, float(timeout_s) if timeout_s else ttl),
    )
    # Cells the coordinator already resolved (prior runs, cache pass) —
    # read once at attach; new resolutions arrive via cache/failure files.
    resolved = set(
        journal_mod.replay_indexed(out_dir / "journal.jsonl", write=False).completed
    ) & set(by_id)

    summary = WorkerSummary(worker_id=worker_id)
    shared = _HeartbeatState()
    heartbeat = _Heartbeat(
        queue, cache, worker_id, shared, interval_s=max(0.05, ttl / 3.0)
    )
    journal = Journal(queue.shard_path(worker_id), resume=True)
    if controller is not None:
        controller.start_run()

    def say(msg: str) -> None:
        if log is not None:
            log(f"[{worker_id}] {msg}")

    def begin_cell(cell_id: str) -> None:
        with shared.lock:
            shared.current_cell = cell_id
            shared.cell_started = time.monotonic()
            shared.timeout_s = float(timeout_s) if timeout_s else None
            shared.state = "running"

    def end_cell() -> None:
        with shared.lock:
            shared.current_cell = None
            shared.done = summary.executed + summary.cached
            shared.state = "idle"

    heartbeat.start()
    heartbeat.beat()
    try:
        while True:
            summary.passes += 1
            progress_made = False
            in_flight_seen = False
            stop_reason: str | None = None
            for idx in _rotation(len(order), worker_id):
                if queue.stop_requested():
                    stop_reason = "stop_requested"
                    break
                if controller is not None:
                    reason = controller.poll()
                    if reason is not None:
                        stop_reason = reason
                        break
                if max_cells is not None and (
                    summary.executed + summary.cached
                ) >= max_cells:
                    stop_reason = "max_cells"
                    break
                cell_id = order[idx]
                if cell_id in resolved:
                    continue
                record = queue.failure(cell_id)
                if record and record.get("final"):
                    resolved.add(cell_id)
                    continue
                if queue.claimed_elsewhere(cell_id):
                    in_flight_seen = True
                    continue
                if not queue.try_claim(cell_id):
                    in_flight_seen = True
                    continue
                # -- under this cell's lease --------------------------------
                try:
                    record = queue.failure(cell_id)
                    if record and record.get("final"):
                        resolved.add(cell_id)
                        continue
                    if cache.peek(cell_id) is not None:
                        # Resolved elsewhere (a peer, or another campaign
                        # sharing cells) since our last look: claim it as a
                        # cache hit exactly once — we hold the lease.
                        journal.append(
                            journal_mod.EVENT_CELL_CACHED,
                            cell_id=cell_id,
                            label=by_id[cell_id].label,
                            worker=worker_id,
                            attempts=0,
                        )
                        resolved.add(cell_id)
                        summary.cached += 1
                        progress_made = True
                        continue
                    if cache.locked_by_other(cell_id):
                        # Another campaign is computing this very cell on
                        # the shared cache; let it finish, come back later.
                        in_flight_seen = True
                        continue
                    attempt = int(record.get("attempts", 0) if record else 0) + 1
                    journal.append(
                        journal_mod.EVENT_CELL_START,
                        cell_id=cell_id,
                        label=by_id[cell_id].label,
                        attempt=attempt,
                        worker=worker_id,
                    )
                    cache.try_lock(cell_id)
                    begin_cell(cell_id)
                    say(f"run {by_id[cell_id].label} (attempt {attempt})")
                    t0 = time.monotonic()
                    try:
                        metrics = runner_mod.execute_cell(
                            by_id[cell_id].to_dict()
                        )
                    except KeyboardInterrupt:
                        journal.append(
                            journal_mod.EVENT_CELL_INTERRUPTED,
                            cell_id=cell_id,
                            label=by_id[cell_id].label,
                            worker=worker_id,
                        )
                        raise
                    except Exception as exc:  # noqa: BLE001 — isolate cells
                        error = f"{type(exc).__name__}: {exc}"
                        record = queue.record_failure(
                            cell_id, error, max_attempts=max_attempts
                        )
                        journal.append(
                            journal_mod.EVENT_CELL_ERROR,
                            cell_id=cell_id,
                            label=by_id[cell_id].label,
                            error=error,
                            attempts=record["attempts"],
                            worker=worker_id,
                        )
                        if record.get("final"):
                            resolved.add(cell_id)
                            summary.failed += 1
                        progress_made = True
                    else:
                        metrics["worker"] = worker_id
                        cache.put_if_absent(cell_id, metrics)
                        queue.clear_failure(cell_id)
                        journal.append(
                            journal_mod.EVENT_CELL_FINISH,
                            cell_id=cell_id,
                            label=by_id[cell_id].label,
                            makespan_ms=metrics.get("makespan_ms"),
                            attempts=attempt,
                            worker=worker_id,
                            wall_time_s=round(time.monotonic() - t0, 6),
                        )
                        resolved.add(cell_id)
                        summary.executed += 1
                        progress_made = True
                    finally:
                        end_cell()
                        cache.unlock(cell_id)
                finally:
                    queue.release_claim(cell_id)
            if stop_reason is not None:
                summary.stop_reason = stop_reason
                break
            if len(resolved) >= len(order):
                summary.stop_reason = "done"
                break
            if oneshot and not progress_made:
                summary.stop_reason = "oneshot_drained"
                break
            if not progress_made:
                # Unresolved work is leased to live peers (or another
                # campaign); wait for results or lease expiry.
                _ = in_flight_seen
                time.sleep(poll_s)
    except KeyboardInterrupt:
        summary.stop_reason = "interrupted"
        raise
    finally:
        heartbeat.stop()
        with shared.lock:
            shared.state = summary.stop_reason
        heartbeat.beat()
        journal.close()
        say(
            f"exit: {summary.stop_reason} ({summary.executed} executed, "
            f"{summary.cached} cached, {summary.failed} failed)"
        )
    return summary
