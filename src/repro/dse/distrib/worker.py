"""Distributed sweep worker: claim cells, run them, report exactly once.

A worker is one independent process attached to a campaign through a
:class:`~repro.dse.distrib.transport.WorkerTransport`:

* **filesystem mode** (:class:`~repro.dse.distrib.transport.FsTransport`)
  — the manifest is the work list, lease files arbitrate ownership, the
  shared cache is the result bus; workers are spawned by
  ``sweep --workers N`` or attach from any machine mounting the campaign
  directory (``dssoc-emulate sweep-worker --out DIR``).
* **network mode** (:class:`~repro.dse.distrib.net.client.NetTransport`)
  — the same loop speaks to ``dssoc-emulate sweep-server`` over TCP
  (``sweep-worker --server HOST:PORT``); no shared mount required.

Health and shutdown reuse the PR 4 QoS watchdog machinery: the worker
carries a :class:`~repro.runtime.qos.QoSController` whose interrupt flag
is set by signal handlers or a ``--wall-budget`` expiry, polled between
cells exactly the way backends poll it between scheduler passes; and the
claim heartbeat mirrors the QoS heartbeat-timeout protocol — a renewal
thread renews the held claim, and renewals *stop* once the cell exceeds
the campaign's per-cell timeout, so a hung cell's claim expires and the
cell is re-issued to a healthy worker.

Network-mode degradation is deliberate, not incidental: when the server
becomes unreachable the worker finishes its in-flight cell, persists the
result to a local spool, and keeps trying to reconnect (flushing the
spool first thing on success).  Only when the reconnect budget is
exhausted does it exit — cleanly, with the spool intact for the next
attach — reporting ``server_lost`` (exit code 130 from the CLI, like a
signal-interrupted drain).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.dse import runner as runner_mod
from repro.dse.distrib.transport import (
    CLAIM_BUSY,
    CLAIM_CACHED,
    CLAIM_FAILED_FINAL,
    CLAIM_GRANTED,
    CLAIM_RESOLVED,
    FsTransport,
    TransportError,
    WorkerTransport,
    new_token,
)
from repro.dse.distrib.queue import default_worker_id
from repro.dse.grid import SweepCell
from repro.runtime.qos import QoSController

#: How long a network worker keeps retrying to reach a lost server
#: before giving up (each idle retry also sleeps ``poll_s``).
DEFAULT_RECONNECT_BUDGET_S = 60.0


@dataclass
class WorkerSummary:
    """What one worker run accomplished (its exit report)."""

    worker_id: str
    executed: int = 0
    cached: int = 0
    failed: int = 0
    passes: int = 0
    disconnects: int = 0
    spooled: int = 0
    stop_reason: str = "done"

    def to_dict(self) -> dict:
        return {
            "worker": self.worker_id,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "passes": self.passes,
            "disconnects": self.disconnects,
            "spooled": self.spooled,
            "stop_reason": self.stop_reason,
        }


@dataclass
class _HeartbeatState:
    """Shared between the worker loop and its heartbeat thread."""

    lock: threading.Lock = field(default_factory=threading.Lock)
    current_cell: str | None = None
    cell_started: float = 0.0
    timeout_s: float | None = None
    done: int = 0
    state: str = "starting"


class _Heartbeat(threading.Thread):
    """Renews the held claim + publishes worker status while cells run.

    Renewal is deliberately bounded: once the running cell has exceeded
    the campaign's per-cell timeout the claim is allowed to expire, which
    is how a worker hung inside a cell hands that cell back to the fleet
    (the QoS heartbeat-watchdog pattern, applied to workers).
    """

    def __init__(
        self,
        transport: WorkerTransport,
        shared: _HeartbeatState,
        interval_s: float,
    ) -> None:
        super().__init__(name=f"heartbeat-{transport.worker_id}", daemon=True)
        self.transport = transport
        self.shared = shared
        self.interval_s = interval_s
        self._stop = threading.Event()

    def stop(self) -> None:
        self._stop.set()

    def run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat()

    def beat(self) -> None:
        with self.shared.lock:
            cell = self.shared.current_cell
            started = self.shared.cell_started
            timeout = self.shared.timeout_s
            done = self.shared.done
            state = self.shared.state
        try:
            if cell is not None:
                runtime = time.monotonic() - started
                if timeout is None or runtime <= timeout:
                    self.transport.renew(cell)
            self.transport.heartbeat(
                state=state, current_cell=cell, cells_done=done
            )
        except TransportError:
            pass  # the main loop handles reconnection; a missed beat is fine


def _rotation(n: int, worker_id: str) -> list[int]:
    """Manifest indices rotated by a stable per-worker offset.

    Workers walk the same cell list starting at different points, so a
    fleet ramping up does not stampede the same claims in order.
    """
    if n == 0:
        return []
    digest = hashlib.sha256(worker_id.encode("utf-8")).hexdigest()
    start = int(digest[:8], 16) % n
    return list(range(start, n)) + list(range(start))


def run_worker(
    out_dir=None,
    *,
    worker_id: str | None = None,
    transport: WorkerTransport | None = None,
    lease_ttl_s: float | None = None,
    poll_s: float = 0.5,
    oneshot: bool = False,
    max_cells: int | None = None,
    controller: QoSController | None = None,
    manifest_wait_s: float = 30.0,
    reconnect_budget_s: float = DEFAULT_RECONNECT_BUDGET_S,
    log=None,
) -> WorkerSummary:
    """Work a campaign until it is fully resolved (or told to stop).

    The campaign is reached through ``transport``; passing ``out_dir``
    alone builds the filesystem transport (the PR 5 directory protocol,
    unchanged on disk).  The loop makes claim-check-execute passes over
    the manifest.  A cell is skipped when it is already resolved, or
    claimed by a live peer; otherwise the worker claims it and runs it
    through the ordinary :func:`repro.dse.runner.execute_cell`.  With
    ``oneshot`` the worker exits after the first pass that finds nothing
    to do (CI helpers); otherwise it waits on peers' claims — surviving
    workers automatically absorb a crashed peer's re-issued cells.
    """
    worker_id = worker_id or default_worker_id()
    if transport is None:
        if out_dir is None:
            raise ValueError("run_worker needs out_dir or transport")
        transport = FsTransport(
            out_dir, worker_id=worker_id, lease_ttl_s=lease_ttl_s
        )
    worker_id = transport.worker_id

    manifest = transport.wait_ready(timeout_s=manifest_wait_s, poll_s=poll_s)
    ttl = float(manifest.get("lease_ttl_s") or 30.0)
    if lease_ttl_s:
        ttl = float(lease_ttl_s)
    timeout_s = manifest.get("timeout_s")
    cells = [SweepCell.from_dict(d) for d in manifest["cells"]]
    by_id: dict[str, SweepCell] = {}
    for cell in cells:
        by_id.setdefault(cell.cell_id, cell)
    order = list(by_id)

    # Cells the coordinator already resolved (prior runs, cache pass) —
    # read once at attach; new resolutions arrive via claim outcomes.
    resolved = transport.initial_resolved() & set(by_id)

    summary = WorkerSummary(worker_id=worker_id)
    shared = _HeartbeatState()
    heartbeat = _Heartbeat(transport, shared, interval_s=max(0.05, ttl / 3.0))
    if controller is not None:
        controller.start_run()
    token_seq = 0

    def next_token() -> str:
        nonlocal token_seq
        token_seq += 1
        return new_token(worker_id, token_seq)

    def say(msg: str) -> None:
        if log is not None:
            log(f"[{worker_id}] {msg}")

    def begin_cell(cell_id: str) -> None:
        with shared.lock:
            shared.current_cell = cell_id
            shared.cell_started = time.monotonic()
            shared.timeout_s = float(timeout_s) if timeout_s else None
            shared.state = "running"

    def end_cell() -> None:
        with shared.lock:
            shared.current_cell = None
            shared.done = summary.executed + summary.cached
            shared.state = "idle"

    heartbeat.start()
    heartbeat.beat()
    disconnected_since: float | None = None
    try:
        while True:
            summary.passes += 1
            progress_made = False
            stop_reason: str | None = None
            try:
                if transport.spooled():
                    flushed = transport.flush_spool()
                    if flushed:
                        say(f"flushed {flushed} spooled result(s)")
                        progress_made = True
                disconnected_since = None
                for idx in _rotation(len(order), worker_id):
                    if transport.stop_requested():
                        stop_reason = "stop_requested"
                        break
                    if controller is not None:
                        reason = controller.poll()
                        if reason is not None:
                            stop_reason = reason
                            break
                    if max_cells is not None and (
                        summary.executed + summary.cached
                    ) >= max_cells:
                        stop_reason = "max_cells"
                        break
                    cell_id = order[idx]
                    if cell_id in resolved:
                        continue
                    label = by_id[cell_id].label
                    reply = transport.claim(cell_id, label, next_token())
                    try:
                        if reply.status == CLAIM_FAILED_FINAL:
                            resolved.add(cell_id)
                            continue
                        if reply.status == CLAIM_RESOLVED:
                            resolved.add(cell_id)
                            continue
                        if reply.status == CLAIM_CACHED:
                            resolved.add(cell_id)
                            summary.cached += 1
                            progress_made = True
                            continue
                        if reply.status == CLAIM_BUSY:
                            continue
                        assert reply.status == CLAIM_GRANTED
                        attempt = reply.attempt
                        transport.begin(cell_id, label, attempt)
                        begin_cell(cell_id)
                        say(f"run {label} (attempt {attempt})")
                        t0 = time.monotonic()
                        try:
                            metrics = runner_mod.execute_cell(
                                by_id[cell_id].to_dict()
                            )
                        except KeyboardInterrupt:
                            transport.interrupted(cell_id, label)
                            raise
                        except Exception as exc:  # noqa: BLE001 — isolate cells
                            error = f"{type(exc).__name__}: {exc}"
                            record = transport.fail(
                                cell_id, label, error, next_token()
                            )
                            if record.get("final"):
                                resolved.add(cell_id)
                                summary.failed += 1
                            progress_made = True
                        else:
                            metrics["worker"] = worker_id
                            wall = time.monotonic() - t0
                            try:
                                transport.submit(
                                    cell_id, label, metrics,
                                    attempt=attempt, wall_time_s=wall,
                                    token=next_token(),
                                )
                            except TransportError:
                                # Server unreachable after the whole retry
                                # budget: the work is done — persist it
                                # locally and re-submit on reconnect.
                                summary.spooled += 1
                                say(f"server lost; spooled {label}")
                            resolved.add(cell_id)
                            summary.executed += 1
                            progress_made = True
                        finally:
                            end_cell()
                    finally:
                        try:
                            transport.release(cell_id)
                        except TransportError:
                            pass  # claim will expire server-side
            except TransportError as exc:
                summary.disconnects += 1
                now = time.monotonic()
                if disconnected_since is None:
                    disconnected_since = now
                    say(f"transport failure ({exc}); retrying")
                if now - disconnected_since > reconnect_budget_s:
                    stop_reason = "server_lost"
            if stop_reason is not None:
                summary.stop_reason = stop_reason
                break
            if len(resolved) >= len(order) and not transport.spooled():
                # "done" must mean the *server* has every result, not just
                # our local view: a submit that lost its ACK sits in the
                # spool, and exiting now would strand it.  Loop instead —
                # the next pass flushes the spool (or the reconnect budget
                # expires and we exit server_lost).
                summary.stop_reason = "done"
                break
            if oneshot and not progress_made:
                summary.stop_reason = "oneshot_drained"
                break
            if not progress_made:
                # Unresolved work is claimed by live peers (or another
                # campaign); learn any out-of-band resolutions, then wait.
                try:
                    fresh = transport.poll_resolved()
                except TransportError:
                    fresh = None
                if fresh is not None:
                    resolved |= fresh & set(by_id)
                    if len(resolved) >= len(order) and not transport.spooled():
                        summary.stop_reason = "done"
                        break
                time.sleep(poll_s)
    except KeyboardInterrupt:
        summary.stop_reason = "interrupted"
        raise
    finally:
        heartbeat.stop()
        with shared.lock:
            shared.state = summary.stop_reason
        heartbeat.beat()
        summary.spooled = transport.spooled()
        transport.close()
        say(
            f"exit: {summary.stop_reason} ({summary.executed} executed, "
            f"{summary.cached} cached, {summary.failed} failed"
            + (f", {summary.spooled} spooled" if summary.spooled else "")
            + ")"
        )
    return summary
