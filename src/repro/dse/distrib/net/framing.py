"""Length-prefixed JSON frames over a stream socket.

One frame is a 4-byte big-endian unsigned length followed by exactly
that many bytes of UTF-8 JSON encoding one object.  The format is
deliberately minimal — no magic, no versioning in the framing layer
(protocol versions live in the ``hello`` exchange) — but the *reader* is
strict about failure taxonomy, because the retry layer above treats
these cases differently:

* :class:`ConnectionClosed` — EOF exactly on a frame boundary.  A peer
  that finished and closed; retrying on a fresh connection is safe.
* :class:`TruncatedFrame` — EOF mid-length or mid-payload.  The peer (or
  a middlebox) died mid-write; whatever request was in flight may or
  may not have been processed — callers must only retry requests that
  are idempotent (ours all are, by token).
* :class:`FrameTooLarge` — a length prefix beyond the sanity cap.  This
  is a desynchronized or hostile stream, never retried on the same
  connection.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

#: Sanity cap on a single frame.  Campaign manifests with thousands of
#: cells fit in well under a MiB; anything near this cap is stream
#: desynchronization, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(OSError):
    """Base class for framing failures (an ``OSError`` so the retry
    machinery that guards socket calls catches framing failures too)."""


class ConnectionClosed(FrameError):
    """EOF on a frame boundary: the peer closed cleanly."""


class TruncatedFrame(FrameError):
    """EOF inside a frame: the peer vanished mid-write."""


class FrameTooLarge(FrameError):
    """Length prefix exceeds :data:`MAX_FRAME_BYTES`: desynchronized."""


def encode_frame(obj: Any) -> bytes:
    """One wire-ready frame for ``obj`` (length prefix included)."""
    payload = json.dumps(obj, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"frame of {len(payload)} bytes exceeds cap")
    return _LEN.pack(len(payload)) + payload


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Serialize ``obj`` and send it as one frame (blocking)."""
    sock.sendall(encode_frame(obj))


def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("peer closed the connection")
            raise TruncatedFrame(
                f"connection lost {n - remaining}/{n} bytes into a frame"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Read one frame and decode its JSON body (blocking).

    Raises :class:`ConnectionClosed` on EOF at a frame boundary,
    :class:`TruncatedFrame` on EOF inside a frame, :class:`FrameError`
    on an undecodable body, and propagates socket timeouts.
    """
    header = _recv_exact(sock, _LEN.size, at_boundary=True)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameTooLarge(f"peer announced a {length}-byte frame")
    payload = _recv_exact(sock, length, at_boundary=False)
    try:
        return json.loads(payload.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise FrameError(f"undecodable frame body: {exc}") from exc


class FrameAssembler:
    """Incremental frame parser for non-blocking servers.

    Feed raw bytes as they arrive; completed frames pop out of
    :meth:`frames`.  The server uses this inside its ``selectors`` loop
    where a blocking :func:`recv_frame` would stall every other client.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self) -> list[Any]:
        """All complete frames currently buffered (may be empty)."""
        out: list[Any] = []
        while True:
            if len(self._buf) < _LEN.size:
                return out
            (length,) = _LEN.unpack(bytes(self._buf[: _LEN.size]))
            if length > MAX_FRAME_BYTES:
                raise FrameTooLarge(f"peer announced a {length}-byte frame")
            end = _LEN.size + length
            if len(self._buf) < end:
                return out
            payload = bytes(self._buf[_LEN.size:end])
            del self._buf[:end]
            try:
                out.append(json.loads(payload.decode("utf-8")))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise FrameError(f"undecodable frame body: {exc}") from exc
