"""Network transport for distributed sweep campaigns (no shared mount).

The directory protocol in :mod:`repro.dse.distrib.queue` assumes every
participant mounts the same filesystem.  This package removes that
assumption: a dependency-free TCP queue server
(``dssoc-emulate sweep-server``) owns the campaign state — manifest,
leases, result submission, heartbeats — and workers/coordinators speak
length-prefixed JSON frames to it over stdlib sockets:

* :mod:`repro.dse.distrib.net.framing` — the wire format (4-byte
  big-endian length prefix + one JSON object) and its failure taxonomy
  (clean close vs truncated frame vs oversized frame);
* :mod:`repro.dse.distrib.net.server` — :class:`SweepServer`: a
  single-threaded ``selectors`` event loop around a pure request
  handler; all campaign state persists through the existing journal /
  cache / failure-record machinery, so a SIGKILL'd server restarts and
  resumes with no lost or duplicated cells;
* :mod:`repro.dse.distrib.net.client` — :class:`NetTransport`: the
  socket-side implementation of the worker/coordinator transport
  interface, with bounded retry (exponential backoff + full jitter),
  per-call deadlines, reconnect-on-failure, and idempotency tokens on
  claims and submissions;
* :mod:`repro.dse.distrib.net.spool` — a worker-local result spool so a
  worker that loses the server finishes its in-flight cell, persists
  the result locally, and re-submits on reconnect.

See ``docs/distributed.md`` ("Network transport") for the wire
protocol, the idempotency rules, and the expanded failure matrix.
"""

from repro.dse.distrib.net.client import NetTransport, parse_endpoint
from repro.dse.distrib.net.framing import (
    ConnectionClosed,
    FrameError,
    FrameTooLarge,
    TruncatedFrame,
    recv_frame,
    send_frame,
)
from repro.dse.distrib.net.server import SweepServer, load_endpoint
from repro.dse.distrib.net.spool import ResultSpool

__all__ = [
    "ConnectionClosed",
    "FrameError",
    "FrameTooLarge",
    "NetTransport",
    "ResultSpool",
    "SweepServer",
    "TruncatedFrame",
    "load_endpoint",
    "parse_endpoint",
    "recv_frame",
    "send_frame",
]
