"""The network transport client: framed RPC with retry, deadlines, tokens.

:class:`NetTransport` implements the
:class:`~repro.dse.distrib.transport.WorkerTransport` interface over one
TCP connection to ``dssoc-emulate sweep-server``, plus the handful of
coordinator-side operations (publish, cache pass, fetch, status, stop).

Fault-handling contract (what the chaos harness exercises):

* Every call runs under a bounded :class:`~repro.common.retry.RetryPolicy`
  — exponential backoff with full jitter between attempts, a per-call
  socket timeout on each attempt, and an overall per-call deadline.  Any
  :class:`OSError` (which includes resets, timeouts, and every framing
  failure) drops the connection and retries on a fresh one; only after
  the whole budget is spent does the call raise
  :class:`~repro.dse.distrib.transport.TransportError`.
* Every request carries a retry-stable request id (``rid``) which the
  server echoes.  Replies whose rid does not match the in-flight request
  are discarded — this is what makes a *delayed or duplicated* reply
  (a previous attempt's ACK arriving late) harmless rather than a
  desynchronizing poison pill.
* The rid doubles as the idempotency token the server dedupes on, so a
  retried ``claim``/``submit``/``fail`` whose first attempt actually
  landed cannot double-claim, double-count, or double-charge.
* ``submit`` is write-ahead spooled: the result is persisted to the
  local :class:`~repro.dse.distrib.net.spool.ResultSpool` *before* the
  network attempt and removed only on ACK, so neither a lost server nor
  a worker crash mid-submit loses a computed result.
"""

from __future__ import annotations

import hashlib
import random
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.common.retry import RetryPolicy, RetryStats
from repro.dse.distrib.net.framing import recv_frame, send_frame
from repro.dse.distrib.net.spool import ResultSpool
from repro.dse.distrib.transport import ClaimReply, TransportError, WorkerTransport

import socket as socket_mod

#: Default per-call retry envelope: 5 attempts, jittered backoff capped
#: at 2 s, the whole call bounded by 20 s of wall clock.
NET_RETRY = RetryPolicy(attempts=5, base_delay_s=0.05, max_delay_s=2.0, deadline_s=20.0)

#: Per-attempt socket timeout (connect and each recv).
DEFAULT_CALL_TIMEOUT_S = 10.0


def parse_endpoint(endpoint: str) -> tuple[str, int]:
    """``HOST:PORT`` (or ``:PORT`` for localhost) → ``(host, port)``."""
    text = endpoint.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep or not port_text.isdigit():
        raise ValueError(
            f"bad server endpoint {endpoint!r} (expected HOST:PORT)"
        )
    return host or "127.0.0.1", int(port_text)


def default_spool_dir(host: str, port: int, worker_id: str) -> Path:
    """A stable per-(endpoint, host-machine) spool location.

    Deliberately *not* keyed by pid: a worker that exited with
    ``server_lost`` leaves its spool here, and the next worker attached
    to the same server from this machine flushes it.
    """
    digest = hashlib.sha256(f"{host}:{port}".encode("utf-8")).hexdigest()[:12]
    return Path(tempfile.gettempdir()) / f"dssoc-spool-{digest}"


class NetTransport(WorkerTransport):
    """One participant's connection to the sweep server."""

    def __init__(
        self,
        endpoint: str | tuple[str, int],
        *,
        worker_id: str,
        spool_dir: str | Path | None = None,
        policy: RetryPolicy = NET_RETRY,
        call_timeout_s: float = DEFAULT_CALL_TIMEOUT_S,
        rng: random.Random | None = None,
        sleep=time.sleep,
    ) -> None:
        if isinstance(endpoint, str):
            endpoint = parse_endpoint(endpoint)
        self.host, self.port = endpoint
        self.worker_id = worker_id
        self.policy = policy
        self.call_timeout_s = call_timeout_s
        self._rng = rng
        self._sleep = sleep
        self._sock: socket_mod.socket | None = None
        self._lock = threading.RLock()
        self._rid_seq = 0
        self._stop_cached = False
        self.stats = RetryStats()
        self.spool = ResultSpool(
            spool_dir
            if spool_dir is not None
            else default_spool_dir(self.host, self.port, worker_id)
        )
        self._manifest: dict[str, Any] | None = None

    # -- connection / call machinery -----------------------------------------------

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> socket_mod.socket:
        if self._sock is None:
            sock = socket_mod.create_connection(
                (self.host, self.port), timeout=self.call_timeout_s
            )
            sock.setsockopt(socket_mod.IPPROTO_TCP, socket_mod.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _call(
        self,
        op: str,
        *,
        policy: RetryPolicy | None = None,
        **fields: Any,
    ) -> dict[str, Any]:
        """One logical request: retried, deadline-bounded, rid-matched.

        The rid is assigned once per *logical* call and reused verbatim
        across retries — it is the idempotency token the server keys
        dedupe on.
        """
        policy = policy or self.policy
        with self._lock:
            self._rid_seq += 1
            rid = f"{self.worker_id}:{self._rid_seq}"
            msg = {"op": op, "rid": rid, "worker": self.worker_id, **fields}

            def attempt() -> dict[str, Any]:
                sock = self._ensure_connected()
                try:
                    send_frame(sock, msg)
                    while True:
                        reply = recv_frame(sock)
                        if isinstance(reply, dict) and reply.get("rid") == rid:
                            return reply
                        # A stale reply: a previous attempt's ACK arriving
                        # after we gave up on it, or a chaos-duplicated
                        # frame.  Matching on rid keeps the stream from
                        # desynchronizing — skip it and keep reading.
                except OSError:
                    self._drop_connection()
                    raise

            try:
                reply = policy.call(
                    attempt,
                    retry_on=lambda exc: isinstance(exc, OSError),
                    rng=self._rng,
                    sleep=self._sleep,
                    on_retry=lambda n, exc: self.stats.note(op, exc),
                )
            except OSError as exc:
                raise TransportError(
                    f"sweep server {self.host}:{self.port} unreachable "
                    f"after {policy.attempts} attempt(s): {exc}"
                ) from exc
        if not reply.get("ok"):
            # A *processed* request the server rejected — deterministic,
            # never retried (retrying a semantic error is just louder).
            raise TransportError(
                f"server rejected {op}: {reply.get('error', '?')}"
            )
        return reply

    # -- coordinator-side operations -----------------------------------------------

    def ping(self) -> dict[str, Any]:
        return self._call("ping")

    def publish(
        self,
        cells: list[dict[str, Any]],
        *,
        grid_id: str,
        max_attempts: int,
        timeout_s: float | None,
        lease_ttl_s: float,
        resume: bool,
    ) -> int:
        reply = self._call(
            "publish",
            cells=cells,
            grid_id=grid_id,
            max_attempts=max_attempts,
            timeout_s=timeout_s,
            lease_ttl_s=lease_ttl_s,
            resume=resume,
        )
        return int(reply["total"])

    def cache_pass(self, *, force: bool) -> list[str]:
        return list(self._call("cache_pass", force=force)["cached"])

    def resolved_snapshot(self) -> tuple[set[str], dict[str, dict[str, Any]]]:
        reply = self._call("resolved")
        return set(reply["completed"]), dict(reply["failed"])

    def fetch(self, cell_ids: list[str]) -> dict[str, Any]:
        metrics: dict[str, Any] = {}
        for start in range(0, len(cell_ids), 256):
            batch = cell_ids[start:start + 256]
            metrics.update(self._call("fetch", cell_ids=batch)["metrics"])
        return metrics

    def status_snapshot(self) -> dict[str, Any]:
        return dict(self._call("status")["snapshot"])

    def request_stop(self, reason: str = "coordinator") -> None:
        self._call("stop", reason=reason)
        self._stop_cached = True

    def event(self, kind: str, **fields: Any) -> None:
        self._call("event", kind=kind, fields=fields)

    # -- WorkerTransport: attach ---------------------------------------------------

    def wait_ready(self, *, timeout_s: float, poll_s: float) -> dict[str, Any]:
        deadline = time.monotonic() + timeout_s
        quick = RetryPolicy(attempts=1)
        last_error: str = "campaign not published yet"
        while True:
            try:
                reply = self._call("manifest", policy=quick)
                if reply.get("ready"):
                    self._manifest = dict(reply["manifest"])
                    return self._manifest
            except TransportError as exc:
                last_error = str(exc)
            if time.monotonic() >= deadline:
                raise TransportError(
                    f"no campaign on {self.host}:{self.port} after "
                    f"{timeout_s:.0f}s: {last_error}"
                )
            self._sleep(min(poll_s, 0.5))

    def initial_resolved(self) -> set[str]:
        completed, failed = self.resolved_snapshot()
        return completed | {c for c, rec in failed.items() if rec.get("final")}

    # -- WorkerTransport: queue ----------------------------------------------------

    def stop_requested(self) -> bool:
        # Served from the last heartbeat reply: the worker checks this
        # before every claim, and a per-cell network round trip would
        # double the request rate for a bit that changes once per
        # campaign.  Freshness is one heartbeat interval (ttl / 3).
        return self._stop_cached

    def claim(self, cell_id: str, label: str, token: str) -> ClaimReply:
        reply = self._call("claim", cell_id=cell_id, label=label, token=token)
        return ClaimReply(reply["status"], attempt=int(reply.get("attempt", 1)))

    def release(self, cell_id: str) -> None:
        self._call("release", cell_id=cell_id)

    def renew(self, cell_id: str) -> None:
        try:
            self._call("renew", cell_id=cell_id)
        except TransportError:
            pass  # lease renewal is best-effort; expiry just re-issues

    def heartbeat(self, **status: Any) -> None:
        try:
            reply = self._call("heartbeat", **status)
        except TransportError:
            return  # a missed beat is not fatal; the main loop reconnects
        self._stop_cached = bool(reply.get("stop"))

    # -- WorkerTransport: resolution -----------------------------------------------

    def begin(self, cell_id: str, label: str, attempt: int) -> None:
        # The server journals cell_start inside the claim grant (one
        # round trip, and the event is exactly as durable); nothing to do.
        return None

    def submit(
        self,
        cell_id: str,
        label: str,
        metrics: dict[str, Any],
        *,
        attempt: int,
        wall_time_s: float,
        token: str,
    ) -> None:
        # Write-ahead: spool first so the computed result survives both a
        # lost server and our own death mid-call; unspool only on ACK.
        self.spool.add(
            cell_id=cell_id,
            label=label,
            metrics=metrics,
            attempt=attempt,
            wall_time_s=round(wall_time_s, 6),
            token=token,
        )
        self._call(
            "submit",
            cell_id=cell_id,
            label=label,
            metrics=metrics,
            attempt=attempt,
            wall_time_s=round(wall_time_s, 6),
            token=token,
        )
        self.spool.remove(token)

    def fail(self, cell_id: str, label: str, error: str, token: str) -> dict[str, Any]:
        reply = self._call(
            "fail", cell_id=cell_id, label=label, error=error, token=token
        )
        return {"attempts": reply["attempts"], "final": reply["final"]}

    def interrupted(self, cell_id: str, label: str) -> None:
        try:
            self._call(
                "interrupted",
                cell_id=cell_id,
                label=label,
                policy=RetryPolicy(attempts=2, base_delay_s=0.05),
            )
        except TransportError:
            pass  # best effort on the way out of a signal

    # -- WorkerTransport: idle-pass helpers ----------------------------------------

    def poll_resolved(self) -> set[str] | None:
        return self.initial_resolved()

    def flush_spool(self) -> int:
        flushed = 0
        for entry in self.spool.entries():
            self._call(
                "submit",
                cell_id=entry["cell_id"],
                label=entry.get("label", entry["cell_id"]),
                metrics=entry["metrics"],
                attempt=int(entry.get("attempt", 1)),
                wall_time_s=entry.get("wall_time_s"),
                token=entry["token"],
            )
            self.spool.remove(entry["token"])
            flushed += 1
        return flushed

    def spooled(self) -> int:
        return len(self.spool)

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._drop_connection()
