"""Worker-local result spool for network partitions.

When a worker finishes a cell but cannot reach the server, throwing the
result away would waste the (possibly expensive) emulation it just ran.
Instead the result is persisted here — one JSON file per submission,
named by its idempotency token — and re-submitted on reconnect.  Because
submission is token-idempotent on the server, a spooled result that was
*actually* accepted before the ACK was lost simply dedupes on flush.

The spool lives under the worker's own scratch directory (default:
alongside nothing shared), so it works precisely when no shared mount
exists — which is the only situation the network transport exists for.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any


class ResultSpool:
    """A directory of pending result submissions, one file per token."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, token: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in token)
        return self.root / f"{safe}.json"

    def add(
        self,
        *,
        cell_id: str,
        label: str,
        metrics: dict[str, Any],
        attempt: int,
        wall_time_s: float,
        token: str,
    ) -> Path:
        """Persist one submission durably (atomic rename)."""
        path = self._path(token)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        doc = {
            "cell_id": cell_id,
            "label": label,
            "metrics": metrics,
            "attempt": attempt,
            "wall_time_s": wall_time_s,
            "token": token,
        }
        tmp.write_text(json.dumps(doc, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def entries(self) -> list[dict[str, Any]]:
        """All pending submissions, oldest first (stable across restarts)."""
        out: list[tuple[float, dict[str, Any]]] = []
        for path in self.root.glob("*.json"):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue  # torn write from a crash mid-spool; unusable
            if isinstance(doc, dict) and doc.get("token"):
                try:
                    mtime = path.stat().st_mtime
                except OSError:
                    mtime = 0.0
                out.append((mtime, doc))
        out.sort(key=lambda pair: pair[0])
        return [doc for _mtime, doc in out]

    def remove(self, token: str) -> None:
        try:
            self._path(token).unlink()
        except OSError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
