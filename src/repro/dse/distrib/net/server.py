"""The sweep queue server: campaign state behind a TCP request loop.

``dssoc-emulate sweep-server --out DIR`` owns one campaign: the
manifest, cell leases, result submission, failure records, worker
heartbeats, and the canonical journal.  Workers and coordinators speak
length-prefixed JSON frames (:mod:`repro.dse.distrib.net.framing`) to
it; no participant other than the server touches the campaign
directory, so fleets need no shared mount.

Two properties carry the robustness story:

* **Idempotent requests.**  Every mutating request carries a client
  token (its retry-stable request id).  A ``claim`` retried after a
  dropped ACK re-grants the same lease instead of reading as a
  competing claim; a ``submit`` retried after a dropped ACK folds as a
  dedupe because the completed set already contains the cell; a
  ``fail`` retried with the same token does not double-charge the
  attempt budget.  Exactly-once journal folding is therefore preserved
  end to end under arbitrary request replay.
* **Durable state, volatile bookkeeping.**  Everything that must
  survive a server SIGKILL is already durable through PR 5 machinery —
  the manifest file, the journal (+ index), the content-hash cache,
  per-cell failure records.  Leases and worker tables are deliberately
  in-memory: after a restart they are empty, workers re-claim on their
  next pass, and the completed-set replay guarantees no cell is lost or
  double-counted.

The request handler (:meth:`SweepServer.handle`) is a pure
dict-in/dict-out function, so protocol invariants are testable (and
property-testable) without sockets; :meth:`SweepServer.serve` is a thin
single-threaded ``selectors`` loop around it.
"""

from __future__ import annotations

import os
import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.dse import journal as journal_mod
from repro.dse.cache import ResultCache
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    WorkQueue,
    _atomic_write_json,
    _read_json,
    distrib_dir,
    write_manifest,
)
from repro.dse.distrib.transport import (
    CLAIM_BUSY,
    CLAIM_CACHED,
    CLAIM_FAILED_FINAL,
    CLAIM_GRANTED,
    CLAIM_RESOLVED,
)
from repro.dse.grid import SweepCell
from repro.dse.journal import Journal
from repro.dse.distrib.net.framing import FrameAssembler, FrameError, encode_frame

#: Protocol version spoken by this build; bumped on incompatible change.
PROTOCOL_VERSION = 1

#: Window for the "recent" throughput estimate feeding the status ETA.
_RECENT_WINDOW_S = 60.0

#: A worker whose heartbeat is older than this many lease ttls is dead.
_STALE_FACTOR = 3.0


def endpoint_path(out_dir: str | Path) -> Path:
    return distrib_dir(out_dir) / "server.json"


def load_endpoint(out_dir: str | Path) -> dict[str, Any] | None:
    """The running (or last) server's address record, or None."""
    doc = _read_json(endpoint_path(out_dir))
    return doc if isinstance(doc, dict) else None


@dataclass
class _Lease:
    """One in-memory cell lease (volatile by design; see module doc)."""

    worker: str
    token: str
    attempt: int
    expires_mono: float


@dataclass
class _WorkerInfo:
    state: str = "starting"
    current_cell: str | None = None
    cells_done: int = 0
    last_beat_mono: float = 0.0
    executed: int = 0
    cached: int = 0
    errors: int = 0


class SweepServer:
    """Single campaign, single process, single thread of state mutation."""

    def __init__(
        self,
        out_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_ttl_s: float | None = None,
        monotonic: Callable[[], float] = time.monotonic,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self.port = port
        self.monotonic = monotonic
        self._ttl_override = lease_ttl_s

        self.queue = WorkQueue(
            self.out_dir, owner="server",
            lease_ttl_s=lease_ttl_s or DEFAULT_LEASE_TTL_S,
        )
        self.cache = ResultCache(self.out_dir / "cache")
        self.journal_path = self.out_dir / "journal.jsonl"

        self.manifest: dict[str, Any] | None = None
        self.labels: dict[str, str] = {}
        self.order: list[str] = []
        self.leases: dict[str, _Lease] = {}
        self.workers: dict[str, _WorkerInfo] = {}
        self.completed: set[str] = set()
        self.stop_flag = False
        self.leases_expired = 0
        self.cached_resolutions = 0
        self._fail_tokens: dict[str, str] = {}
        self._resolution_wall_ts: deque[float] = deque(maxlen=100_000)

        self.journal = Journal(self.journal_path, resume=True)
        self._load_durable_state()

    # -- durable state -------------------------------------------------------------

    def _load_durable_state(self) -> None:
        """Resume from whatever the campaign directory already holds."""
        doc = _read_json(distrib_dir(self.out_dir) / "manifest.json")
        if isinstance(doc, dict) and doc.get("cells"):
            self._adopt_manifest(doc)
        state = journal_mod.replay_indexed(self.journal_path, write=False)
        self.completed = set(state.completed)
        self.stop_flag = self.queue.stop_requested()

    def _adopt_manifest(self, doc: dict[str, Any]) -> None:
        self.manifest = doc
        self.labels = {}
        self.order = []
        for data in doc.get("cells", ()):
            cell = SweepCell.from_dict(data)
            cid = cell.cell_id  # content hash — identical on every host
            if cid not in self.labels:
                self.order.append(cid)
                self.labels[cid] = cell.label

    @property
    def lease_ttl_s(self) -> float:
        if self._ttl_override:
            return float(self._ttl_override)
        if self.manifest and self.manifest.get("lease_ttl_s"):
            return float(self.manifest["lease_ttl_s"])
        return DEFAULT_LEASE_TTL_S

    @property
    def max_attempts(self) -> int:
        return max(1, int((self.manifest or {}).get("max_attempts", 1)))

    def _note_resolution(self, cached: bool) -> None:
        self._resolution_wall_ts.append(time.time())
        if cached:
            self.cached_resolutions += 1

    def _live_lease(self, cell_id: str) -> _Lease | None:
        lease = self.leases.get(cell_id)
        if lease is None:
            return None
        if lease.expires_mono <= self.monotonic():
            del self.leases[cell_id]
            self.leases_expired += 1
            return None
        return lease

    # -- request handler (pure: dict in, dict out) ---------------------------------

    def handle(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Process one request; never raises (errors become replies)."""
        try:
            op = msg.get("op")
            handler = getattr(self, f"_op_{op}", None)
            if handler is None or not isinstance(op, str) or op.startswith("_"):
                reply = {"ok": False, "error": f"unknown op {op!r}"}
            else:
                reply = handler(msg)
                reply.setdefault("ok", True)
        except Exception as exc:  # noqa: BLE001 — a bad request must not
            # take down the whole fleet's server
            reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if "rid" in msg:
            reply["rid"] = msg["rid"]
        return reply

    # Each _op_* mutates state only through this single-threaded path.

    def _op_ping(self, msg: dict[str, Any]) -> dict[str, Any]:
        return {"proto": PROTOCOL_VERSION, "pid": os.getpid()}

    def _op_hello(self, msg: dict[str, Any]) -> dict[str, Any]:
        proto = int(msg.get("proto", 0))
        if proto != PROTOCOL_VERSION:
            return {
                "ok": False,
                "error": f"protocol {proto} unsupported "
                         f"(server speaks {PROTOCOL_VERSION})",
            }
        return {
            "proto": PROTOCOL_VERSION,
            "ready": self.manifest is not None,
            "total": len(self.order),
        }

    def _op_publish(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Coordinator publishes (or re-attaches to) the campaign."""
        cells = msg["cells"]
        resume = bool(msg.get("resume"))
        cell_objs = [SweepCell.from_dict(d) for d in cells]
        write_manifest(
            self.out_dir, cell_objs,
            grid_id=str(msg.get("grid_id", "net")),
            max_attempts=int(msg.get("max_attempts", 1)),
            timeout_s=msg.get("timeout_s"),
            lease_ttl_s=float(msg.get("lease_ttl_s", self.lease_ttl_s)),
        )
        self._adopt_manifest(_read_json(distrib_dir(self.out_dir) / "manifest.json"))
        self.queue.clear_stop()
        self.stop_flag = False
        if not resume:
            # Fresh campaign: reset queue state exactly as the filesystem
            # coordinator does (keep the cache — the cache pass mines it).
            self.leases.clear()
            self._fail_tokens.clear()
            for path in self.queue.failed_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            for path in self.queue.workers_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass
            self.workers.clear()
            self.completed = set()
            self.journal.close()
            self.journal = Journal(self.journal_path, resume=False)
        return {"total": len(self.order), "resume": resume}

    def _op_manifest(self, msg: dict[str, Any]) -> dict[str, Any]:
        if self.manifest is None:
            return {"ready": False}
        return {"ready": True, "manifest": self.manifest}

    def _op_cache_pass(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Resolve every cell already in the cache (or drop them, --force)."""
        force = bool(msg.get("force"))
        worker = str(msg.get("worker", "coordinator"))
        cached: list[str] = []
        for cell_id in self.order:
            if force:
                self.cache.discard(cell_id)
                continue
            if cell_id in self.completed:
                cached.append(cell_id)
                continue
            if self.cache.get(cell_id) is not None:
                self.journal.append(
                    journal_mod.EVENT_CELL_CACHED,
                    cell_id=cell_id,
                    label=self.labels.get(cell_id, cell_id),
                    worker=worker,
                    attempts=0,
                )
                self.completed.add(cell_id)
                self._note_resolution(cached=True)
                cached.append(cell_id)
        return {"cached": sorted(cached)}

    def _op_resolved(self, msg: dict[str, Any]) -> dict[str, Any]:
        failed = {
            cell_id: {
                "attempts": int(rec.get("attempts", 1)),
                "final": True,
                "error": (rec.get("errors") or ["?"])[-1],
            }
            for cell_id, rec in self.queue.failed_final().items()
        }
        return {"completed": sorted(self.completed), "failed": failed}

    def _op_claim(self, msg: dict[str, Any]) -> dict[str, Any]:
        cell_id = msg["cell_id"]
        worker = str(msg["worker"])
        token = str(msg.get("token", ""))
        if self.manifest is None:
            return {"ok": False, "error": "no campaign published yet"}
        if cell_id not in self.labels:
            return {"ok": False, "error": f"unknown cell {cell_id!r}"}
        if cell_id in self.completed:
            return {"status": CLAIM_RESOLVED}
        record = self.queue.failure(cell_id)
        if record and record.get("final"):
            return {"status": CLAIM_FAILED_FINAL}
        lease = self._live_lease(cell_id)
        if lease is not None:
            if lease.worker == worker:
                # The same worker again: either a retry of the claim whose
                # ACK we lost (same token — idempotent re-grant, nothing
                # re-journaled) or a restarted worker process re-claiming
                # its own stuck lease (new token — fresh attempt record).
                lease.expires_mono = self.monotonic() + self.lease_ttl_s
                if lease.token == token:
                    return {"status": CLAIM_GRANTED, "attempt": lease.attempt}
                lease.token = token
                self.journal.append(
                    journal_mod.EVENT_CELL_START,
                    cell_id=cell_id,
                    label=self.labels[cell_id],
                    attempt=lease.attempt,
                    worker=worker,
                )
                return {"status": CLAIM_GRANTED, "attempt": lease.attempt}
            return {"status": CLAIM_BUSY, "holder": lease.worker}
        if self.cache.get(cell_id) is not None:
            # Resolved on disk (a prior campaign, or a spool flush that
            # beat this claim): fold it as a cache hit exactly once,
            # attributed to the claiming worker — mirrors the filesystem
            # worker journaling cell_cached under its lease.
            self.journal.append(
                journal_mod.EVENT_CELL_CACHED,
                cell_id=cell_id,
                label=self.labels[cell_id],
                worker=worker,
                attempts=0,
            )
            self.completed.add(cell_id)
            self._note_resolution(cached=True)
            info = self.workers.get(worker)
            if info is not None:
                info.cached += 1
            return {"status": CLAIM_CACHED}
        attempt = int(record.get("attempts", 0) if record else 0) + 1
        self.leases[cell_id] = _Lease(
            worker=worker, token=token, attempt=attempt,
            expires_mono=self.monotonic() + self.lease_ttl_s,
        )
        self.journal.append(
            journal_mod.EVENT_CELL_START,
            cell_id=cell_id,
            label=self.labels[cell_id],
            attempt=attempt,
            worker=worker,
        )
        return {"status": CLAIM_GRANTED, "attempt": attempt}

    def _op_renew(self, msg: dict[str, Any]) -> dict[str, Any]:
        lease = self._live_lease(msg["cell_id"])
        if lease is None or lease.worker != msg.get("worker"):
            return {"renewed": False}
        lease.expires_mono = self.monotonic() + self.lease_ttl_s
        return {"renewed": True}

    def _op_release(self, msg: dict[str, Any]) -> dict[str, Any]:
        lease = self.leases.get(msg["cell_id"])
        if lease is not None and lease.worker == msg.get("worker"):
            del self.leases[msg["cell_id"]]
            return {"released": True}
        return {"released": False}

    def _op_submit(self, msg: dict[str, Any]) -> dict[str, Any]:
        cell_id = msg["cell_id"]
        worker = str(msg.get("worker", "?"))
        metrics = msg["metrics"]
        if not isinstance(metrics, dict):
            return {"ok": False, "error": "metrics must be an object"}
        if cell_id in self.completed:
            # Exactly-once folding: a retried submit after a dropped ACK,
            # or a second worker finishing a re-issued cell, both land
            # here — acknowledged, deduped, never double-journaled.
            return {"accepted": True, "dedupe": True}
        if self.cache.get(cell_id) is None:
            self.cache.put(cell_id, metrics)
        self.queue.clear_failure(cell_id)
        self._fail_tokens.pop(cell_id, None)
        self.journal.append(
            journal_mod.EVENT_CELL_FINISH,
            cell_id=cell_id,
            label=self.labels.get(cell_id, cell_id),
            makespan_ms=metrics.get("makespan_ms"),
            attempts=int(msg.get("attempt", 1)),
            worker=worker,
            wall_time_s=msg.get("wall_time_s"),
            token=msg.get("token"),
        )
        self.completed.add(cell_id)
        self._note_resolution(cached=False)
        lease = self.leases.get(cell_id)
        if lease is not None and lease.worker == worker:
            del self.leases[cell_id]
        info = self.workers.get(worker)
        if info is not None:
            info.executed += 1
        return {"accepted": True, "dedupe": False}

    def _op_fail(self, msg: dict[str, Any]) -> dict[str, Any]:
        cell_id = msg["cell_id"]
        token = str(msg.get("token", ""))
        if cell_id in self.completed:
            return {"attempts": 0, "final": False, "dedupe": True}
        if token and self._fail_tokens.get(cell_id) == token:
            # Retry of a failure report whose ACK we lost: do not charge
            # the attempt budget twice.
            record = self.queue.failure(cell_id) or {"attempts": 1}
            return {
                "attempts": int(record.get("attempts", 1)),
                "final": bool(record.get("final")),
                "dedupe": True,
            }
        record = self.queue.record_failure(
            cell_id, str(msg.get("error", "?")), max_attempts=self.max_attempts
        )
        if token:
            self._fail_tokens[cell_id] = token
        self.journal.append(
            journal_mod.EVENT_CELL_ERROR,
            cell_id=cell_id,
            label=self.labels.get(cell_id, cell_id),
            error=str(msg.get("error", "?")),
            attempts=record["attempts"],
            worker=str(msg.get("worker", "?")),
        )
        info = self.workers.get(str(msg.get("worker", "?")))
        if info is not None:
            info.errors += 1
        return {
            "attempts": int(record["attempts"]),
            "final": bool(record.get("final")),
            "dedupe": False,
        }

    def _op_interrupted(self, msg: dict[str, Any]) -> dict[str, Any]:
        cell_id = msg["cell_id"]
        self.journal.append(
            journal_mod.EVENT_CELL_INTERRUPTED,
            cell_id=cell_id,
            label=self.labels.get(cell_id, cell_id),
            worker=str(msg.get("worker", "?")),
        )
        return {}

    def _op_heartbeat(self, msg: dict[str, Any]) -> dict[str, Any]:
        worker = str(msg["worker"])
        info = self.workers.setdefault(worker, _WorkerInfo())
        info.state = str(msg.get("state", "?"))
        info.current_cell = msg.get("current_cell")
        info.cells_done = int(msg.get("cells_done", 0))
        info.last_beat_mono = self.monotonic()
        try:
            # Durable mirror: lets `sweep --status --out DIR` on the
            # server host (and post-mortem forensics) see the fleet.
            self.queue.write_worker_status(
                worker,
                state=info.state,
                current_cell=info.current_cell,
                cells_done=info.cells_done,
                via="net",
            )
        except OSError:
            pass
        failed = len(self.queue.failed_final())
        return {
            "stop": self.stop_flag,
            "resolved": len(self.completed) + failed,
            "total": len(self.order),
        }

    def _op_stop(self, msg: dict[str, Any]) -> dict[str, Any]:
        self.stop_flag = True
        self.queue.request_stop(str(msg.get("reason", "coordinator")))
        return {}

    def _op_clear_stop(self, msg: dict[str, Any]) -> dict[str, Any]:
        self.stop_flag = False
        self.queue.clear_stop()
        return {}

    def _op_event(self, msg: dict[str, Any]) -> dict[str, Any]:
        """Append one campaign-scope journal event (coordinator use)."""
        kind = str(msg["kind"])
        fields = msg.get("fields") or {}
        if not isinstance(fields, dict):
            return {"ok": False, "error": "fields must be an object"}
        self.journal.append(kind, **fields)
        return {}

    def _op_fetch(self, msg: dict[str, Any]) -> dict[str, Any]:
        cell_ids = msg.get("cell_ids") or []
        return {
            "metrics": {cid: self.cache.get(cid) for cid in cell_ids}
        }

    def _op_status(self, msg: dict[str, Any]) -> dict[str, Any]:
        return {"snapshot": self.snapshot()}

    # -- status --------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A status snapshot shaped like ``status.campaign_snapshot``'s."""
        now_mono = self.monotonic()
        now_wall = time.time()
        ttl = self.lease_ttl_s
        failed = self.queue.failed_final()
        completed = self.completed & set(self.labels) if self.labels else set(self.completed)
        resolved = len(completed) + len(set(failed) & set(self.labels))
        total = len(self.order)

        workers: list[dict[str, Any]] = []
        for worker_id, info in sorted(self.workers.items()):
            age = max(0.0, now_mono - info.last_beat_mono)
            terminal = info.state in (
                "done", "stop_requested", "interrupted", "oneshot_drained",
                "max_cells", "server_lost",
            )
            if terminal:
                health = "exited"
            elif age <= ttl:
                health = "live"
            elif age <= _STALE_FACTOR * ttl:
                health = "stale"
            else:
                health = "dead"
            workers.append({
                "worker": worker_id,
                "health": health,
                "state": info.state,
                "heartbeat_age_s": round(age, 1),
                "clock_skew": False,  # server-side receive stamps: no skew
                "current_cell": info.current_cell,
                "executed": info.executed,
                "cached": info.cached,
                "errors": info.errors,
            })

        leases = []
        for cell_id, lease in sorted(self.leases.items()):
            remaining = lease.expires_mono - now_mono
            leases.append({
                "cell_id": cell_id,
                "owner": lease.worker,
                "age_s": round(max(0.0, ttl - max(0.0, remaining)), 1),
                "stale": remaining <= 0,
            })

        ts = sorted(self._resolution_wall_ts)
        rate = recent_rate = 0.0
        if len(ts) >= 2 and ts[-1] > ts[0]:
            rate = (len(ts) - 1) / (ts[-1] - ts[0])
        recent = [t for t in ts if t >= now_wall - _RECENT_WINDOW_S]
        if recent:
            recent_rate = len(recent) / _RECENT_WINDOW_S
        best = recent_rate or rate
        remaining_cells = total - resolved
        eta = remaining_cells / best if best > 0 and remaining_cells > 0 else None
        hit_rate = self.cached_resolutions / resolved if resolved else 0.0

        return {
            "out_dir": str(self.out_dir),
            "transport": "net",
            "grid_id": (self.manifest or {}).get("grid_id"),
            "created_ts": (self.manifest or {}).get("created_ts"),
            "lease_ttl_s": ttl,
            "cells": total,
            "resolved": resolved,
            "completed": len(completed),
            "failed": len(set(failed) & set(self.labels)),
            "in_flight": len(leases),
            "stop_requested": self.stop_flag,
            "clock_skew": False,
            "cells_per_s": round(rate, 4),
            "recent_cells_per_s": round(recent_rate, 4),
            "eta_s": round(eta, 1) if eta is not None else None,
            "cache_hit_rate": round(hit_rate, 4),
            "leases_expired": self.leases_expired,
            "workers": workers,
            "leases": leases,
        }

    # -- socket plumbing -----------------------------------------------------------

    def bind(self) -> tuple[str, int]:
        """Bind the listening socket and publish the endpoint record."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.host, self.port))
        self._listener.listen(128)
        self._listener.setblocking(False)
        self.host, self.port = self._listener.getsockname()[:2]
        _atomic_write_json(endpoint_path(self.out_dir), {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "proto": PROTOCOL_VERSION,
            "started_ts": round(time.time(), 3),
        })
        return self.host, self.port

    def serve(
        self,
        *,
        stop: threading.Event | None = None,
        poll_s: float = 0.2,
    ) -> None:
        """Run the event loop until ``stop`` is set (or forever)."""
        if not hasattr(self, "_listener"):
            self.bind()
        sel = selectors.DefaultSelector()
        sel.register(self._listener, selectors.EVENT_READ, data=None)
        conns: dict[socket.socket, dict[str, Any]] = {}

        def close_conn(sock: socket.socket) -> None:
            try:
                sel.unregister(sock)
            except (KeyError, ValueError):
                pass
            conns.pop(sock, None)
            try:
                sock.close()
            except OSError:
                pass

        try:
            while stop is None or not stop.is_set():
                for key, events in sel.select(timeout=poll_s):
                    if key.data is None:
                        try:
                            sock, _addr = self._listener.accept()
                        except OSError:
                            continue
                        sock.setblocking(False)
                        conns[sock] = {
                            "assembler": FrameAssembler(), "out": bytearray()
                        }
                        sel.register(
                            sock, selectors.EVENT_READ, data=conns[sock]
                        )
                        continue
                    sock = key.fileobj
                    state = key.data
                    if events & selectors.EVENT_READ:
                        try:
                            data = sock.recv(1 << 16)
                        except (BlockingIOError, InterruptedError):
                            data = None
                        except OSError:
                            close_conn(sock)
                            continue
                        if data == b"":
                            close_conn(sock)
                            continue
                        if data:
                            state["assembler"].feed(data)
                            try:
                                requests = state["assembler"].frames()
                            except FrameError:
                                close_conn(sock)  # desynchronized stream
                                continue
                            for msg in requests:
                                if not isinstance(msg, dict):
                                    continue
                                state["out"] += encode_frame(self.handle(msg))
                    if state["out"]:
                        try:
                            sent = sock.send(bytes(state["out"]))
                            del state["out"][:sent]
                        except (BlockingIOError, InterruptedError):
                            pass
                        except OSError:
                            close_conn(sock)
                            continue
                    want = selectors.EVENT_READ
                    if state["out"]:
                        want |= selectors.EVENT_WRITE
                    try:
                        sel.modify(sock, want, data=state)
                    except (KeyError, ValueError):
                        pass
        finally:
            for sock in list(conns):
                close_conn(sock)
            sel.close()
            try:
                self._listener.close()
            except OSError:
                pass
            try:
                endpoint_path(self.out_dir).unlink()
            except OSError:
                pass
            self.close()

    def close(self) -> None:
        try:
            self.journal.close()
        except (OSError, ValueError):
            pass
        # Refresh the index sidecar so the next server (or a --resume
        # coordinator) starts from this run's end instead of replaying.
        try:
            journal_mod.write_index(
                self.journal_path, journal_mod.replay(self.journal_path)
            )
        except OSError:
            pass


def run_server(
    out_dir: str | Path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    lease_ttl_s: float | None = None,
    stop: threading.Event | None = None,
    ready: Callable[[str, int], None] | None = None,
) -> None:
    """Construct, bind, announce, and serve (the CLI entry point)."""
    server = SweepServer(
        out_dir, host=host, port=port, lease_ttl_s=lease_ttl_s
    )
    bound_host, bound_port = server.bind()
    if ready is not None:
        ready(bound_host, bound_port)
    server.serve(stop=stop)
