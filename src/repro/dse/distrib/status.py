"""Live campaign status: cells/sec, ETA, worker health, cache hit rate.

Pure read-side: a snapshot is computed only from what is already durable
in the campaign directory (manifest, canonical journal + index, worker
shards, heartbeats, leases, failure records), so ``sweep --status`` can
be pointed at a running campaign from any host sharing the filesystem
without perturbing it — it takes no leases and writes nothing.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.dse import journal as journal_mod
from repro.dse.distrib.leases import lease_now
from repro.dse.distrib.queue import WorkQueue, load_manifest, manifest_cells

#: A worker whose heartbeat is older than this many lease ttls is dead.
_STALE_FACTOR = 3.0

#: Window for the "recent" throughput estimate feeding the ETA.
_RECENT_WINDOW_S = 60.0

#: Heartbeats this far in the future (vs this host's clock) are flagged
#: as cross-host clock skew rather than treated as rounding noise.
_SKEW_TOLERANCE_S = 0.5


def campaign_snapshot(out_dir: str | Path) -> dict[str, Any]:
    """One structured snapshot of a (possibly running) distributed campaign."""
    out_path = Path(out_dir)
    manifest = load_manifest(out_path)
    lease_ttl = float(manifest.get("lease_ttl_s", 30.0))
    ids: list[str] = []
    seen: set[str] = set()
    for cell in manifest_cells(manifest):
        if cell.cell_id not in seen:
            seen.add(cell.cell_id)
            ids.append(cell.cell_id)

    queue = WorkQueue(out_path, owner="status", lease_ttl_s=lease_ttl)

    # Canonical view (merged by the coordinator) ...
    state = journal_mod.replay_indexed(out_path / "journal.jsonl", write=False)
    completed = set(state.completed)
    # ... plus shard events the coordinator has not merged yet, which also
    # carry the timestamps the throughput estimate needs.
    resolution_ts: list[float] = []
    per_worker: dict[str, dict[str, Any]] = {}
    for shard in queue.shard_paths():
        worker = shard.stem
        finishes = cached = errors = 0
        last_ts = 0.0
        wall = 0.0
        for event in journal_mod.read_events(shard):
            kind = event.get("event")
            ts = float(event.get("ts", 0.0))
            if kind == journal_mod.EVENT_CELL_FINISH:
                finishes += 1
                resolution_ts.append(ts)
                wall += float(event.get("wall_time_s", 0.0))
                completed.add(event.get("cell_id"))
            elif kind == journal_mod.EVENT_CELL_CACHED:
                cached += 1
                resolution_ts.append(ts)
                completed.add(event.get("cell_id"))
            elif kind == journal_mod.EVENT_CELL_ERROR:
                errors += 1
            last_ts = max(last_ts, ts)
        per_worker[worker] = {
            "executed": finishes,
            "cached": cached,
            "errors": errors,
            "last_event_ts": last_ts,
            "wall_time_s": round(wall, 3),
        }
    completed.discard(None)
    completed &= set(seen)

    failed = queue.failed_final()
    resolved = len(completed) + len(set(failed) & seen)
    total = len(ids)

    # Worker health from heartbeats.  Heartbeat files carry the *writing
    # host's* wall clock; on a fleet whose clocks disagree a worker can
    # appear to have beaten in the future.  A negative raw age clamps to
    # zero (a worker that just wrote is live, whatever its clock says)
    # and is surfaced as ``clock_skew`` so the operator knows the ages in
    # this table are unreliable rather than quietly wrong.
    now = time.time()
    any_skew = False
    workers: list[dict[str, Any]] = []
    for worker_id, status in sorted(queue.worker_statuses().items()):
        raw_age = now - float(status.get("ts", 0.0))
        skewed = raw_age < -_SKEW_TOLERANCE_S
        any_skew = any_skew or skewed
        age = max(0.0, raw_age)
        terminal = status.get("state") in (
            "done", "stop_requested", "interrupted", "oneshot_drained",
            "max_cells", "server_lost",
        )
        if terminal:
            health = "exited"
        elif age <= lease_ttl:
            health = "live"
        elif age <= _STALE_FACTOR * lease_ttl:
            health = "stale"
        else:
            health = "dead"
        shard = per_worker.get(worker_id, {})
        workers.append({
            "worker": worker_id,
            "health": health,
            "state": status.get("state"),
            "heartbeat_age_s": round(age, 1),
            "clock_skew": skewed,
            "current_cell": status.get("current_cell"),
            "executed": shard.get("executed", 0),
            "cached": shard.get("cached", 0),
            "errors": shard.get("errors", 0),
        })

    # In-flight leases, judged against the shared filesystem's clock.
    fs_now = lease_now(queue.leases.root)
    leases = []
    for name, info in sorted(queue.leases.held().items()):
        leases.append({
            "cell_id": name,
            "owner": info.owner,
            "age_s": round(info.age_s(fs_now), 1),
            "stale": queue.leases.is_stale(info, fs_now),
        })

    # Throughput + ETA from resolution timestamps.
    resolution_ts.sort()
    rate = recent_rate = 0.0
    if len(resolution_ts) >= 2:
        span = resolution_ts[-1] - resolution_ts[0]
        if span > 0:
            rate = (len(resolution_ts) - 1) / span
    recent = [ts for ts in resolution_ts if ts >= now - _RECENT_WINDOW_S]
    if recent:
        recent_rate = len(recent) / _RECENT_WINDOW_S
    best_rate = recent_rate or rate
    remaining = total - resolved
    eta_s = remaining / best_rate if best_rate > 0 and remaining > 0 else None

    cached_total = sum(w.get("cached", 0) for w in per_worker.values())
    # cell_cached events the coordinator journaled directly (cache pass)
    cached_total += sum(
        1 for e in journal_mod.read_events(out_path / "journal.jsonl")
        if e.get("event") == journal_mod.EVENT_CELL_CACHED
        and e.get("worker") == "coordinator"
    )
    hit_rate = cached_total / resolved if resolved else 0.0

    return {
        "out_dir": str(out_path),
        "grid_id": manifest.get("grid_id"),
        "created_ts": manifest.get("created_ts"),
        "lease_ttl_s": lease_ttl,
        "cells": total,
        "resolved": resolved,
        "completed": len(completed),
        "failed": len(set(failed) & seen),
        "in_flight": len(leases),
        "stop_requested": queue.stop_requested(),
        "clock_skew": any_skew,
        "cells_per_s": round(rate, 4),
        "recent_cells_per_s": round(recent_rate, 4),
        "eta_s": round(eta_s, 1) if eta_s is not None else None,
        "cache_hit_rate": round(hit_rate, 4),
        "workers": workers,
        "leases": leases,
    }


def render_status(snap: dict[str, Any]) -> str:
    """Human-readable status block for ``sweep --status``."""
    lines: list[str] = []
    done = snap["resolved"]
    total = snap["cells"]
    pct = 100.0 * done / total if total else 100.0
    lines.append(
        f"campaign {snap['grid_id']} — {done}/{total} cells resolved "
        f"({pct:.1f}%), {snap['completed']} completed, "
        f"{snap['failed']} failed, {snap['in_flight']} in flight"
    )
    eta = f"{snap['eta_s']:.0f}s" if snap["eta_s"] is not None else "—"
    lines.append(
        f"throughput {snap['cells_per_s']:.2f} cells/s overall, "
        f"{snap['recent_cells_per_s']:.2f} recent; ETA {eta}; "
        f"cache hit rate {100.0 * snap['cache_hit_rate']:.0f}%"
    )
    if snap["stop_requested"] and done < total:
        lines.append("STOP requested — workers are draining")
    if snap.get("clock_skew"):
        lines.append(
            "WARNING: worker heartbeats are ahead of this host's clock — "
            "fleet clocks are skewed; heartbeat ages are clamped to 0"
        )
    if snap["workers"]:
        lines.append("")
        lines.append(
            f"{'worker':<24} {'health':<7} {'beat':>6} {'run':>5} "
            f"{'hit':>4} {'err':>4}  current cell"
        )
        for w in snap["workers"]:
            lines.append(
                f"{w['worker']:<24} {w['health']:<7} "
                f"{w['heartbeat_age_s']:>5.1f}s {w['executed']:>5} "
                f"{w['cached']:>4} {w['errors']:>4}  "
                f"{w['current_cell'] or '-'}"
            )
    else:
        lines.append("no workers have attached yet")
    stale = [entry for entry in snap["leases"] if entry["stale"]]
    if stale:
        lines.append(
            f"{len(stale)} stale lease(s) pending re-issue: "
            + ", ".join(entry["cell_id"][:8] for entry in stale[:6])
        )
    return "\n".join(lines)


def status_line(snap: dict[str, Any]) -> str:
    """One-line progress summary for the coordinator's live stream."""
    live = sum(1 for w in snap["workers"] if w["health"] == "live")
    eta = f"{snap['eta_s']:.0f}s" if snap["eta_s"] is not None else "—"
    return (
        f"[distrib] {snap['resolved']}/{snap['cells']} cells, "
        f"{live} workers live, "
        f"{snap['recent_cells_per_s'] or snap['cells_per_s']:.2f} cells/s, "
        f"ETA {eta}, cache {100.0 * snap['cache_hit_rate']:.0f}%"
    )
