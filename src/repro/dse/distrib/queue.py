"""Durable lease-based work queue for distributed sweep campaigns.

The queue is a directory protocol, not a server: coordinator and workers
share nothing but a campaign directory (same host, or many hosts over a
shared filesystem).  Layout under ``<campaign>/distrib/``::

    manifest.json        the whole campaign: every cell, in grid order
    leases/              one lease file per in-flight cell (see leases.py)
    journals/<w>.jsonl   per-worker append-only journal shards
    workers/<w>.json     per-worker heartbeat + status snapshots
    failed/<id>.json     per-cell failure records (attempts, last error)
    STOP                 coordinator's drain request to all workers

A cell is *resolved* when its result is in the shared cache (completed)
or its failure record says the attempt budget is exhausted (failed).
Everything else is claimable work; the lease protocol guarantees one
computing worker per cell at a time, and a crashed worker's lease
expires so its cell is re-issued.  Failure records are only ever written
by the cell's current lease holder, so read-modify-write on them is
race-free by construction.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any

from repro.common.errors import ReproError
from repro.dse.distrib.leases import LeaseDir
from repro.dse.grid import SweepCell

MANIFEST_VERSION = 1

#: Default lease ttl: a worker that misses heartbeats for this long is
#: presumed dead and its cell is re-issued.
DEFAULT_LEASE_TTL_S = 30.0


class DistribError(ReproError):
    """The distributed campaign directory is missing or inconsistent."""


def distrib_dir(out_dir: str | Path) -> Path:
    return Path(out_dir) / "distrib"


def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _atomic_write_json(path: Path, doc: Any) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
    os.replace(tmp, path)


def _read_json(path: Path) -> Any | None:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


# -- manifest --------------------------------------------------------------------


def write_manifest(
    out_dir: str | Path,
    cells: list[SweepCell],
    *,
    grid_id: str,
    max_attempts: int,
    timeout_s: float | None,
    lease_ttl_s: float,
) -> Path:
    """Partition the campaign into the durable queue (atomic, idempotent)."""
    root = distrib_dir(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    doc = {
        "version": MANIFEST_VERSION,
        "grid_id": grid_id,
        "created_ts": round(time.time(), 3),
        "max_attempts": max_attempts,
        "timeout_s": timeout_s,
        "lease_ttl_s": lease_ttl_s,
        "cells": [cell.to_dict() for cell in cells],
    }
    path = root / "manifest.json"
    _atomic_write_json(path, doc)
    return path


def load_manifest(out_dir: str | Path) -> dict[str, Any]:
    path = distrib_dir(out_dir) / "manifest.json"
    doc = _read_json(path)
    if doc is None:
        raise DistribError(
            f"no campaign manifest at {path} — start the coordinator first "
            "(dssoc-emulate sweep --workers N --out DIR)"
        )
    if doc.get("version") != MANIFEST_VERSION:
        raise DistribError(
            f"manifest version {doc.get('version')!r} unsupported "
            f"(this build speaks {MANIFEST_VERSION})"
        )
    return doc


def manifest_cells(manifest: dict[str, Any]) -> list[SweepCell]:
    return [SweepCell.from_dict(d) for d in manifest["cells"]]


# -- queue -----------------------------------------------------------------------


class WorkQueue:
    """One process's handle on the campaign's shared queue directory."""

    def __init__(
        self,
        out_dir: str | Path,
        *,
        owner: str,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ) -> None:
        self.out_dir = Path(out_dir)
        self.root = distrib_dir(out_dir)
        self.owner = owner
        self.leases = LeaseDir(
            self.root / "leases", owner=owner, ttl_s=lease_ttl_s
        )
        self.journals_dir = self.root / "journals"
        self.workers_dir = self.root / "workers"
        self.failed_dir = self.root / "failed"
        for sub in (self.journals_dir, self.workers_dir, self.failed_dir):
            sub.mkdir(parents=True, exist_ok=True)

    # -- stop flag -------------------------------------------------------------------

    @property
    def stop_path(self) -> Path:
        return self.root / "STOP"

    def request_stop(self, reason: str = "coordinator") -> None:
        _atomic_write_json(
            self.stop_path, {"reason": reason, "ts": round(time.time(), 3)}
        )

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except OSError:
            pass

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    # -- cell claims -----------------------------------------------------------------

    def try_claim(self, cell_id: str) -> bool:
        """Claim a cell for execution (breaking an expired holder's lease)."""
        return self.leases.acquire(cell_id)

    def renew_claim(self, cell_id: str) -> bool:
        return self.leases.renew(cell_id)

    def release_claim(self, cell_id: str) -> bool:
        return self.leases.release(cell_id)

    def holds_claim(self, cell_id: str) -> bool:
        return self.leases.holds(cell_id)

    def claimed_elsewhere(self, cell_id: str) -> bool:
        """Held by a live peer? (A stale lease reads as claimable.)"""
        info = self.leases.info(cell_id)
        if info is None or info.owner == self.owner:
            return False
        return not self.leases.is_stale(info)

    # -- failure records (lease-holder-only writes) ----------------------------------

    def failure_path(self, cell_id: str) -> Path:
        return self.failed_dir / f"{cell_id}.json"

    def record_failure(
        self, cell_id: str, error: str, *, max_attempts: int
    ) -> dict[str, Any]:
        """Charge one failed attempt; marks the cell final at the budget.

        Must only be called while holding the cell's lease — that is what
        makes the read-modify-write safe with many workers.
        """
        record = _read_json(self.failure_path(cell_id))
        if not isinstance(record, dict):
            record = {"cell_id": cell_id, "attempts": 0, "errors": []}
        record["attempts"] = int(record.get("attempts", 0)) + 1
        record.setdefault("errors", []).append(error)
        record["errors"] = record["errors"][-8:]  # bound the record size
        record["final"] = record["attempts"] >= max_attempts
        record["worker"] = self.owner
        record["ts"] = round(time.time(), 3)
        _atomic_write_json(self.failure_path(cell_id), record)
        return record

    def clear_failure(self, cell_id: str) -> None:
        try:
            self.failure_path(cell_id).unlink()
        except OSError:
            pass

    def failure(self, cell_id: str) -> dict[str, Any] | None:
        record = _read_json(self.failure_path(cell_id))
        return record if isinstance(record, dict) else None

    def failed_final(self) -> dict[str, dict[str, Any]]:
        """All cells whose attempt budget is exhausted."""
        out: dict[str, dict[str, Any]] = {}
        for path in self.failed_dir.glob("*.json"):
            record = _read_json(path)
            if isinstance(record, dict) and record.get("final"):
                out[path.stem] = record
        return out

    # -- worker heartbeats -----------------------------------------------------------

    def worker_path(self, worker_id: str) -> Path:
        return self.workers_dir / f"{worker_id}.json"

    def write_worker_status(self, worker_id: str, **fields: Any) -> None:
        _atomic_write_json(
            self.worker_path(worker_id),
            {"worker": worker_id, "ts": round(time.time(), 3), **fields},
        )

    def worker_statuses(self) -> dict[str, dict[str, Any]]:
        out: dict[str, dict[str, Any]] = {}
        for path in self.workers_dir.glob("*.json"):
            doc = _read_json(path)
            if isinstance(doc, dict):
                out[path.stem] = doc
        return out

    def shard_path(self, worker_id: str) -> Path:
        return self.journals_dir / f"{worker_id}.jsonl"

    def shard_paths(self) -> list[Path]:
        return sorted(self.journals_dir.glob("*.jsonl"))
