"""Shared-filesystem variant of the campaign result cache.

:class:`SharedResultCache` keeps the PR 1 content-hash store's on-disk
format byte-for-byte (entries written by either class read identically)
and layers on what concurrent campaigns on a shared mount need:

* **execution locks** — an owner-checked lease per cell ID under
  ``<cache>/locks/``.  A worker takes the lock before computing a cell,
  so two *different campaigns* that happen to share cells (same content
  hash) do not compute the same cell twice: the second campaign's worker
  sees the lock, moves on to other work, and picks the result up as a
  cache hit once the first finishes.  Locks are leases, not mutexes —
  a crashed holder's lock expires and the cell becomes computable again.
* **hit/miss/dedupe accounting** — feeds the live status view's cache
  hit rate.
* **put_if_absent** — the natural write operation when several writers
  may race one cell: the first rename wins and later writers are counted
  as dedupes (their payloads are identical anyway — cell results are
  deterministic functions of the cell parameters).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.common.retry import FS_RETRY
from repro.dse.cache import ResultCache
from repro.dse.distrib.leases import LeaseDir

#: Default execution-lock lease: generous, because a lock only matters
#: while another campaign is mid-computation of the same cell.
DEFAULT_LOCK_TTL_S = 600.0


class SharedResultCache(ResultCache):
    """A :class:`ResultCache` safe for many concurrent writer processes."""

    def __init__(
        self,
        root: str | Path,
        *,
        owner: str,
        lock_ttl_s: float = DEFAULT_LOCK_TTL_S,
    ) -> None:
        super().__init__(root)
        self.owner = owner
        self.locks = LeaseDir(
            self.root / "locks", owner=owner, ttl_s=lock_ttl_s
        )
        self.hits = 0
        self.misses = 0
        self.dedupes = 0

    # -- instrumented reads ----------------------------------------------------------

    def get(self, cell_id: str) -> dict[str, Any] | None:
        payload = super().get(cell_id)
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def peek(self, cell_id: str) -> dict[str, Any] | None:
        """An uncounted read (status views, double-checks under a lock)."""
        return super().get(cell_id)

    # -- execution locks -------------------------------------------------------------

    def try_lock(self, cell_id: str) -> bool:
        """Claim the right to *compute* this cell (breaks stale locks)."""
        return self.locks.acquire(cell_id)

    def renew_lock(self, cell_id: str) -> bool:
        return self.locks.renew(cell_id)

    def unlock(self, cell_id: str) -> bool:
        return self.locks.release(cell_id)

    def locked_by_other(self, cell_id: str) -> bool:
        """Is someone else (alive, per the lease ttl) computing this cell?"""
        info = self.locks.info(cell_id)
        if info is None or info.owner == self.owner:
            return False
        return not self.locks.is_stale(info)

    # -- writes ----------------------------------------------------------------------

    def put(self, cell_id: str, metrics: dict[str, Any]) -> Path:
        """Store with bounded retry on transient filesystem errors.

        On a shared (typically NFS) mount a write can fail with
        ``EINTR``/``ESTALE``/``EAGAIN`` without anything being wrong with
        the result; dropping a computed cell over one such hiccup would
        force a whole re-execution.  The atomic temp-then-rename write is
        safely repeatable, so it runs under the shared bounded-backoff
        policy (the same one the network transport uses for its calls).
        """
        return FS_RETRY.call(lambda: ResultCache.put(self, cell_id, metrics))

    def put_if_absent(self, cell_id: str, metrics: dict[str, Any]) -> bool:
        """Store unless a valid entry already exists; True when we wrote.

        Losing the race is not an error — cell results are deterministic,
        so the existing entry holds the same numbers; it is counted as a
        dedupe for the status view.
        """
        if self.peek(cell_id) is not None:
            self.dedupes += 1
            return False
        self.put(cell_id, metrics)
        return True

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "dedupes": self.dedupes,
        }
