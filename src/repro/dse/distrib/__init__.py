"""Distributed sweep service: sharded multi-worker DSE campaigns.

The PR 1 campaign engine runs every campaign on one host's process
pool; this package turns it into a coordination/transport layer that
shards cells across any number of independent worker processes — same
host, or many hosts over a shared filesystem — with nothing but files
as the protocol:

* :mod:`repro.dse.distrib.leases` — NFS-safe lease primitives
  (hardlink acquire, mtime heartbeat, owner-checked release,
  rename-arbitrated stale break);
* :mod:`repro.dse.distrib.queue` — the durable work queue: manifest,
  per-cell leases, per-worker journal shards, heartbeats, failure
  records, stop flag;
* :mod:`repro.dse.distrib.shared_cache` — the shared-filesystem variant
  of the content-hash result cache (execution locks dedupe concurrent
  campaigns);
* :mod:`repro.dse.distrib.worker` — the worker loop
  (``dssoc-emulate sweep-worker``);
* :mod:`repro.dse.distrib.coordinator` — campaign orchestration, shard
  merge, liveness (``dssoc-emulate sweep --workers N``);
* :mod:`repro.dse.distrib.status` — live campaign status
  (``dssoc-emulate sweep --status``).

See ``docs/distributed.md`` for the architecture, the lease protocol,
and the failure matrix.
"""

from repro.dse.distrib.coordinator import (
    ShardMerger,
    merge_once,
    run_distributed_campaign,
)
from repro.dse.distrib.leases import LeaseDir, LeaseInfo
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    DistribError,
    WorkQueue,
    default_worker_id,
    load_manifest,
    manifest_cells,
    write_manifest,
)
from repro.dse.distrib.shared_cache import SharedResultCache
from repro.dse.distrib.status import campaign_snapshot, render_status, status_line
from repro.dse.distrib.worker import WorkerSummary, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "DistribError",
    "LeaseDir",
    "LeaseInfo",
    "ShardMerger",
    "SharedResultCache",
    "WorkQueue",
    "WorkerSummary",
    "campaign_snapshot",
    "default_worker_id",
    "load_manifest",
    "manifest_cells",
    "merge_once",
    "render_status",
    "run_distributed_campaign",
    "run_worker",
    "status_line",
    "write_manifest",
]
