"""Distributed sweep service: sharded multi-worker DSE campaigns.

The PR 1 campaign engine runs every campaign on one host's process
pool; this package turns it into a coordination/transport layer that
shards cells across any number of independent worker processes — same
host, many hosts over a shared filesystem, or fleets with *no* shared
mount speaking TCP to a queue server:

* :mod:`repro.dse.distrib.leases` — NFS-safe lease primitives
  (hardlink acquire, mtime heartbeat, owner-checked release,
  rename-arbitrated stale break);
* :mod:`repro.dse.distrib.queue` — the durable work queue: manifest,
  per-cell leases, per-worker journal shards, heartbeats, failure
  records, stop flag;
* :mod:`repro.dse.distrib.shared_cache` — the shared-filesystem variant
  of the content-hash result cache (execution locks dedupe concurrent
  campaigns);
* :mod:`repro.dse.distrib.transport` — the
  :class:`~repro.dse.distrib.transport.WorkerTransport` interface both
  protocols implement, with the directory protocol refactored behind it
  (:class:`~repro.dse.distrib.transport.FsTransport`, bit-identical on
  disk);
* :mod:`repro.dse.distrib.net` — the network transport: a
  dependency-free TCP queue server (``dssoc-emulate sweep-server``),
  framed-JSON client with retry/backoff and idempotency tokens, and a
  worker-local result spool for partitions;
* :mod:`repro.dse.distrib.worker` — the transport-agnostic worker loop
  (``dssoc-emulate sweep-worker``);
* :mod:`repro.dse.distrib.coordinator` — campaign orchestration, shard
  merge, liveness (``dssoc-emulate sweep --workers N`` and
  ``sweep --server HOST:PORT``);
* :mod:`repro.dse.distrib.status` — live campaign status
  (``dssoc-emulate sweep --status``).

See ``docs/distributed.md`` for the architecture, the lease protocol,
the wire protocol, and the failure matrix.
"""

from repro.dse.distrib.coordinator import (
    ShardMerger,
    merge_once,
    run_distributed_campaign,
    run_networked_campaign,
)
from repro.dse.distrib.leases import LeaseDir, LeaseInfo
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    DistribError,
    WorkQueue,
    default_worker_id,
    load_manifest,
    manifest_cells,
    write_manifest,
)
from repro.dse.distrib.shared_cache import SharedResultCache
from repro.dse.distrib.status import campaign_snapshot, render_status, status_line
from repro.dse.distrib.transport import (
    ClaimReply,
    FsTransport,
    TransportError,
    WorkerTransport,
)
from repro.dse.distrib.worker import WorkerSummary, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL_S",
    "ClaimReply",
    "DistribError",
    "FsTransport",
    "LeaseDir",
    "LeaseInfo",
    "ShardMerger",
    "SharedResultCache",
    "TransportError",
    "WorkQueue",
    "WorkerSummary",
    "WorkerTransport",
    "campaign_snapshot",
    "default_worker_id",
    "load_manifest",
    "manifest_cells",
    "merge_once",
    "render_status",
    "run_distributed_campaign",
    "run_networked_campaign",
    "run_worker",
    "status_line",
    "write_manifest",
]
