"""Filesystem lease primitives for multi-host coordination.

Everything in the distributed sweep service that needs mutual exclusion —
cell claims in the work queue, execution locks on the shared result
cache — goes through one primitive: a *lease file* whose existence means
"held", whose JSON body names the owner, and whose mtime is the owner's
heartbeat.  The protocol uses only operations that are atomic on
NFS-style shared filesystems:

* **acquire** — write a private temp file, then ``os.link`` it to the
  lease name.  ``link`` fails with ``EEXIST`` when the lease is already
  held; unlike ``O_CREAT|O_EXCL``, it is atomic even on NFSv2 clients
  (the classic mail-spool locking technique).
* **renew** — ``os.utime`` on the lease path.  The file server's clock
  stamps the mtime, so expiry comparisons never mix two hosts' clocks:
  staleness is judged from the shared filesystem's own time base.
* **release** — *owner-checked*: the body is re-read and the lease is
  only unlinked when it still names this owner, so a worker that lost
  its lease to expiry can never release the new holder's claim.
* **break stale** — ``os.rename`` the expired lease aside to a
  uniquely-named tombstone first.  Rename is atomic and the source
  vanishes, so of N workers racing to break the same stale lease exactly
  one wins; the rest see ``ENOENT`` and move on.  The winner unlinks the
  tombstone and retries a normal acquire (which it can still lose to a
  faster peer — acquisition stays the single point of truth).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any


def lease_now(path: Path) -> float:
    """The shared filesystem's idea of "now" (its clock, not ours).

    Touching a probe file and reading its mtime back samples the file
    server's clock, which is the same clock that stamps lease renewals —
    so expiry decisions are consistent across hosts with skewed clocks.
    """
    probe = path / f".clock.{os.getpid()}"
    try:
        with open(probe, "w", encoding="utf-8"):
            pass
        return probe.stat().st_mtime
    finally:
        try:
            probe.unlink()
        except OSError:
            pass


@dataclass(frozen=True)
class LeaseInfo:
    """A snapshot of one held lease."""

    owner: str
    acquired_ts: float
    mtime: float

    def age_s(self, now: float) -> float:
        return max(0.0, now - self.mtime)


class LeaseDir:
    """A directory of lease files, one per resource name."""

    def __init__(self, root: str | Path, *, owner: str, ttl_s: float) -> None:
        if ttl_s <= 0:
            raise ValueError(f"lease ttl must be positive, got {ttl_s}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.owner = owner
        self.ttl_s = float(ttl_s)
        self._nonce = 0

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.lease"

    # -- inspection ------------------------------------------------------------------

    def info(self, name: str) -> LeaseInfo | None:
        """Owner and age of a lease, or None when unheld/unreadable."""
        path = self.path_for(name)
        try:
            mtime = path.stat().st_mtime
            with open(path, encoding="utf-8") as fh:
                body = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(body, dict):
            return None
        return LeaseInfo(
            owner=str(body.get("owner", "?")),
            acquired_ts=float(body.get("acquired_ts", 0.0)),
            mtime=mtime,
        )

    def held(self) -> dict[str, LeaseInfo]:
        """All currently-present leases, keyed by resource name."""
        out: dict[str, LeaseInfo] = {}
        for path in self.root.glob("*.lease"):
            name = path.name[: -len(".lease")]
            info = self.info(name)
            if info is not None:
                out[name] = info
        return out

    def is_stale(self, info: LeaseInfo, now: float | None = None) -> bool:
        if now is None:
            now = lease_now(self.root)
        return info.age_s(now) > self.ttl_s

    # -- protocol --------------------------------------------------------------------

    def _unique(self, tag: str) -> Path:
        self._nonce += 1
        return self.root / f".{tag}.{self.owner}.{os.getpid()}.{self._nonce}"

    def try_acquire(self, name: str, **meta: Any) -> bool:
        """One attempt to take the lease; never blocks, never breaks stale."""
        tmp = self._unique(f"claim.{name}")
        body = {"owner": self.owner, "acquired_ts": time.time(), **meta}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh)
        try:
            os.link(tmp, self.path_for(name))
            return True
        except FileExistsError:
            return False
        except OSError:
            # Filesystems without hardlinks (rare): fall back to O_EXCL.
            try:
                fd = os.open(
                    self.path_for(name), os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(body, fh)
            return True
        finally:
            try:
                tmp.unlink()
            except OSError:
                pass

    def break_stale(self, name: str, now: float | None = None) -> bool:
        """Tear down an expired lease; True when *this* caller won the race."""
        info = self.info(name)
        if info is None or not self.is_stale(info, now):
            return False
        tombstone = self._unique(f"stale.{name}")
        try:
            os.rename(self.path_for(name), tombstone)
        except OSError:
            return False  # someone else broke (or renewed) it first
        try:
            tombstone.unlink()
        except OSError:
            pass
        return True

    def acquire(self, name: str, **meta: Any) -> bool:
        """Take the lease, breaking it first if the holder's renewals stopped."""
        if self.try_acquire(name, **meta):
            return True
        self.break_stale(name)
        return self.try_acquire(name, **meta)

    def renew(self, name: str) -> bool:
        """Heartbeat: bump the lease mtime; False when the lease was lost."""
        try:
            os.utime(self.path_for(name))
            return True
        except OSError:
            return False

    def holds(self, name: str) -> bool:
        """Does this owner still hold the lease (not expired-and-stolen)?"""
        info = self.info(name)
        return info is not None and info.owner == self.owner

    def release(self, name: str) -> bool:
        """Owner-checked unlink; True when this owner's lease was removed."""
        if not self.holds(name):
            return False
        try:
            self.path_for(name).unlink()
            return True
        except OSError:
            return False

    def sweep_debris(self) -> int:
        """Remove abandoned claim temps and tombstones; returns the count."""
        removed = 0
        for path in self.root.glob(".claim.*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in self.root.glob(".stale.*"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
