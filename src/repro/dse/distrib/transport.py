"""The transport abstraction between sweep participants and campaign state.

A *transport* is everything a worker (or coordinator, or status reader)
needs from the campaign's shared state — manifest, cell claims, result
submission, failure records, heartbeats, journal events — expressed as
one interface with two implementations:

* :class:`FsTransport` (here) — the PR 5 directory protocol, refactored
  behind the interface.  Every method maps onto exactly the lease /
  queue / shared-cache / journal-shard calls the pre-refactor worker
  loop made, in the same order, so filesystem campaigns stay
  bit-identical: same cell IDs, same journal events and fields, same
  on-disk layout readable by old readers.
* :class:`~repro.dse.distrib.net.client.NetTransport` — the TCP client
  for fleets without a shared mount; same calls become framed requests
  to ``dssoc-emulate sweep-server`` with retry/backoff and idempotency
  tokens.

The worker loop (:func:`repro.dse.distrib.worker.run_worker`) is written
purely against this interface and cannot tell the difference; the chaos
equivalence gate in ``tests/test_chaos_net.py`` pins that both
implementations fold to identical campaign results.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.dse import journal as journal_mod
from repro.dse.distrib.queue import (
    DEFAULT_LEASE_TTL_S,
    DistribError,
    WorkQueue,
    load_manifest,
)
from repro.dse.distrib.shared_cache import SharedResultCache
from repro.dse.journal import Journal

#: Claim outcomes (the strings cross the wire in net mode).
CLAIM_GRANTED = "granted"        #: lease taken; caller must run the cell
CLAIM_CACHED = "cached"          #: resolved via cache hit under our claim
CLAIM_RESOLVED = "resolved"      #: already completed elsewhere; no credit
CLAIM_FAILED_FINAL = "failed_final"  #: attempt budget exhausted
CLAIM_BUSY = "busy"              #: leased/locked by a live peer


class TransportError(DistribError):
    """A transport call failed after its whole retry budget.

    Raised only by the network transport (the directory protocol's
    failure mode is the filesystem's, which the queue layer already
    absorbs or retries).  Workers degrade gracefully on it: spool the
    in-flight result, keep trying to reconnect, give up cleanly when
    the reconnect budget is spent.
    """


@dataclass(frozen=True)
class ClaimReply:
    """Outcome of one claim attempt."""

    status: str
    attempt: int = 1

    @property
    def granted(self) -> bool:
        return self.status == CLAIM_GRANTED


def new_token(worker_id: str, seq: int) -> str:
    """An idempotency token: unique per logical operation, stable across
    its retries.  Embeds the worker for journal forensics."""
    return f"{worker_id}-{os.getpid()}-{seq}-{os.urandom(4).hex()}"


class WorkerTransport(ABC):
    """What one worker process needs from the campaign, transport-agnostic.

    Lifecycle: ``wait_ready`` → (``initial_resolved``, many passes of
    ``claim``/``begin``/``submit``/``fail``/``release`` with a heartbeat
    thread calling ``renew``/``heartbeat``) → ``close``.
    """

    worker_id: str

    # -- attach --------------------------------------------------------------------

    @abstractmethod
    def wait_ready(self, *, timeout_s: float, poll_s: float) -> dict[str, Any]:
        """Block until the campaign manifest exists; return it."""

    @abstractmethod
    def initial_resolved(self) -> set[str]:
        """Cells already completed when this worker attached."""

    # -- queue ---------------------------------------------------------------------

    @abstractmethod
    def stop_requested(self) -> bool:
        """Has the coordinator asked the fleet to drain?"""

    @abstractmethod
    def claim(self, cell_id: str, label: str, token: str) -> ClaimReply:
        """Try to take the cell for execution (see CLAIM_* outcomes)."""

    @abstractmethod
    def release(self, cell_id: str) -> None:
        """Give the cell's claim back (idempotent; safe when not held)."""

    @abstractmethod
    def renew(self, cell_id: str) -> None:
        """Heartbeat the held claim (called from the heartbeat thread)."""

    @abstractmethod
    def heartbeat(self, **status: Any) -> None:
        """Publish worker liveness/status (heartbeat thread)."""

    # -- resolution ----------------------------------------------------------------

    @abstractmethod
    def begin(self, cell_id: str, label: str, attempt: int) -> None:
        """Journal the start of an execution attempt."""

    @abstractmethod
    def submit(
        self,
        cell_id: str,
        label: str,
        metrics: dict[str, Any],
        *,
        attempt: int,
        wall_time_s: float,
        token: str,
    ) -> None:
        """Persist a computed result exactly once (token-idempotent)."""

    @abstractmethod
    def fail(self, cell_id: str, label: str, error: str, token: str) -> dict[str, Any]:
        """Charge one failed attempt; returns ``{"attempts": n, "final": bool}``."""

    @abstractmethod
    def interrupted(self, cell_id: str, label: str) -> None:
        """Journal an attempt cut short by a signal (cell stays incomplete)."""

    # -- idle-pass helpers ---------------------------------------------------------

    def poll_resolved(self) -> set[str] | None:
        """Freshly-completed cells learned out of band, or None.

        The directory protocol returns None — the filesystem worker
        discovers peer resolutions through failure records and cache
        hits exactly as before the refactor.  The network transport
        returns the server's completed set so idle workers converge
        without one claim round-trip per cell.
        """
        return None

    def flush_spool(self) -> int:
        """Re-submit locally-spooled results; returns how many flushed."""
        return 0

    def spooled(self) -> int:
        """Results persisted locally but not yet acknowledged."""
        return 0

    # -- teardown ------------------------------------------------------------------

    @abstractmethod
    def close(self) -> None:
        """Release transport resources (never raises)."""


class FsTransport(WorkerTransport):
    """The shared-filesystem directory protocol behind the interface.

    This is a *rehousing*, not a redesign: the bodies below are the
    exact call sequences the PR 5 worker loop made inline, so the
    on-disk protocol (lease files, journal shards, failure records,
    heartbeat files, cache entries) is unchanged byte for byte.
    """

    def __init__(
        self,
        out_dir: str | Path,
        *,
        worker_id: str,
        lease_ttl_s: float | None = None,
    ) -> None:
        self.worker_id = worker_id
        self.out_dir = Path(out_dir)
        self._ttl_override = lease_ttl_s
        self.queue: WorkQueue | None = None
        self.cache: SharedResultCache | None = None
        self.journal: Journal | None = None
        self.manifest: dict[str, Any] | None = None

    # -- attach --------------------------------------------------------------------

    def wait_ready(self, *, timeout_s: float, poll_s: float) -> dict[str, Any]:
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                manifest = load_manifest(self.out_dir)
                break
            except DistribError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(poll_s, 0.2))
        ttl = float(
            self._ttl_override
            or manifest.get("lease_ttl_s")
            or DEFAULT_LEASE_TTL_S
        )
        timeout = manifest.get("timeout_s")
        self.manifest = manifest
        self.queue = WorkQueue(self.out_dir, owner=self.worker_id, lease_ttl_s=ttl)
        self.cache = SharedResultCache(
            self.out_dir / "cache",
            owner=self.worker_id,
            lock_ttl_s=max(ttl, float(timeout) if timeout else ttl),
        )
        self.journal = Journal(self.queue.shard_path(self.worker_id), resume=True)
        return manifest

    def initial_resolved(self) -> set[str]:
        return set(
            journal_mod.replay_indexed(
                self.out_dir / "journal.jsonl", write=False
            ).completed
        )

    # -- queue ---------------------------------------------------------------------

    def stop_requested(self) -> bool:
        assert self.queue is not None
        return self.queue.stop_requested()

    def claim(self, cell_id: str, label: str, token: str) -> ClaimReply:
        assert self.queue is not None and self.cache is not None
        assert self.journal is not None and self.manifest is not None
        queue, cache = self.queue, self.cache
        record = queue.failure(cell_id)
        if record and record.get("final"):
            return ClaimReply(CLAIM_FAILED_FINAL)
        if queue.claimed_elsewhere(cell_id):
            return ClaimReply(CLAIM_BUSY)
        if not queue.try_claim(cell_id):
            return ClaimReply(CLAIM_BUSY)
        # -- under this cell's lease (released by the caller's finally) ----
        record = queue.failure(cell_id)
        if record and record.get("final"):
            return ClaimReply(CLAIM_FAILED_FINAL)
        if cache.peek(cell_id) is not None:
            # Resolved elsewhere (a peer, or another campaign sharing
            # cells) since our last look: claim it as a cache hit exactly
            # once — we hold the lease.
            self.journal.append(
                journal_mod.EVENT_CELL_CACHED,
                cell_id=cell_id,
                label=label,
                worker=self.worker_id,
                attempts=0,
            )
            return ClaimReply(CLAIM_CACHED)
        if cache.locked_by_other(cell_id):
            # Another campaign is computing this very cell on the shared
            # cache; let it finish, come back later.
            return ClaimReply(CLAIM_BUSY)
        attempt = int(record.get("attempts", 0) if record else 0) + 1
        return ClaimReply(CLAIM_GRANTED, attempt=attempt)

    def release(self, cell_id: str) -> None:
        assert self.queue is not None and self.cache is not None
        self.cache.unlock(cell_id)
        self.queue.release_claim(cell_id)

    def renew(self, cell_id: str) -> None:
        assert self.queue is not None and self.cache is not None
        self.queue.renew_claim(cell_id)
        self.cache.renew_lock(cell_id)

    def heartbeat(self, **status: Any) -> None:
        assert self.queue is not None and self.cache is not None
        try:
            self.queue.write_worker_status(
                self.worker_id, cache=self.cache.stats(), **status
            )
        except OSError:
            pass  # a transiently unwritable status file is not fatal

    # -- resolution ----------------------------------------------------------------

    def begin(self, cell_id: str, label: str, attempt: int) -> None:
        assert self.journal is not None and self.cache is not None
        self.journal.append(
            journal_mod.EVENT_CELL_START,
            cell_id=cell_id,
            label=label,
            attempt=attempt,
            worker=self.worker_id,
        )
        self.cache.try_lock(cell_id)

    def submit(
        self,
        cell_id: str,
        label: str,
        metrics: dict[str, Any],
        *,
        attempt: int,
        wall_time_s: float,
        token: str,
    ) -> None:
        assert self.queue is not None and self.cache is not None
        assert self.journal is not None
        self.cache.put_if_absent(cell_id, metrics)
        self.queue.clear_failure(cell_id)
        self.journal.append(
            journal_mod.EVENT_CELL_FINISH,
            cell_id=cell_id,
            label=label,
            makespan_ms=metrics.get("makespan_ms"),
            attempts=attempt,
            worker=self.worker_id,
            wall_time_s=round(wall_time_s, 6),
        )

    def fail(self, cell_id: str, label: str, error: str, token: str) -> dict[str, Any]:
        assert self.queue is not None and self.journal is not None
        assert self.manifest is not None
        max_attempts = max(1, int(self.manifest.get("max_attempts", 1)))
        record = self.queue.record_failure(
            cell_id, error, max_attempts=max_attempts
        )
        self.journal.append(
            journal_mod.EVENT_CELL_ERROR,
            cell_id=cell_id,
            label=label,
            error=error,
            attempts=record["attempts"],
            worker=self.worker_id,
        )
        return record

    def interrupted(self, cell_id: str, label: str) -> None:
        assert self.journal is not None
        self.journal.append(
            journal_mod.EVENT_CELL_INTERRUPTED,
            cell_id=cell_id,
            label=label,
            worker=self.worker_id,
        )

    # -- teardown ------------------------------------------------------------------

    def close(self) -> None:
        if self.journal is not None:
            try:
                self.journal.close()
            except OSError:
                pass
            self.journal = None
