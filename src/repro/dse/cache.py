"""Content-addressed on-disk result store for campaign cells.

Each completed cell's metrics are stored as ``<cache_dir>/<cell_id>.json``
where the cell ID is a content hash of the cell's parameters
(:attr:`repro.dse.grid.SweepCell.cell_id`).  Re-running any campaign —
the same one, a superset grid, or a different campaign that happens to
share cells — therefore skips every cell whose result already exists.

Writes are atomic (temp file + ``os.replace``) so a campaign killed
mid-write can never leave a truncated entry behind; a corrupt or
unreadable entry is treated as a miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

#: Bumped whenever the metrics payload schema changes incompatibly;
#: entries written under another version read as misses.
CACHE_VERSION = 1


class ResultCache:
    """Cell-ID keyed JSON store under one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, cell_id: str) -> Path:
        return self.root / f"{cell_id}.json"

    def get(self, cell_id: str) -> dict[str, Any] | None:
        """The cached metrics payload, or ``None`` on miss/corruption."""
        path = self.path_for(cell_id)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(entry, dict) or entry.get("version") != CACHE_VERSION:
            return None
        payload = entry.get("metrics")
        return payload if isinstance(payload, dict) else None

    def put(self, cell_id: str, metrics: dict[str, Any]) -> Path:
        """Atomically persist a cell's metrics; returns the entry path.

        The temp name embeds the writer's pid so concurrent writers on a
        shared cache directory (multiple sweep workers, or two campaigns
        sharing cells) never collide mid-write; last rename wins, and
        both writers wrote the same deterministic payload anyway.
        """
        path = self.path_for(cell_id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        entry = {"version": CACHE_VERSION, "cell_id": cell_id, "metrics": metrics}
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return path

    def discard(self, cell_id: str) -> bool:
        """Remove one entry; returns whether it existed."""
        try:
            self.path_for(cell_id).unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def cell_ids(self) -> list[str]:
        """Cell IDs of every entry on disk (valid or not)."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def tmp_files(self) -> list[Path]:
        """Leftover temp files (abandoned by crashed/killed writers)."""
        return sorted(self.root.glob("*.tmp"))

    def __contains__(self, cell_id: str) -> bool:
        return self.get(cell_id) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))
