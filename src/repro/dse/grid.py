"""Declarative sweep spaces for DSE campaigns.

A :class:`SweepGrid` names the axes of a design-space sweep — platform,
DSSoC configuration, scheduling policy, workload, seed — and expands
their cross product into :class:`SweepCell` instances.  Cells are plain
serializable data: a cell fully describes one emulation run without
holding any live objects, so it can cross a process boundary, key an
on-disk cache, and be replayed from a journal.

Workloads are described by small dicts rather than ``WorkloadSpec``
objects for the same reason; :func:`build_workload` materializes the
spec inside whichever process executes the cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Any

from repro.common.errors import ReproError
from repro.runtime.workload import ArrivalStream, WorkloadSpec

#: Workload descriptor kinds understood by :func:`build_workload`.
WORKLOAD_KINDS = ("validation", "rate", "table_ii", "arrivals")


def validation_sweep(apps: dict[str, int]) -> dict[str, Any]:
    """Descriptor for a validation-mode workload (all arrivals at t=0).

    App order is preserved: with every arrival at t=0, instance order
    (and therefore jitter-stream assignment) follows it, so two
    orderings of the same counts are genuinely different cells.
    """
    return {"kind": "validation", "apps": dict(apps)}


def rate_sweep(rate: float, time_frame_us: float | None = None) -> dict[str, Any]:
    """Descriptor for a Table-II-mix workload at an arbitrary rate."""
    desc: dict[str, Any] = {"kind": "rate", "rate": float(rate)}
    if time_frame_us is not None:
        desc["time_frame_us"] = float(time_frame_us)
    return desc


def table_ii_sweep(rate: float) -> dict[str, Any]:
    """Descriptor for one of the five canonical Table II workloads."""
    return {"kind": "table_ii", "rate": float(rate)}


def arrivals_sweep(spec: dict[str, Any]) -> dict[str, Any]:
    """Descriptor for an open-loop arrival stream (serving-style cell).

    ``spec`` is an :class:`~repro.runtime.workload.ArrivalSpec` dict —
    the same shape ``--arrivals`` accepts on the CLI.  It is validated
    eagerly so a sweep file with a typo'd spec fails at grid expansion,
    not minutes later inside a worker process.
    """
    from repro.runtime.workload import ArrivalSpec

    ArrivalSpec.from_dict(dict(spec))  # fail fast; cells carry the dict
    return {"kind": "arrivals", "spec": dict(spec)}


def build_workload(descriptor: dict[str, Any]) -> WorkloadSpec | ArrivalStream:
    """Materialize a workload descriptor into a :class:`WorkloadSpec`
    (closed-loop kinds) or a fresh :class:`ArrivalStream` (``arrivals``).

    Streams are re-iterable — each emulation run draws a fresh generator
    with the same seed — so one build per cell serves every iteration,
    exactly like the materialized kinds.
    """
    from repro.experiments.workloads import table_ii_workload, workload_at_rate
    from repro.runtime.workload import ArrivalSpec, validation_workload

    kind = descriptor.get("kind")
    if kind == "validation":
        return validation_workload(dict(descriptor["apps"]))
    if kind == "rate":
        if "time_frame_us" in descriptor:
            return workload_at_rate(
                descriptor["rate"], descriptor["time_frame_us"]
            )
        return workload_at_rate(descriptor["rate"])
    if kind == "table_ii":
        return table_ii_workload(descriptor["rate"])
    if kind == "arrivals":
        return ArrivalSpec.from_dict(dict(descriptor["spec"])).build()
    raise ReproError(
        f"unknown workload descriptor kind {kind!r} (use {WORKLOAD_KINDS})"
    )


def describe_workload(descriptor: dict[str, Any]) -> str:
    """Short human label for a workload descriptor."""
    kind = descriptor.get("kind")
    if kind == "validation":
        apps = descriptor["apps"]
        return ",".join(f"{n}={c}" for n, c in apps.items())
    if kind in ("rate", "table_ii"):
        return f"{kind}@{descriptor['rate']:g}"
    if kind == "arrivals":
        spec = descriptor.get("spec", {})
        label = spec.get("label") or spec.get("kind", "?")
        return f"arrivals:{label}"
    return str(descriptor)


@dataclass(frozen=True)
class SweepCell:
    """One point of the sweep space: everything one emulation run needs.

    The cell ID is a content hash over the canonical JSON encoding of the
    cell's parameters — deterministic across processes, platforms, and
    dict orderings — and keys both the result cache and the journal.
    """

    config: str
    policy: str
    workload: dict[str, Any]
    platform: str = "zcu102"
    seed: int | None = None
    iterations: int = 1
    jitter: bool = False
    backend: str = "virtual"
    #: fault spec in dict form (see runtime.faults), or None for fault-free
    faults: dict[str, Any] | None = None
    #: QoS spec in dict form (see runtime.qos), or None for QoS-free
    qos: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "platform": self.platform,
            "config": self.config,
            "policy": self.policy,
            "workload": dict(self.workload),
            "seed": self.seed,
            "iterations": self.iterations,
            "jitter": self.jitter,
            "backend": self.backend,
        }
        # Serialized only when present so fault-free/QoS-free cell IDs (and
        # cached results keyed on them) are unchanged from older campaigns.
        if self.faults is not None:
            doc["faults"] = dict(self.faults)
        if self.qos is not None:
            doc["qos"] = dict(self.qos)
        return doc

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> SweepCell:
        faults = data.get("faults")
        qos = data.get("qos")
        return cls(
            platform=data.get("platform", "zcu102"),
            config=data["config"],
            policy=data["policy"],
            workload=dict(data["workload"]),
            seed=data.get("seed"),
            iterations=int(data.get("iterations", 1)),
            jitter=bool(data.get("jitter", False)),
            backend=data.get("backend", "virtual"),
            faults=dict(faults) if faults is not None else None,
            qos=dict(qos) if qos is not None else None,
        )

    @property
    def cell_id(self) -> str:
        payload = self.to_dict()
        workload = payload["workload"]
        if isinstance(workload.get("apps"), dict):
            # apps order is execution-significant (arrival tie-breaking),
            # so encode it as an ordered pair list rather than letting
            # sort_keys erase the distinction
            payload["workload"] = {
                **workload, "apps": [list(kv) for kv in workload["apps"].items()]
            }
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:16]

    @property
    def label(self) -> str:
        parts = [self.config, self.policy, describe_workload(self.workload)]
        if self.platform != "zcu102":
            parts.insert(0, self.platform)
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        if self.faults is not None:
            parts.append(str(self.faults.get("label") or "faults"))
        if self.qos is not None:
            parts.append(str(self.qos.get("label") or "qos"))
        return "/".join(parts)


@dataclass(frozen=True)
class SweepGrid:
    """Cross product of sweep axes.

    Expansion order is deterministic: platforms, then workloads, then
    configs, then policies, then seeds — so campaign output follows the
    order experiments conventionally present (rate-major, config-minor
    for Fig. 11; config-major for Fig. 9).
    """

    configs: tuple[str, ...]
    policies: tuple[str, ...]
    workloads: tuple[dict[str, Any], ...]
    platforms: tuple[str, ...] = ("zcu102",)
    seeds: tuple[int | None, ...] = (None,)
    iterations: int = 1
    jitter: bool = False
    backend: str = "virtual"
    #: fault axis: dict-form fault specs; None = a fault-free grid point
    faults: tuple[dict[str, Any] | None, ...] = (None,)
    #: QoS axis: dict-form QoS specs; None = a QoS-free grid point
    qos: tuple[dict[str, Any] | None, ...] = (None,)

    def __post_init__(self) -> None:
        if not self.configs:
            raise ReproError("sweep grid needs at least one config")
        if not self.policies:
            raise ReproError("sweep grid needs at least one policy")
        if not self.workloads:
            raise ReproError("sweep grid needs at least one workload")
        if self.iterations < 1:
            raise ReproError("iterations must be >= 1")
        if self.backend not in ("virtual", "threaded"):
            raise ReproError(f"unknown backend {self.backend!r}")
        if not self.faults:
            raise ReproError(
                "fault axis cannot be empty (use (None,) for fault-free)"
            )
        if not self.qos:
            raise ReproError(
                "qos axis cannot be empty (use (None,) for QoS-free)"
            )

    @property
    def size(self) -> int:
        return (
            len(self.platforms)
            * len(self.workloads)
            * len(self.configs)
            * len(self.policies)
            * len(self.seeds)
            * len(self.faults)
            * len(self.qos)
        )

    def expand(self) -> list[SweepCell]:
        cells: list[SweepCell] = []
        for platform in self.platforms:
            for workload in self.workloads:
                for config in self.configs:
                    for policy in self.policies:
                        for seed in self.seeds:
                            for faults in self.faults:
                                for qos in self.qos:
                                    cells.append(
                                        SweepCell(
                                            platform=platform,
                                            config=config,
                                            policy=policy,
                                            workload=dict(workload),
                                            seed=seed,
                                            iterations=self.iterations,
                                            jitter=self.jitter,
                                            backend=self.backend,
                                            faults=(
                                                dict(faults)
                                                if faults is not None
                                                else None
                                            ),
                                            qos=(
                                                dict(qos)
                                                if qos is not None
                                                else None
                                            ),
                                        )
                                    )
        return cells

    @property
    def grid_id(self) -> str:
        """Content hash of the whole grid (stable default campaign key)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]

    def to_dict(self) -> dict[str, Any]:
        doc = {
            "platforms": list(self.platforms),
            "configs": list(self.configs),
            "policies": list(self.policies),
            "workloads": [dict(w) for w in self.workloads],
            "seeds": list(self.seeds),
            "iterations": self.iterations,
            "jitter": self.jitter,
            "backend": self.backend,
        }
        # As with SweepCell: only serialized when the axis is non-trivial,
        # so pre-fault grid IDs are unchanged.
        if self.faults != (None,):
            doc["faults"] = [
                dict(f) if f is not None else None for f in self.faults
            ]
        if self.qos != (None,):
            doc["qos"] = [
                dict(q) if q is not None else None for q in self.qos
            ]
        return doc

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> SweepGrid:
        """Build a grid from a campaign spec dict (JSON file contents)."""
        unknown = set(data) - {
            "platforms", "configs", "policies", "workloads", "seeds",
            "iterations", "jitter", "backend", "faults", "qos",
        }
        if unknown:
            raise ReproError(f"unknown sweep spec keys: {sorted(unknown)}")
        try:
            workloads = tuple(dict(w) for w in data["workloads"])
            grid = cls(
                configs=tuple(data["configs"]),
                policies=tuple(data["policies"]),
                workloads=workloads,
                platforms=tuple(data.get("platforms", ("zcu102",))),
                seeds=tuple(data.get("seeds", (None,))),
                iterations=int(data.get("iterations", 1)),
                jitter=bool(data.get("jitter", False)),
                backend=data.get("backend", "virtual"),
                faults=tuple(
                    dict(f) if f is not None else None
                    for f in data.get("faults", (None,))
                ),
                qos=tuple(
                    dict(q) if q is not None else None
                    for q in data.get("qos", (None,))
                ),
            )
        except KeyError as exc:
            raise ReproError(f"sweep spec missing key: {exc}") from None
        for w in grid.workloads:
            if w.get("kind") not in WORKLOAD_KINDS:
                raise ReproError(
                    f"workload descriptor kind {w.get('kind')!r} not in "
                    f"{WORKLOAD_KINDS}"
                )
            if w.get("kind") == "arrivals":
                # Validate the nested arrival spec at parse time — the
                # same fail-fast contract arrivals_sweep() gives in-code
                # grids (stray fields, unknown kinds, malformed bursts).
                from repro.runtime.workload import ArrivalSpec

                try:
                    ArrivalSpec.from_dict(dict(w.get("spec") or {}))
                except Exception as exc:
                    raise ReproError(
                        f"invalid arrivals workload in sweep spec: {exc}"
                    ) from exc
        return grid

    def with_overrides(self, **kwargs: Any) -> SweepGrid:
        """A copy with some axes replaced (convenience for experiments)."""
        return replace(self, **kwargs)
