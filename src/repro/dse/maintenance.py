"""Campaign-directory housekeeping: ``dssoc-emulate sweep --gc``.

A long-lived campaign directory accretes garbage: temp files abandoned
by killed writers, corrupt or version-mismatched cache entries, cache
entries for cells no journal or manifest references anymore (e.g. after
a grid was narrowed), stale lease tombstones, and a journal that grows
without bound across resumes.  :func:`gc_campaign` reclaims all of it:

* **cache** — removes leftover ``*.tmp`` files, entries that fail to
  parse or carry a foreign cache version, and (when the campaign has a
  journal or manifest to define "referenced") entries for unreferenced
  cells.  GC is deliberately campaign-scoped: do not point it at a cache
  directory shared by campaigns whose journals live elsewhere.
* **journal** — compacts to the minimal equivalent history: the latest
  ``campaign_start``, one resolving event per completed cell, the last
  error per failed cell, start/interrupt markers for incomplete cells,
  and the final ``campaign_end``.  The rewrite is atomic (temp +
  rename) and refreshes the index sidecar, so ``--resume`` semantics
  are exactly preserved while replay cost drops to O(cells).
* **distrib debris** — expired leases, claim temps and tombstones, and
  heartbeat files of long-gone workers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.dse import journal as journal_mod
from repro.dse.cache import CACHE_VERSION, ResultCache
from repro.dse.journal import Journal

#: Temp files younger than this may belong to a live writer; left alone.
TMP_GRACE_S = 15 * 60.0

#: Worker heartbeat files older than this are considered abandoned.
WORKER_FILE_TTL_S = 24 * 3600.0


def _referenced_cells(out_dir: Path) -> set[str] | None:
    """Cell IDs this campaign still knows about, or None when undefinable."""
    referenced: set[str] = set()
    have_any = False
    journal_path = out_dir / "journal.jsonl"
    if journal_path.exists():
        have_any = True
        state = journal_mod.replay(journal_path)
        referenced |= state.completed | state.started | set(state.errored)
        referenced |= state.interrupted
    manifest_path = out_dir / "distrib" / "manifest.json"
    if manifest_path.exists():
        try:
            with open(manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
            from repro.dse.grid import SweepCell

            referenced |= {
                SweepCell.from_dict(d).cell_id
                for d in manifest.get("cells", [])
            }
            have_any = True
        except (OSError, json.JSONDecodeError, KeyError):
            pass
    # Unmerged worker shards may reference cells the canonical journal
    # has not seen yet; never treat those as orphans.
    shards_dir = out_dir / "distrib" / "journals"
    if shards_dir.is_dir():
        for shard in shards_dir.glob("*.jsonl"):
            have_any = True
            for event in journal_mod.read_events(shard):
                cell_id = event.get("cell_id")
                if cell_id:
                    referenced.add(cell_id)
    return referenced if have_any else None


def _gc_cache(out_dir: Path, now: float) -> dict[str, int]:
    cache = ResultCache(out_dir / "cache")
    report = {"tmp_removed": 0, "corrupt_removed": 0, "orphans_removed": 0}
    for tmp in cache.tmp_files():
        try:
            if now - tmp.stat().st_mtime >= TMP_GRACE_S:
                tmp.unlink()
                report["tmp_removed"] += 1
        except OSError:
            pass
    referenced = _referenced_cells(out_dir)
    for cell_id in cache.cell_ids():
        path = cache.path_for(cell_id)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            valid = (
                isinstance(entry, dict)
                and entry.get("version") == CACHE_VERSION
                and isinstance(entry.get("metrics"), dict)
            )
        except (OSError, json.JSONDecodeError):
            valid = False
        if not valid:
            if cache.discard(cell_id):
                report["corrupt_removed"] += 1
        elif referenced is not None and cell_id not in referenced:
            if cache.discard(cell_id):
                report["orphans_removed"] += 1
    return report


def compact_journal(journal_path: str | Path) -> dict[str, int]:
    """Atomically rewrite the journal to its minimal equivalent history."""
    journal_path = Path(journal_path)
    events = journal_mod.read_events(journal_path)
    if not events:
        return {"events_before": 0, "events_after": 0}

    start_event: dict[str, Any] | None = None
    end_event: dict[str, Any] | None = None
    resolving: dict[str, dict[str, Any]] = {}
    last_error: dict[str, dict[str, Any]] = {}
    last_start: dict[str, dict[str, Any]] = {}
    interrupted: dict[str, dict[str, Any]] = {}
    for event in events:
        kind = event["event"]
        if kind == journal_mod.EVENT_CAMPAIGN_START:
            start_event = event
        elif kind == journal_mod.EVENT_CAMPAIGN_END:
            end_event = event
        cell_id = event.get("cell_id")
        if not cell_id:
            continue
        if kind in (journal_mod.EVENT_CELL_FINISH,
                    journal_mod.EVENT_CELL_CACHED):
            resolving.setdefault(cell_id, event)
        elif kind == journal_mod.EVENT_CELL_ERROR:
            last_error[cell_id] = event
        elif kind == journal_mod.EVENT_CELL_START:
            last_start[cell_id] = event
        elif kind == journal_mod.EVENT_CELL_INTERRUPTED:
            interrupted[cell_id] = event

    completed = set(resolving)
    keep: list[dict[str, Any]] = []
    if start_event is not None:
        keep.append(start_event)
    keep.extend(resolving.values())
    for cell_id, event in last_error.items():
        if cell_id not in completed:
            keep.append(event)
    for cell_id, event in last_start.items():
        if cell_id not in completed and cell_id not in last_error:
            keep.append(event)
    for cell_id, event in interrupted.items():
        if cell_id not in completed:
            keep.append(event)
    if end_event is not None:
        keep.append(end_event)

    tmp = journal_path.with_name(f"{journal_path.name}.{os.getpid()}.tmp")
    with Journal(tmp) as writer:
        for event in keep:
            fields = {
                k: v for k, v in event.items() if k not in ("event", "seq")
            }
            writer.append(event["event"], **fields)
    os.replace(tmp, journal_path)
    journal_mod.write_index(journal_path, journal_mod.replay(journal_path))
    return {"events_before": len(events), "events_after": len(keep)}


def _gc_distrib(out_dir: Path, now: float) -> dict[str, int]:
    report = {"lease_debris": 0, "stale_worker_files": 0}
    root = out_dir / "distrib"
    if not root.is_dir():
        return report
    leases_dir = root / "leases"
    if leases_dir.is_dir():
        for path in list(leases_dir.glob(".claim.*")) + list(
            leases_dir.glob(".stale.*")
        ):
            try:
                path.unlink()
                report["lease_debris"] += 1
            except OSError:
                pass
    workers_dir = root / "workers"
    if workers_dir.is_dir():
        for path in workers_dir.glob("*.json"):
            try:
                if now - path.stat().st_mtime >= WORKER_FILE_TTL_S:
                    path.unlink()
                    report["stale_worker_files"] += 1
            except OSError:
                pass
    return report


def gc_campaign(out_dir: str | Path) -> dict[str, Any]:
    """Garbage-collect one campaign directory; returns a report dict."""
    out_path = Path(out_dir)
    now = time.time()
    report: dict[str, Any] = {"out_dir": str(out_path)}
    report["cache"] = _gc_cache(out_path, now)
    journal_path = out_path / "journal.jsonl"
    if journal_path.exists():
        report["journal"] = compact_journal(journal_path)
    else:
        report["journal"] = {"events_before": 0, "events_after": 0}
    report["distrib"] = _gc_distrib(out_path, now)
    return report
