"""Pareto analysis and comparison rendering over campaign result sets.

The paper's DSE question is rarely "which design is fastest" alone —
Case Study 1 trades execution time against area, and the energy numbers
of Fig. 9's power model make makespan-vs-energy the canonical plane.
:func:`pareto_frontier` finds the non-dominated set under minimization
of both axes; the render helpers turn a campaign into the tables the
experiment harnesses print.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def pareto_frontier(points: Sequence[tuple[float, float]]) -> list[int]:
    """Indices of the non-dominated points, minimizing both coordinates.

    A point is dominated when another point is <= on both axes and
    strictly < on at least one.  Duplicate points are all kept (none
    strictly improves on the other).  Returned indices are sorted by
    (x, y) along the frontier.
    """
    order = sorted(range(len(points)), key=lambda i: (points[i][0], points[i][1]))
    frontier: list[int] = []
    best_y = float("inf")
    prev_x: float | None = None
    for i in order:
        x, y = points[i]
        if y < best_y or (y == best_y and x == prev_x):
            frontier.append(i)
            best_y = y
            prev_x = x
    return frontier


def frontier_rows(
    rows: Sequence[dict[str, Any]],
    *,
    x: str = "makespan_ms",
    y: str = "total_energy_j",
) -> list[dict[str, Any]]:
    """Annotate campaign rows with Pareto membership on the (x, y) plane.

    Rows missing either metric (failed cells) are marked non-frontier.
    Returns new dicts with ``pareto`` (bool) added, preserving order.
    """
    usable: list[int] = []
    points: list[tuple[float, float]] = []
    for i, row in enumerate(rows):
        xv, yv = row.get(x), row.get(y)
        if isinstance(xv, (int, float)) and isinstance(yv, (int, float)):
            usable.append(i)
            points.append((float(xv), float(yv)))
    members = {usable[j] for j in pareto_frontier(points)}
    return [
        {**row, "pareto": i in members} for i, row in enumerate(rows)
    ]


def render_frontier(
    rows: Sequence[dict[str, Any]],
    *,
    x: str = "makespan_ms",
    y: str = "total_energy_j",
    title: str = "Pareto frontier (minimize both axes)",
) -> str:
    """Frontier members as a table, sorted along the frontier."""
    from repro.analysis.tables import format_table

    annotated = [r for r in frontier_rows(rows, x=x, y=y) if r["pareto"]]
    annotated.sort(key=lambda r: (r[x], r[y]))
    body = [
        [r.get("label", r.get("cell_id", "?")), r[x], r[y]] for r in annotated
    ]
    return format_table(["cell", x, y], body, title=title)


def best_by(
    rows: Sequence[dict[str, Any]], metric: str = "makespan_ms"
) -> dict[str, Any] | None:
    """The row minimizing ``metric`` (ignoring rows without it)."""
    usable = [
        r for r in rows if isinstance(r.get(metric), (int, float))
    ]
    if not usable:
        return None
    return min(usable, key=lambda r: r[metric])
