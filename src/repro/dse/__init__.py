"""Design-space exploration campaign engine.

The paper's purpose is pre-silicon DSE: sweep DSSoC configurations,
scheduling policies, and workloads, then compare makespan, utilization,
and energy (Figs. 9-11).  This package turns those sweeps into
first-class *campaigns*:

* :mod:`repro.dse.grid` — declarative sweep space (configs x policies x
  workloads x seeds) expanded into cells with deterministic content IDs;
* :mod:`repro.dse.cache` — content-hash keyed on-disk result store, so
  re-running a campaign skips every already-computed cell;
* :mod:`repro.dse.journal` — append-only JSONL event log enabling
  crash-resume: a restarted campaign replays the journal and re-queues
  only incomplete cells;
* :mod:`repro.dse.runner` — parallel cell execution across a
  ``ProcessPoolExecutor`` with failure isolation and bounded retry;
* :mod:`repro.dse.frontier` — comparison tables and makespan-vs-energy
  Pareto analysis over campaign result sets.

Quickstart::

    from repro.dse import SweepGrid, run_campaign, validation_sweep

    grid = SweepGrid(
        configs=("2C+2F", "3C+2F", "4C+2F"),
        policies=("frfs", "met", "eft"),
        workloads=(validation_sweep({"range_detection": 2}),),
    )
    campaign = run_campaign(grid, out_dir="campaign_out", jobs=4)
    print(campaign.table())
"""

from repro.dse.cache import ResultCache
from repro.dse.frontier import (
    frontier_rows,
    pareto_frontier,
    render_frontier,
)
from repro.dse.grid import (
    SweepCell,
    SweepGrid,
    arrivals_sweep,
    build_workload,
    rate_sweep,
    table_ii_sweep,
    validation_sweep,
)
from repro.dse.journal import Journal, JournalState
from repro.dse.runner import (
    CampaignResult,
    CellResult,
    execute_cell,
    run_campaign,
)

__all__ = [
    "SweepCell",
    "SweepGrid",
    "build_workload",
    "validation_sweep",
    "rate_sweep",
    "table_ii_sweep",
    "arrivals_sweep",
    "ResultCache",
    "Journal",
    "JournalState",
    "CellResult",
    "CampaignResult",
    "execute_cell",
    "run_campaign",
    "pareto_frontier",
    "frontier_rows",
    "render_frontier",
]
