"""Campaign execution: parallel cell runs with caching, journal, retry.

:func:`execute_cell` is the worker entry point — a module-level function
taking/returning plain dicts so it crosses the ``ProcessPoolExecutor``
pickle boundary.  :func:`run_campaign` orchestrates a whole sweep:

* cache lookup first — cells whose content-hash result already exists on
  disk are *not* re-executed;
* virtual-backend cells fan out across worker processes (``jobs > 1``);
  threaded-backend cells run inline in the parent, since they spawn one
  OS thread per emulated PE and would oversubscribe cores from inside a
  process pool;
* per-cell wall-clock timeout and bounded retry with failure isolation —
  one diverging or crashing cell cannot take the campaign down;
* every state transition is journaled, so a killed campaign resumes by
  re-queuing only incomplete cells.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

import numpy as np

from repro import core as core_select
from repro.dse import journal as journal_mod
from repro.dse.cache import ResultCache
from repro.dse.grid import SweepCell, SweepGrid, build_workload, describe_workload
from repro.dse.journal import Journal

ProgressFn = Callable[[int, int, "CellResult"], None]


# -- worker ----------------------------------------------------------------------


def _make_platform(name: str):
    from repro.hardware.platform import odroid_xu3, zcu102

    if name == "zcu102":
        return zcu102()
    if name == "odroid_xu3":
        return odroid_xu3()
    raise ValueError(f"unknown platform {name!r} (zcu102 | odroid_xu3)")


def _make_backend(name: str):
    from repro.runtime.backends.threaded import ThreadedBackend
    from repro.runtime.backends.virtual import VirtualBackend

    if name == "virtual":
        return VirtualBackend()
    if name == "threaded":
        return ThreadedBackend()
    raise ValueError(f"unknown backend {name!r} (virtual | threaded)")


def execute_cell(cell_data: dict[str, Any]) -> dict[str, Any]:
    """Run one sweep cell to completion and return its metrics payload.

    Iterations replicate the experiment-script convention: a fresh
    :class:`Emulation` per iteration with ``run_index`` varying the
    jitter stream, the workload built once per cell.  All payload values
    are JSON-serializable (this dict is exactly what the cache stores).
    """
    from repro.runtime.emulation import Emulation

    cell = SweepCell.from_dict(cell_data)
    platform = _make_platform(cell.platform)
    workload = build_workload(cell.workload)
    materialize = cell.backend == "threaded"

    t0 = time.monotonic()
    makespans_us: list[float] = []
    overheads_us: list[float] = []
    last = None
    for it in range(cell.iterations):
        emu = Emulation(
            platform=platform,
            config=cell.config,
            policy=cell.policy,
            materialize_memory=materialize,
            jitter=cell.jitter,
            seed=cell.seed,
            faults=cell.faults,
            qos=cell.qos,
        )
        last = emu.run(workload, _make_backend(cell.backend), run_index=it)
        makespans_us.append(last.stats.makespan)
        overheads_us.append(last.stats.avg_scheduling_overhead())
        if last.stats.interrupted:
            break  # budget drained: further iterations would drain it too
    assert last is not None
    stats = last.stats

    makespans_ms = [us / 1000.0 for us in makespans_us]
    pe_energy = stats.pe_energy()
    metrics: dict[str, Any] = {
        "cell_id": cell.cell_id,
        "label": cell.label,
        "params": cell.to_dict(),
        "iterations": cell.iterations,
        "makespan_us_runs": makespans_us,
        "sched_overhead_us_runs": overheads_us,
        "makespan_ms": float(np.mean(makespans_ms)),
        "makespan_ms_median": float(np.median(makespans_ms)),
        "execution_time_s": float(np.mean([us / 1e6 for us in makespans_us])),
        "avg_sched_overhead_us": float(np.mean(overheads_us)),
        "mean_ready_length": stats.mean_ready_length(),
        "sched_invocations": stats.sched_invocations,
        "tasks": stats.task_count,
        "apps_injected": stats.apps_injected,
        "apps_completed": stats.apps_completed,
        "apps_degraded": stats.apps_degraded,
        "pe_utilization": stats.pe_utilization(),
        "pe_energy_j": pe_energy,
        "total_energy_j": float(sum(pe_energy.values())),
        "mean_response_ms": {
            app: float(np.mean(times)) / 1000.0
            for app, times in sorted(stats.app_response_times.items())
        },
        "wall_time_s": time.monotonic() - t0,
        # who computed this cell: a sweep-worker id when running under the
        # distributed service, else the executing process — lets slow or
        # flaky workers be diagnosed from the journal/results alone
        "worker": os.environ.get("DSSOC_WORKER_ID") or f"pid{os.getpid()}",
        # which DES core produced it (variant + build metadata); workers
        # inherit the coordinator's --core choice through DSSOC_CORE
        "core": core_select.core_info(),
    }
    if stats.faults_enabled:
        metrics["faults"] = {
            "pe_failures": stats.pe_failures,
            "transient_faults": stats.transient_faults,
            "task_retries": stats.task_retries,
            "tasks_requeued": stats.tasks_requeued,
        }
    if stats.qos_enabled or stats.apps_dropped or stats.watchdog_failstops:
        metrics["qos"] = {
            "apps_dropped": stats.apps_dropped,
            "apps_on_time": stats.apps_on_time,
            "apps_late": stats.apps_late,
            "watchdog_failstops": stats.watchdog_failstops,
            "response_percentiles": stats.response_percentiles(),
        }
    if stats.interrupted:
        # A cell whose QoS budget drained mid-run: the metrics are partial
        # (remaining iterations skipped) and flagged so analysis can tell.
        metrics["interrupted"] = True
        metrics["interrupt_reason"] = stats.interrupt_reason
    if cell.backend == "threaded":
        metrics["outputs_correct"] = last.verify_outputs()
    return metrics


# -- results ---------------------------------------------------------------------


@dataclass
class CellResult:
    """Outcome of one cell: metrics on success, diagnosis otherwise."""

    cell: SweepCell
    status: str  # "ok" | "error" | "timeout"
    metrics: dict[str, Any] | None = None
    error: str | None = None
    cached: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def row(self) -> dict[str, Any]:
        """Flat dict for tables and Pareto analysis."""
        row: dict[str, Any] = {
            "label": self.cell.label,
            "platform": self.cell.platform,
            "config": self.cell.config,
            "policy": self.cell.policy,
            "workload": describe_workload(self.cell.workload),
            "seed": self.cell.seed,
            "iterations": self.cell.iterations,
            "status": self.status,
            "cached": self.cached,
            "cell_id": self.cell.cell_id,
        }
        if self.metrics:
            for key in (
                "makespan_ms",
                "makespan_ms_median",
                "execution_time_s",
                "avg_sched_overhead_us",
                "total_energy_j",
                "tasks",
                "apps_completed",
                "apps_degraded",
                "wall_time_s",
                "worker",
            ):
                row[key] = self.metrics.get(key)
            # flatten to the variant string: rows feed tables, where a
            # nested build dict would be noise (full metadata stays in
            # the cached metrics document)
            core = self.metrics.get("core")
            row["core"] = core.get("variant") if core else None
        if self.error:
            row["error"] = self.error
        return row


@dataclass
class CampaignResult:
    """All cell results of one campaign, in grid order."""

    results: list[CellResult]
    out_dir: Path | None = None
    elapsed_s: float = 0.0

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if r.ok and not r.cached)

    @property
    def cached_hits(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def failures(self) -> list[CellResult]:
        return [r for r in self.results if not r.ok]

    def rows(self) -> list[dict[str, Any]]:
        return [r.row() for r in self.results]

    def table(self, *, sort_by: str | None = None) -> str:
        from repro.analysis.tables import campaign_table

        return campaign_table(self.rows(), sort_by=sort_by)

    def frontier(
        self,
        x: str = "makespan_ms",
        y: str = "total_energy_j",
    ) -> list[dict[str, Any]]:
        from repro.dse.frontier import frontier_rows

        return frontier_rows(self.rows(), x=x, y=y)

    def summary(self) -> dict[str, Any]:
        return {
            "cells": len(self.results),
            "executed": self.executed,
            "cached": self.cached_hits,
            "failed": len(self.failures()),
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"summary": self.summary(), "cells": self.rows()}
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
        return path


# -- execution strategies --------------------------------------------------------


@dataclass
class _Recorder:
    """Journal/cache/progress bookkeeping shared by both strategies."""

    total: int
    cache: ResultCache | None = None
    journal: Journal | None = None
    progress: ProgressFn | None = None
    done: int = 0
    collected: dict[str, CellResult] = field(default_factory=dict)

    def on_start(self, cell: SweepCell, attempt: int) -> None:
        if self.journal:
            self.journal.append(
                journal_mod.EVENT_CELL_START,
                cell_id=cell.cell_id,
                label=cell.label,
                attempt=attempt,
            )

    def on_interrupt(self, cell: SweepCell) -> None:
        """Record a cell cut short by SIGINT/SIGTERM (stays incomplete)."""
        if self.journal:
            self.journal.append(
                journal_mod.EVENT_CELL_INTERRUPTED,
                cell_id=cell.cell_id,
                label=cell.label,
            )

    def on_result(self, result: CellResult) -> None:
        self.collected[result.cell.cell_id] = result
        self.done += 1
        if result.ok and not result.cached and self.cache is not None:
            assert result.metrics is not None
            self.cache.put(result.cell.cell_id, result.metrics)
        if self.journal:
            if result.ok:
                event = (
                    journal_mod.EVENT_CELL_CACHED
                    if result.cached
                    else journal_mod.EVENT_CELL_FINISH
                )
                metrics = result.metrics or {}
                self.journal.append(
                    event,
                    cell_id=result.cell.cell_id,
                    label=result.cell.label,
                    makespan_ms=metrics.get("makespan_ms"),
                    attempts=result.attempts,
                    worker=metrics.get("worker"),
                    wall_time_s=metrics.get("wall_time_s"),
                )
            else:
                self.journal.append(
                    journal_mod.EVENT_CELL_ERROR,
                    cell_id=result.cell.cell_id,
                    label=result.cell.label,
                    error=result.error,
                    attempts=result.attempts,
                )
        if self.progress:
            self.progress(self.done, self.total, result)


def _run_inline(
    cells: list[SweepCell], max_attempts: int, recorder: _Recorder
) -> None:
    """Sequential execution in this process (jobs=1 / threaded backend)."""
    for cell in cells:
        last_error = ""
        for attempt in range(1, max_attempts + 1):
            recorder.on_start(cell, attempt)
            try:
                metrics = execute_cell(cell.to_dict())
            except KeyboardInterrupt:
                # Ctrl-C / SIGTERM mid-cell: journal it as interrupted so
                # --resume re-runs exactly this cell, then unwind.
                recorder.on_interrupt(cell)
                raise
            except Exception as exc:  # noqa: BLE001 — isolate cell failures
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            recorder.on_result(
                CellResult(cell, "ok", metrics, attempts=attempt)
            )
            break
        else:
            recorder.on_result(
                CellResult(
                    cell, "error", error=last_error, attempts=max_attempts
                )
            )


def _run_parallel(
    cells: list[SweepCell],
    jobs: int,
    timeout_s: float | None,
    max_attempts: int,
    recorder: _Recorder,
) -> None:
    """Fan cells out over a process pool with timeout + bounded retry.

    At most ``jobs`` futures are kept in flight so submission time
    approximates start time, making the per-cell timeout meaningful.  A
    timed-out or pool-breaking cell forces a pool recycle (the stuck
    worker cannot be reclaimed); other in-flight cells are re-queued
    without charging them an attempt.
    """
    queue: deque[tuple[SweepCell, int]] = deque((c, 1) for c in cells)
    pool = ProcessPoolExecutor(max_workers=jobs)
    in_flight: dict[Future, tuple[SweepCell, int, float]] = {}
    try:
        while queue or in_flight:
            while queue and len(in_flight) < jobs:
                cell, attempt = queue.popleft()
                recorder.on_start(cell, attempt)
                fut = pool.submit(execute_cell, cell.to_dict())
                in_flight[fut] = (cell, attempt, time.monotonic())
            done, _pending = wait(
                set(in_flight), timeout=0.1, return_when=FIRST_COMPLETED
            )
            recycle = False
            for fut in done:
                cell, attempt, _t0 = in_flight.pop(fut)
                try:
                    metrics = fut.result()
                except BrokenProcessPool:
                    recycle = True
                    if attempt < max_attempts:
                        queue.append((cell, attempt + 1))
                    else:
                        recorder.on_result(
                            CellResult(
                                cell,
                                "error",
                                error="worker process died",
                                attempts=attempt,
                            )
                        )
                except Exception as exc:  # noqa: BLE001 — isolate cell failures
                    if attempt < max_attempts:
                        queue.append((cell, attempt + 1))
                    else:
                        recorder.on_result(
                            CellResult(
                                cell,
                                "error",
                                error=f"{type(exc).__name__}: {exc}",
                                attempts=attempt,
                            )
                        )
                else:
                    recorder.on_result(
                        CellResult(cell, "ok", metrics, attempts=attempt)
                    )
            if timeout_s is not None:
                now = time.monotonic()
                for fut, (cell, attempt, t0) in list(in_flight.items()):
                    if now - t0 > timeout_s:
                        fut.cancel()
                        del in_flight[fut]
                        recorder.on_result(
                            CellResult(
                                cell,
                                "timeout",
                                error=f"cell exceeded {timeout_s:g}s",
                                attempts=attempt,
                            )
                        )
                        recycle = True
            if recycle:
                for fut, (cell, attempt, _t0) in in_flight.items():
                    fut.cancel()
                    queue.append((cell, attempt))
                in_flight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=jobs)
    except KeyboardInterrupt:
        # Journal every in-flight cell as interrupted (workers get the
        # signal too and die with the pool); --resume re-runs only these.
        for fut, (cell, _attempt, _t0) in in_flight.items():
            fut.cancel()
            recorder.on_interrupt(cell)
        raise
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


# -- orchestration ---------------------------------------------------------------


def run_campaign(
    grid: SweepGrid | Iterable[SweepCell],
    *,
    out_dir: str | Path | None = None,
    jobs: int = 1,
    timeout_s: float | None = None,
    retries: int = 1,
    resume: bool = False,
    force: bool = False,
    progress: ProgressFn | None = None,
) -> CampaignResult:
    """Run every cell of a sweep, returning results in grid order.

    With ``out_dir`` the campaign is durable: completed cells land in a
    content-addressed cache (``out_dir/cache/``) and every event in an
    append-only journal (``out_dir/journal.jsonl``); a results summary is
    written to ``out_dir/results.json``.  Re-running the campaign skips
    cached cells; ``resume=True`` additionally appends to the existing
    journal (instead of starting a new one) after replaying it to report
    where the previous attempt stopped.  ``force=True`` ignores the
    cache and recomputes everything.
    """
    cells = grid.expand() if isinstance(grid, SweepGrid) else list(grid)
    max_attempts = 1 + max(0, int(retries))
    t_start = time.monotonic()

    cache: ResultCache | None = None
    journal: Journal | None = None
    out_path: Path | None = None
    prior = journal_mod.JournalState()
    if out_dir is not None:
        out_path = Path(out_dir)
        out_path.mkdir(parents=True, exist_ok=True)
        cache = ResultCache(out_path / "cache")
        journal_path = out_path / "journal.jsonl"
        if resume:
            # Indexed fast path: fold only the journal tail past the
            # snapshot in journal.jsonl.idx instead of re-reading the
            # whole log on every resume of a large campaign.
            prior = journal_mod.replay_indexed(journal_path)
        journal = Journal(journal_path, resume=resume)
        journal.append(
            journal_mod.EVENT_CAMPAIGN_START,
            cells=len(cells),
            resume=resume,
            prior_completed=len(prior.completed),
            prior_incomplete=len(prior.incomplete),
        )

    recorder = _Recorder(
        total=len(cells), cache=cache, journal=journal, progress=progress
    )

    # Cache pass: satisfy what we can without executing; dedupe repeats.
    to_run: list[SweepCell] = []
    seen: set[str] = set()
    for cell in cells:
        cid = cell.cell_id
        if cid in seen:
            continue
        seen.add(cid)
        hit = cache.get(cid) if (cache is not None and not force) else None
        if hit is not None:
            recorder.on_result(CellResult(cell, "ok", hit, cached=True))
        else:
            to_run.append(cell)

    inline = [c for c in to_run if c.backend == "threaded"]
    pooled = [c for c in to_run if c.backend != "threaded"]
    try:
        if jobs > 1 and len(pooled) > 1:
            _run_parallel(pooled, jobs, timeout_s, max_attempts, recorder)
        else:
            _run_inline(pooled, max_attempts, recorder)
        if inline:
            _run_inline(inline, max_attempts, recorder)
        if journal:
            failed = sum(
                1 for r in recorder.collected.values() if not r.ok
            )
            journal.append(
                journal_mod.EVENT_CAMPAIGN_END,
                cells=len(cells),
                failed=failed,
            )
    except KeyboardInterrupt:
        if journal:
            done = sum(1 for r in recorder.collected.values() if r.ok)
            journal.append(
                journal_mod.EVENT_CAMPAIGN_END,
                cells=len(cells),
                completed=done,
                interrupted=True,
            )
        raise
    finally:
        if journal:
            journal.close()
            # Refresh the index sidecar so the next --resume (or --status)
            # starts from this campaign's end instead of replaying it.
            journal_mod.replay_indexed(journal.path)

    results = [recorder.collected[cell.cell_id] for cell in cells]
    campaign = CampaignResult(
        results=results,
        out_dir=out_path,
        elapsed_s=time.monotonic() - t_start,
    )
    if out_path is not None:
        campaign.save(out_path / "results.json")
    return campaign
