"""Execution backends: virtual-time DES and real-thread execution."""

from repro.runtime.backends.base import (
    EmulationSession,
    ExecutionBackend,
    PerfModelOracle,
)
from repro.runtime.backends.virtual import VirtualBackend
from repro.runtime.backends.threaded import ThreadedBackend

__all__ = [
    "EmulationSession",
    "ExecutionBackend",
    "PerfModelOracle",
    "VirtualBackend",
    "ThreadedBackend",
]
