"""Backend interface and the perf-model execution-time oracle."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.appmodel.instance import ApplicationInstance, TaskInstance
from repro.common.rng import SeedSequenceFactory
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.hardware.config import AffinityPlan
from repro.hardware.perfmodel import PerformanceModel, SchedulerCostModel
from repro.hardware.platform import SoCPlatform
from repro.runtime.application_handler import ApplicationHandler
from repro.runtime.faults import FaultInjector
from repro.runtime.handler import ResourceHandler
from repro.runtime.qos import QoSController
from repro.runtime.schedulers.base import Scheduler
from repro.runtime.stats import EmulationStats


class PerfModelOracle:
    """Execution-time estimates from the calibrated performance model.

    Both the virtual backend's timing and the schedulers' expectations draw
    from the same tables — the paper's schedulers likewise consume the
    profiled per-platform execution costs carried in the application JSON.
    """

    def __init__(
        self,
        perf_model: PerformanceModel,
        devices: dict[int, FFTAcceleratorDevice],
    ) -> None:
        self.perf_model = perf_model
        self.devices = devices
        # Estimates depend only on (archetype node, PE) — instances of the
        # same application share TaskNode objects, so this cache turns the
        # schedulers' hot estimate() calls into dict lookups.
        self._cache: dict[tuple[int, int], float | None] = {}
        # Second level: the model itself depends only on (runfunc, PE), so
        # distinct nodes sharing a kernel resolve to one model evaluation.
        self._runfunc_cache: dict[tuple[str, int], float] = {}

    def estimate(self, task: TaskInstance, handler: ResourceHandler) -> float | None:
        node = task.node
        key = (id(node), handler.pe_id)
        hit = self._cache.get(key, _MISS)
        if hit is not _MISS:
            return hit
        value = self._estimate_uncached(node, handler)
        self._cache[key] = value
        return value

    def _estimate_uncached(self, node, handler: ResourceHandler) -> float | None:
        binding = node.binding_for_any(handler.accepted_platforms)
        if binding is None:
            return None
        # pe_id pins both the PE type and (for accelerators) the device, so
        # keying on (runfunc, pe_id) is sound and collapses every node that
        # runs the same kernel onto one model evaluation.
        key = (binding.runfunc, handler.pe_id)
        hit = self._runfunc_cache.get(key)
        if hit is not None:
            return hit
        pe_type = handler.pe.pe_type
        if pe_type.is_accelerator:
            device = self.devices.get(handler.pe_id)
            if device is None:
                return None
            value = self.perf_model.service_time(binding.runfunc, pe_type, device)
        else:
            value = self.perf_model.cpu_time(binding.runfunc, pe_type)
        self._runfunc_cache[key] = value
        return value


_MISS = object()


@dataclass
class EmulationSession:
    """Everything a backend needs to run one emulation."""

    platform: SoCPlatform
    plan: AffinityPlan
    handlers: list[ResourceHandler]
    app_handler: ApplicationHandler
    instances: list[ApplicationInstance]
    scheduler: Scheduler
    perf_model: PerformanceModel
    cost_model: SchedulerCostModel
    stats: EmulationStats
    seeds: SeedSequenceFactory = field(default_factory=SeedSequenceFactory)
    #: apply multiplicative execution-time jitter (virtual backend)
    jitter: bool = True
    #: validate every policy output (disable only in calibrated sweeps)
    validate_assignments: bool = True
    #: fault injector, or None for a fault-free run (see runtime.faults)
    faults: FaultInjector | None = None
    #: QoS controller, or None for a guardrail-free run (see runtime.qos)
    qos: QoSController | None = None
    #: instance source for the workload manager; None (materialized runs
    #: built before the source abstraction existed) means "wrap instances"
    source: object | None = None

    @property
    def n_pes(self) -> int:
        return len(self.handlers)


class ExecutionBackend:
    """A strategy that executes an :class:`EmulationSession` to completion."""

    name = "base"

    def run(self, session: EmulationSession) -> EmulationStats:
        raise NotImplementedError
