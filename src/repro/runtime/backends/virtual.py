"""Virtual-time backend: the runtime state machine on a discrete-event clock.

Models the C/pthreads runtime's *behaviour* — not its host — with
calibrated timing:

* the workload manager runs as a DES process pinned to the platform's
  management core; each pass charges the scheduler-cost model's overhead
  (monitor + ready-list update + policy + dispatch) on that core, so a slow
  overlay core (Odroid LITTLE) inflates overhead exactly as in Fig. 11;
* one resource-manager process per PE, pinned to its host core from the
  affinity plan.  CPU PEs consume their core for the kernel's modeled
  service time; accelerator PEs consume their core for the DMA transfers,
  then *sleep* while the device computes (paper Sec. II-D), freeing the
  core for co-resident manager threads;
* host cores are round-robin time-sliced with a context-switch cost, which
  reproduces the 2C+2F preemption anomaly of Fig. 9.

Deterministic for a fixed seed: same workload, same policy, same numbers.
"""

from __future__ import annotations

from collections import deque

from repro import core as core_select
from repro.common.errors import EmulationError
from repro.common.log import get_logger
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.runtime.backends.base import (
    EmulationSession,
    ExecutionBackend,
    PerfModelOracle,
)
from repro.runtime.faults import FaultInjector
from repro.runtime.handler import PEFailedError, PEStatus, ResourceHandler
from repro.runtime.stats import EmulationStats
from repro.runtime.workload_manager import WorkloadManagerCore
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.resources import HostCore, Mailbox

_log = get_logger("runtime.backends.virtual")


class _Waker:
    """Level-triggered wakeup: fire() releases the current wait, if any.

    The workload manager used to sleep on ``AnyOf([wait, arrival_timer])``,
    which costs an AnyOf allocation plus an extra event hop per pass.  Now
    the WM yields the wait event directly and arrival timers call
    :meth:`wake` straight at the waker.  To keep event ordering
    bit-identical with the AnyOf formulation, :meth:`fire` relays through
    one ``call_at`` hop — the relay push stands in for the old wait-event
    push and the wait push stands in for the old AnyOf push, so every
    same-instant contender sees the same heap sequence as before.
    """

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._wait = None
        self._relay_pending = False

    def wait_event(self):
        self._wait = self.engine.event()
        self._relay_pending = False
        return self._wait

    def fire(self) -> None:
        wait = self._wait
        if wait is None or wait.triggered or self._relay_pending:
            return
        self._relay_pending = True
        self.engine.call_at(self.engine.now, self._relay)

    def _relay(self) -> None:
        self._relay_pending = False
        self.wake()

    def wake(self) -> None:
        """Succeed the current wait immediately (arrival-timer path)."""
        wait = self._wait
        if wait is not None and not wait.triggered:
            wait.succeed()


class VirtualBackend(ExecutionBackend):
    name = "virtual"

    def __init__(
        self,
        *,
        quantum_us: float = 100.0,
        switch_cost_us: float = 8.0,
        max_events: int | None = None,
    ) -> None:
        self.quantum_us = quantum_us
        self.switch_cost_us = switch_cost_us
        self.max_events = max_events
        #: engine counters from the most recent run() (perf harness input)
        self.last_run_info: dict | None = None

    # -- entry point -----------------------------------------------------------------

    def run(self, session: EmulationSession) -> EmulationStats:
        engine = core_select.make_engine()
        platform = session.platform

        # Host cores: the management core plus every core hosting an RM thread.
        cores: dict[int, HostCore] = {}
        needed = {platform.management_core} | session.plan.cores_in_use()
        for idx in sorted(needed):
            spec = platform.core(idx)
            cores[idx] = HostCore(
                engine,
                spec.name,
                quantum=self.quantum_us,
                switch_cost=self.switch_cost_us,
                speed=spec.speed,
            )

        # Accelerator devices (timing models only in this backend).
        devices: dict[int, FFTAcceleratorDevice] = {}
        for pe in session.plan.pes:
            if pe.is_accelerator:
                devices[pe.pe_id] = platform.make_accelerator(f"{pe.name}_dev")

        # Give the scheduler its oracle if it arrived without one.
        if session.scheduler.oracle is None:
            session.scheduler.oracle = PerfModelOracle(session.perf_model, devices)

        injector = session.faults
        core = WorkloadManagerCore(
            session.source if session.source is not None else session.instances,
            session.handlers,
            session.scheduler,
            session.stats,
            validate=session.validate_assignments,
            faults=injector,
            qos=session.qos,
        )
        if session.qos is not None:
            session.qos.start_run()
        waker = _Waker(engine)
        completed: deque[tuple[ResourceHandler, object]] = deque()
        #: tasks handed back by RMs after exhausting in-place retries
        requeues: deque[tuple[ResourceHandler, object]] = deque()
        #: (handler, orphans) pairs from permanent PE failures
        fault_events: deque[tuple[ResourceHandler, list]] = deque()
        mailboxes: dict[int, Mailbox] = {
            h.pe_id: Mailbox(engine) for h in session.handlers
        }

        rm_procs: dict[int, Process] = {}
        for handler in session.handlers:
            device = devices.get(handler.pe_id)
            host = cores[handler.pe.host_core]
            rm_procs[handler.pe_id] = engine.process(
                self._rm_process(
                    engine, session, handler, host, device,
                    mailboxes[handler.pe_id], completed, requeues, waker,
                )
            )
        engine.process(
            self._wm_process(
                engine, session, core, cores[platform.management_core],
                mailboxes, completed, requeues, fault_events, waker,
            )
        )
        if injector is not None:
            self._schedule_failures(
                engine, injector, session.handlers, rm_procs, core,
                fault_events, waker,
            )
        engine.run(max_events=self.max_events)
        self.last_run_info = {
            "events_fired": engine.events_fired,
            "events_scheduled": engine._seq,
            "final_time_us": engine.now,
        }
        if session.stats.interrupted:
            # Drained early (signal or budget): partial stats are the
            # deliverable, so the completeness invariants do not apply.
            return session.stats
        if not core.all_complete():
            raise EmulationError(
                f"virtual emulation stalled: {core.apps_completed}/"
                f"{core.n_apps} applications completed "
                f"({core.apps_degraded} degraded)"
            )
        session.stats.assert_all_complete()
        return session.stats

    # -- fault injection -----------------------------------------------------------

    @staticmethod
    def _schedule_failures(
        engine: Engine,
        injector: FaultInjector,
        handlers: list[ResourceHandler],
        rm_procs: dict[int, Process],
        core: WorkloadManagerCore,
        fault_events: deque,
        waker: _Waker,
    ) -> None:
        """Arm one engine callback per spec'd permanent PE failure."""

        def make_kill(handler: ResourceHandler):
            def kill() -> None:
                if handler.failed or core.all_complete():
                    return
                orphans = handler.mark_failed(engine.now)
                proc = rm_procs[handler.pe_id]
                if not proc.triggered:
                    # Fail-stop: abandon whatever the RM is doing.  An
                    # uncaught Interrupt is a clean process exit; a doomed
                    # in-flight attempt still charges its host core (the
                    # _Consume event self-drives) — modeling the core being
                    # wedged until the failure is fenced off.
                    proc.interrupt("pe-failure")
                fault_events.append((handler, orphans))
                waker.fire()

            return kill

        for handler in handlers:
            t_fail = injector.fail_at(handler)
            if t_fail is not None:
                engine.call_at(t_fail, make_kill(handler))

    # -- workload-manager process -------------------------------------------------------

    def _wm_process(
        self,
        engine: Engine,
        session: EmulationSession,
        core: WorkloadManagerCore,
        mgmt_core: HostCore,
        mailboxes: dict[int, Mailbox],
        completed: deque,
        requeues: deque,
        fault_events: deque,
        waker: _Waker,
    ):
        cost_model = session.cost_model
        policy = session.scheduler.name
        self_serve = session.scheduler.uses_reservation
        n_pes = session.n_pes
        qos = session.qos
        draining = False
        wm_token = object()  # identity on the management core

        while not core.all_complete():
            if qos is not None and not draining:
                reason = qos.poll(engine.now)
                if reason is not None:
                    session.stats.mark_interrupted(reason, engine.now)
                    _log.warning(
                        "virtual emulation draining at t=%.1fus (%s)",
                        engine.now, reason,
                    )
                    draining = True
            if draining:
                # Graceful shutdown: absorb whatever already finished, stop
                # injecting/scheduling, and exit once every PE is quiet.
                now = engine.now
                core.process_completions(completed, now)
                completed.clear()
                while fault_events:
                    failed_handler, orphans = fault_events.popleft()
                    core.absorb_pe_failure(failed_handler, orphans, now)
                if requeues:
                    core.absorb_requeues(list(requeues), now)
                    requeues.clear()
                if not any(
                    h.status in (PEStatus.RUN, PEStatus.COMPLETE)
                    for h in session.handlers
                ):
                    return
                yield waker.wait_event()
                continue
            # Sleep until something is actionable: a buffered completion, a
            # fault event to absorb, or the workload queue's head arrival
            # coming due (and admittable — a defer-blocked arrival waits
            # for the completion that frees capacity, not for a timer).
            if (
                not completed
                and not fault_events
                and not requeues
                and not (
                    core.has_due_arrival(engine.now) and core.admission_open()
                )
            ):
                wait = waker.wait_event()
                nxt = core.next_arrival()
                if nxt is not None and core.admission_open():
                    engine.call_at(max(nxt, engine.now), waker.wake)
                yield wait
                continue  # re-evaluate state at the wakeup instant

            now = engine.now
            # process_completions drains synchronously; nothing can append
            # mid-call, so hand it the deque and clear afterwards instead
            # of copying every pass.
            n_comp = core.process_completions(completed, now)
            completed.clear()
            while fault_events:
                failed_handler, orphans = fault_events.popleft()
                core.absorb_pe_failure(failed_handler, orphans, now)
            if requeues:
                core.absorb_requeues(list(requeues), now)
                requeues.clear()
            core.inject_due(now)
            ready_len = len(core.ready)
            assignments = core.run_policy(now)

            overhead, invocations = cost_model.pass_cost(
                policy, ready_len, n_pes, n_comp, len(assignments),
                per_completion=not self_serve,
            )
            # The pass executes serially on the management core; HostCore
            # divides by core speed (slow LITTLE overlay -> larger overhead,
            # the Fig. 11 mechanism).
            yield from mgmt_core.consume(wm_token, overhead)
            effective = overhead / mgmt_core.speed
            for _ in range(invocations):
                session.stats.record_scheduling_pass(
                    effective / invocations, ready_len
                )

            dispatch_now = engine.now
            core.commit(assignments, dispatch_now)
            for a in assignments:
                try:
                    if self_serve:
                        started = a.handler.reserve(a.task)
                        if started:
                            mailboxes[a.handler.pe_id].put(a.task)
                    else:
                        a.handler.assign(a.task)
                        mailboxes[a.handler.pe_id].put(a.task)
                except PEFailedError:
                    # The PE failed while this pass was charging its
                    # overhead; put the task back for the next pass.
                    core.recover_failed_dispatch(a.task, dispatch_now)
            core.check_liveness(
                dispatch_now,
                pending_completions=(
                    len(completed) + len(requeues) + len(fault_events)
                ),
            )

    # -- resource-manager process ----------------------------------------------------------

    def _rm_process(
        self,
        engine: Engine,
        session: EmulationSession,
        handler: ResourceHandler,
        host: HostCore,
        device: FFTAcceleratorDevice | None,
        mailbox: Mailbox,
        completed: deque,
        requeues: deque,
        waker: _Waker,
    ):
        perf = session.perf_model
        pe_type = handler.pe.pe_type
        is_accel = pe_type.is_accelerator
        jitter_rng = (
            session.seeds.rng("jitter", handler.name) if session.jitter else None
        )
        self_serve = session.scheduler.uses_reservation
        injector = session.faults
        slowdown = (
            injector.slowdown_for(handler) if injector is not None else 1.0
        )

        while True:
            task = yield mailbox.get()
            while task is not None:
                binding = task.chosen_platform
                if binding is None:
                    raise EmulationError(
                        f"PE {handler.name}: task {task.qualified_name()} "
                        "dispatched without a platform binding"
                    )
                jitter = (
                    perf.jitter(jitter_rng) if jitter_rng is not None else 1.0
                )
                task.mark_running(engine.now)
                if is_accel:
                    if device is None:
                        raise EmulationError(
                            f"PE {handler.name}: accelerator PE without device"
                        )
                    points = perf.accel_points(binding.runfunc)
                    nbytes = perf.accel_transfer_bytes(binding.runfunc)
                    t_in = device.dma.transfer_time(nbytes)
                    t_out = device.dma.transfer_time(nbytes)
                    t_compute = device.compute_time(points) * jitter
                    durations = (t_in, t_compute, t_out)
                else:
                    service = perf.cpu_time(binding.runfunc, pe_type) * jitter
                    durations = (service,)
                if injector is None:
                    # Fault-free fast path: identical yield sequence (and
                    # therefore identical event ordering) to the pre-fault
                    # backend.
                    yield from self._charge(engine, handler, host, is_accel, durations)
                else:
                    if slowdown != 1.0:
                        durations = tuple(d * slowdown for d in durations)
                    attempts = 0
                    gave_up = False
                    while True:
                        # The fault is decided up front (one RNG draw per
                        # attempt); the attempt still charges its full
                        # modeled time before the fault manifests.
                        fault = injector.draw_fault(handler)
                        yield from self._charge(
                            engine, handler, host, is_accel, durations
                        )
                        if fault is None:
                            break
                        attempts += 1
                        session.stats.record_transient_fault(
                            handler.name, task.qualified_name(), attempts,
                            engine.now, fault,
                        )
                        if attempts > injector.max_retries:
                            gave_up = True
                            break
                        yield engine.timeout(injector.backoff_us(attempts))
                    if gave_up:
                        # Retries exhausted: hand the task back to the WM
                        # for rescheduling and continue with reserved work.
                        task.mark_requeued(engine.now)
                        next_task = handler.abort_task(self_serve=self_serve)
                        requeues.append((handler, task))
                        waker.fire()
                        task = next_task
                        continue
                task.mark_complete(engine.now)
                next_task = handler.finish_task(self_serve=self_serve)
                completed.append((handler, task))
                waker.fire()
                task = next_task

    @staticmethod
    def _charge(
        engine: Engine,
        handler: ResourceHandler,
        host: HostCore,
        is_accel: bool,
        durations: tuple,
    ):
        """Charge one execution attempt's modeled time (one task, one try)."""
        if is_accel:
            t_in, t_compute, t_out = durations
            # DDR -> BRAM transfer occupies the manager's host core.
            yield from host.consume(handler, t_in)
            # The manager thread sleeps while the device computes,
            # releasing the core to co-resident manager threads.
            yield engine.timeout(t_compute)
            # BRAM -> DDR transfer occupies the core again.
            yield from host.consume(handler, t_out)
        else:
            # cpu_time() already applied the PE-type speed; the host
            # core's own speed equals the PE's, so consume the
            # pre-scaled duration at unit core speed.
            yield from host.consume(handler, durations[0] * host.speed)
