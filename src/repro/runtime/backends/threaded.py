"""Threaded backend: the runtime on real host threads with real kernels.

This is the faithful functional path: a workload-manager thread on behalf
of the management core, one resource-manager thread per PE (optionally
pinned with ``sched_setaffinity`` on Linux), tasks executing their actual
kernel functions against the emulated shared memory, and accelerator PEs
driving the functional FFT device through the full DMA protocol.

Wall-clock timing here is *measured*, not modeled — including the real
scheduling overhead of each WM pass — but a Python runtime cannot hit the
paper's microsecond dispatch latencies (interpreter + GIL), so absolute
numbers from this backend are only meaningful relative to each other.
Figure reproduction uses the virtual backend; this backend provides
functional verification (validation mode) and the Case Study 4 speedup
measurements.

Crash semantics: a kernel exception (not retried away by fault hardening)
fail-stops its PE — the handler transitions to ``PEStatus.FAILED`` so no
handler is left stuck in RUN — and every RM/WM failure collected during
teardown is chained into the raised error rather than silently dropped.
Fault injection (``EmulationSession.faults``) adds wall-clock analogues of
the virtual backend's faults: timed permanent PE failures checked at task
boundaries, per-attempt transient kernel faults with bounded
retry-with-backoff, and post-kernel stall slowdowns.
"""

from __future__ import annotations

import os
import threading
import time

from repro.appmodel.library import KernelContext
from repro.common.errors import EmulationError
from repro.common.log import get_logger
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.runtime.backends.base import (
    EmulationSession,
    ExecutionBackend,
    PerfModelOracle,
)
from repro.runtime.faults import InjectedKernelFault
from repro.runtime.handler import PEFailedError, PEStatus, ResourceHandler
from repro.runtime.stats import EmulationStats
from repro.runtime.workload_manager import WorkloadManagerCore

_log = get_logger("runtime.backends.threaded")


def _try_pin(core_index: int) -> bool:
    """Best-effort affinity pin of the calling thread to one host core."""
    if not hasattr(os, "sched_setaffinity"):
        return False
    try:
        available = os.sched_getaffinity(0)
        if core_index not in available:
            return False
        os.sched_setaffinity(threading.get_native_id(), {core_index})
        return True
    except OSError:  # pragma: no cover - platform dependent
        return False


def combine_failures(failures: list[BaseException]) -> BaseException:
    """One exception carrying *every* collected backend failure.

    A single failure is returned as-is (callers re-raise it unchanged); for
    concurrent failures the summary error chains the first as ``__cause__``
    and attaches the rest as notes, so no RM thread's exception is dropped.
    """
    if not failures:
        raise ValueError("combine_failures requires at least one failure")
    if len(failures) == 1:
        return failures[0]
    summary = "; ".join(f"{type(e).__name__}: {e}" for e in failures)
    err = EmulationError(
        f"{len(failures)} concurrent backend failures: {summary}"
    )
    err.__cause__ = failures[0]
    add_note = getattr(err, "add_note", None)
    if add_note is not None:  # pragma: no branch - 3.11+
        for extra in failures[1:]:
            add_note(f"concurrent failure: {type(extra).__name__}: {extra}")
    return err


class ThreadedBackend(ExecutionBackend):
    name = "threaded"

    def __init__(
        self,
        *,
        pin_threads: bool = False,
        poll_interval_s: float = 0.0005,
        timeout_s: float = 300.0,
        join_timeout_s: float = 5.0,
    ) -> None:
        self.pin_threads = pin_threads
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s
        self.join_timeout_s = join_timeout_s

    def run(self, session: EmulationSession) -> EmulationStats:
        for instance in session.instances:
            if instance.variables is None:
                raise EmulationError(
                    "threaded backend requires materialized instances "
                    "(instantiate with materialize_memory=True)"
                )
        if session.source is not None and not hasattr(
            session.source, "instances"
        ):
            # Open-loop streams pace arrivals in virtual time and release
            # instances on completion — neither fits the real-time threaded
            # execution model.
            raise EmulationError(
                "threaded backend cannot run open-loop arrival streams; "
                "use the virtual backend for --arrivals runs"
            )
        devices: dict[int, FFTAcceleratorDevice] = {}
        for pe in session.plan.pes:
            if pe.is_accelerator:
                devices[pe.pe_id] = session.platform.make_accelerator(
                    f"{pe.name}_dev"
                )
        if session.scheduler.oracle is None:
            session.scheduler.oracle = PerfModelOracle(session.perf_model, devices)

        core = WorkloadManagerCore(
            session.source if session.source is not None else session.instances,
            session.handlers,
            session.scheduler,
            session.stats,
            validate=session.validate_assignments,
            faults=session.faults,
            qos=session.qos,
        )
        if session.qos is not None:
            session.qos.start_run()
        # Reference start time: all timestamps are µs since this instant.
        ref = time.perf_counter()

        def clock() -> float:
            return (time.perf_counter() - ref) * 1e6

        wm_lock = threading.Lock()
        wm_condition = threading.Condition(wm_lock)
        completed: list[tuple[ResourceHandler, object]] = []
        #: tasks handed back after exhausted in-place retries
        requeues: list[tuple[ResourceHandler, object]] = []
        #: (handler, orphans) pairs from permanent PE failures
        pe_failures: list[tuple[ResourceHandler, list]] = []
        failure: list[BaseException] = []

        rm_threads = [
            threading.Thread(
                target=self._rm_loop,
                args=(session, handler, devices.get(handler.pe_id), clock,
                      wm_condition, completed, requeues, pe_failures, failure),
                name=f"rm-{handler.name}",
                daemon=True,
            )
            for handler in session.handlers
        ]
        for t in rm_threads:
            t.start()
        try:
            self._wm_loop(
                session, core, clock, wm_condition,
                completed, requeues, pe_failures, failure,
            )
        finally:
            for handler in session.handlers:
                handler.request_shutdown()
            for t in rm_threads:
                t.join(timeout=self.join_timeout_s)
            alive = [t.name for t in rm_threads if t.is_alive()]
            if alive:
                _log.warning(
                    "%d RM daemon thread(s) still alive after %.1fs join "
                    "timeout (hung kernel?): %s",
                    len(alive), self.join_timeout_s, ", ".join(alive),
                )
            # A task dispatched in the same WM pass that detected a failure
            # can be stranded: the RM observes the shutdown flag and exits
            # without ever claiming it.  Abort it so no handler whose RM has
            # exited is left stuck in RUN (a still-alive RM owns its state).
            for t, handler in zip(rm_threads, session.handlers):
                if not t.is_alive() and handler.status is PEStatus.RUN:
                    try:
                        handler.abort_task()
                    except EmulationError:  # pragma: no cover - RM exit race
                        pass
        if failure:
            raise combine_failures(failure)
        if session.stats.interrupted:
            # Drained early (signal or budget): partial stats are the
            # deliverable, so the completeness invariant does not apply.
            return session.stats
        session.stats.assert_all_complete()
        return session.stats

    # -- workload-manager thread (runs on the caller) ------------------------------------

    def _wm_loop(self, session, core, clock, wm_condition,
                 completed, requeues, pe_failures, failure):
        self_serve = session.scheduler.uses_reservation
        if self.pin_threads:
            _try_pin(session.platform.management_core)
        deadline = time.perf_counter() + self.timeout_s
        qos = session.qos
        hb_timeout_us = qos.heartbeat_timeout_us if qos is not None else None
        draining = False
        drain_deadline = 0.0
        while not core.all_complete():
            if failure:
                return
            if time.perf_counter() > deadline:
                raise EmulationError(
                    f"threaded emulation exceeded {self.timeout_s}s "
                    f"({core.apps_completed}/{core.n_apps} apps complete)"
                )
            if qos is not None and not draining:
                reason = qos.poll()
                if reason is not None:
                    session.stats.mark_interrupted(reason, clock())
                    _log.warning(
                        "threaded emulation draining (%s); waiting up to "
                        "%.1fs for in-flight tasks",
                        reason, self.join_timeout_s,
                    )
                    draining = True
                    drain_deadline = time.perf_counter() + self.join_timeout_s
            if draining:
                # Graceful shutdown: stop injecting/scheduling, absorb what
                # finishes, and exit once every PE is quiet (or the drain
                # deadline passes — a hung kernel must not hold us hostage).
                with wm_condition:
                    batch = list(completed)
                    completed.clear()
                    fail_batch = list(pe_failures)
                    pe_failures.clear()
                    req_batch = list(requeues)
                    requeues.clear()
                now = clock()
                core.process_completions(batch, now)
                for failed_handler, orphans in fail_batch:
                    core.absorb_pe_failure(failed_handler, orphans, now)
                if req_batch:
                    core.absorb_requeues(req_batch, now)
                busy = any(
                    h.status in (PEStatus.RUN, PEStatus.COMPLETE)
                    for h in session.handlers
                )
                if not busy:
                    with wm_condition:
                        if not completed and not requeues and not pe_failures:
                            return
                elif time.perf_counter() > drain_deadline:
                    _log.warning(
                        "drain deadline exceeded; abandoning in-flight tasks"
                    )
                    return
                with wm_condition:
                    wm_condition.wait(timeout=self.poll_interval_s * 10)
                continue
            with wm_condition:
                if (
                    not completed
                    and not requeues
                    and not pe_failures
                    and not (
                        core.has_due_arrival(clock()) and core.admission_open()
                    )
                ):
                    nxt = core.next_arrival()
                    wait_s = self.poll_interval_s
                    if nxt is not None and core.admission_open():
                        wait_s = max(0.0, min(wait_s * 50, (nxt - clock()) / 1e6))
                        wait_s = max(wait_s, 1e-5)
                    wm_condition.wait(timeout=wait_s)
                batch = list(completed)
                completed.clear()
                fail_batch = list(pe_failures)
                pe_failures.clear()
                req_batch = list(requeues)
                requeues.clear()
            t0 = clock()
            now = t0
            n_comp = core.process_completions(batch, now)
            for failed_handler, orphans in fail_batch:
                core.absorb_pe_failure(failed_handler, orphans, now)
            if req_batch:
                core.absorb_requeues(req_batch, now)
            if hb_timeout_us is not None:
                self._check_heartbeats(session, core, now, hb_timeout_us)
            core.inject_due(now)
            ready_len = len(core.ready)
            assignments = core.run_policy(now)
            core.commit(assignments, clock())
            for a in assignments:
                try:
                    if self_serve:
                        a.handler.reserve(a.task)
                    else:
                        a.handler.assign(a.task)
                    if hb_timeout_us is not None:
                        a.handler.heartbeat = clock()
                except PEFailedError:
                    # Lost the race against a concurrent PE failure.
                    core.recover_failed_dispatch(a.task, clock())
            # Measured overhead: monitor + ready update + policy + dispatch.
            if n_comp or assignments or ready_len:
                session.stats.record_scheduling_pass(clock() - t0, ready_len)
            with wm_condition:
                pending = len(completed) + len(requeues) + len(pe_failures)
            try:
                core.check_liveness(clock(), pending_completions=pending)
            except EmulationError:
                # A completion may have landed between the snapshot and the
                # verdict; only a still-empty queue is a real deadlock.
                with wm_condition:
                    if not completed and not requeues and not pe_failures:
                        raise

    @staticmethod
    def _check_heartbeats(session, core, now, hb_timeout_us):
        """QoS watchdog: fail-stop PEs whose RM shows no sign of life.

        A PE stuck in RUN with a stale heartbeat has a hung kernel (the RM
        stamps the heartbeat at dispatch and around every attempt).  The
        existing ``mark_failed`` path orphans its work for rescheduling on
        the surviving PEs; the hung RM thread notices ``handler.failed``
        when (if) its kernel returns and exits without touching the task.
        """
        for handler in session.handlers:
            if handler.failed or handler.heartbeat < 0.0:
                continue
            if handler.status is not PEStatus.RUN:
                continue
            stale = now - handler.heartbeat
            if stale <= hb_timeout_us:
                continue
            _log.warning(
                "watchdog: PE %s unresponsive for %.0fms (timeout %.0fms); "
                "fail-stopping it",
                handler.name, stale / 1e3, hb_timeout_us / 1e3,
            )
            orphans = handler.mark_failed(now)
            core.absorb_pe_failure(
                handler, orphans, now, kind="watchdog_failstop"
            )

    # -- resource-manager threads -----------------------------------------------------------

    def _rm_loop(self, session, handler, device, clock, wm_condition,
                 completed, requeues, pe_failures, failure):
        if self.pin_threads:
            _try_pin(handler.pe.host_core)
        self_serve = session.scheduler.uses_reservation
        app_handler = session.app_handler
        injector = session.faults
        fail_at = injector.fail_at(handler) if injector is not None else None
        slowdown = (
            injector.slowdown_for(handler) if injector is not None else 1.0
        )
        harden = injector.harden if injector is not None else False

        def fail_permanently() -> None:
            """Fail-stop this PE and hand its orphaned work to the WM."""
            orphans = handler.mark_failed(clock())
            with wm_condition:
                pe_failures.append((handler, orphans))
                wm_condition.notify_all()

        try:
            while True:
                if (
                    fail_at is not None
                    and not handler.failed
                    and clock() >= fail_at
                ):
                    fail_permanently()
                    return
                task = handler.wait_for_work(timeout=0.05)
                if task is None:
                    if handler.shutdown or handler.failed:
                        return
                    continue
                while task is not None:
                    # Timed failures are checked at task boundaries: a
                    # kernel already executing runs to completion (wall
                    # clock cannot be interrupted mid-kernel).
                    if (
                        fail_at is not None
                        and not handler.failed
                        and clock() >= fail_at
                    ):
                        fail_permanently()
                        return
                    binding = task.chosen_platform
                    if binding is None:
                        raise EmulationError(
                            f"PE {handler.name}: task without platform binding"
                        )
                    kernel = app_handler.resolved(task.app_name).kernel_for(
                        task.name, binding.name
                    )
                    ctx = KernelContext(
                        task.app.variables,
                        arg_names=task.node.arguments,
                        platform=binding.name,
                        node_name=task.name,
                        app_name=task.app_name,
                        device=device,
                    )
                    task.mark_running(clock())
                    attempts = 0
                    requeued = False
                    while True:
                        # Sign of life for the QoS watchdog: stamped before
                        # every attempt, never *during* a kernel — which is
                        # exactly what makes a hung kernel detectable.
                        handler.heartbeat = clock()
                        injected = (
                            injector.draw_fault(handler)
                            if injector is not None
                            else None
                        )
                        try:
                            if injected is not None:
                                raise InjectedKernelFault(injected)
                            kernel(ctx)
                            break
                        except Exception as exc:
                            is_injected = isinstance(exc, InjectedKernelFault)
                            if injector is None or not (is_injected or harden):
                                raise EmulationError(
                                    f"kernel {binding.runfunc!r} failed on "
                                    f"{task.qualified_name()}: {exc}"
                                ) from exc
                            attempts += 1
                            kind = exc.kind if is_injected else "kernel_error"
                            session.stats.record_transient_fault(
                                handler.name, task.qualified_name(),
                                attempts, clock(), kind,
                            )
                            if handler.failed:
                                # The watchdog (or a timed failure) already
                                # fail-stopped this PE and orphaned the
                                # task; it is no longer ours to touch.
                                return
                            if attempts > injector.max_retries:
                                # Retries exhausted: return the task to the
                                # WM for rescheduling on another PE.
                                try:
                                    task.mark_requeued(clock())
                                    next_task = handler.abort_task(
                                        self_serve=self_serve
                                    )
                                except EmulationError:
                                    if handler.failed:
                                        return
                                    raise
                                with wm_condition:
                                    requeues.append((handler, task))
                                    wm_condition.notify_all()
                                task = next_task
                                requeued = True
                                break
                            time.sleep(
                                min(injector.backoff_us(attempts) / 1e6, 0.05)
                            )
                    if requeued:
                        continue
                    if handler.failed:
                        # The kernel returned after the watchdog fail-stopped
                        # this PE: the task was orphaned and requeued (maybe
                        # even re-dispatched elsewhere) — drop the stale
                        # result and exit; the PE is terminally dead.
                        return
                    if slowdown > 1.0:
                        # Model a degraded PE as a post-kernel stall
                        # proportional to the measured kernel time.
                        elapsed_us = clock() - task.start_time
                        time.sleep(
                            min((slowdown - 1.0) * elapsed_us / 1e6, 0.25)
                        )
                    try:
                        task.mark_complete(clock())
                        next_task = handler.finish_task(self_serve=self_serve)
                    except EmulationError:
                        if handler.failed:
                            # Lost the tiny race against a concurrent
                            # watchdog fail-stop; same story as above.
                            return
                        raise
                    with wm_condition:
                        completed.append((handler, task))
                        wm_condition.notify_all()
                    task = next_task
        except BaseException as exc:  # propagate to the WM thread
            # Fail-stop the PE so no handler is left stuck in RUN and the
            # WM requeues (or degrades) whatever work it still held.
            try:
                orphans = handler.mark_failed(clock())
            except Exception:  # pragma: no cover - defensive
                orphans = []
            failure.append(exc)
            with wm_condition:
                if orphans:
                    pe_failures.append((handler, orphans))
                wm_condition.notify_all()
