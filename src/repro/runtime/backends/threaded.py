"""Threaded backend: the runtime on real host threads with real kernels.

This is the faithful functional path: a workload-manager thread on behalf
of the management core, one resource-manager thread per PE (optionally
pinned with ``sched_setaffinity`` on Linux), tasks executing their actual
kernel functions against the emulated shared memory, and accelerator PEs
driving the functional FFT device through the full DMA protocol.

Wall-clock timing here is *measured*, not modeled — including the real
scheduling overhead of each WM pass — but a Python runtime cannot hit the
paper's microsecond dispatch latencies (interpreter + GIL), so absolute
numbers from this backend are only meaningful relative to each other.
Figure reproduction uses the virtual backend; this backend provides
functional verification (validation mode) and the Case Study 4 speedup
measurements.
"""

from __future__ import annotations

import os
import threading
import time

from repro.appmodel.library import KernelContext
from repro.common.errors import EmulationError
from repro.common.log import get_logger
from repro.hardware.accelerator import FFTAcceleratorDevice
from repro.runtime.backends.base import (
    EmulationSession,
    ExecutionBackend,
    PerfModelOracle,
)
from repro.runtime.handler import ResourceHandler
from repro.runtime.stats import EmulationStats
from repro.runtime.workload_manager import WorkloadManagerCore

_log = get_logger("runtime.backends.threaded")


def _try_pin(core_index: int) -> bool:
    """Best-effort affinity pin of the calling thread to one host core."""
    if not hasattr(os, "sched_setaffinity"):
        return False
    try:
        available = os.sched_getaffinity(0)
        if core_index not in available:
            return False
        os.sched_setaffinity(threading.get_native_id(), {core_index})
        return True
    except OSError:  # pragma: no cover - platform dependent
        return False


class ThreadedBackend(ExecutionBackend):
    name = "threaded"

    def __init__(
        self,
        *,
        pin_threads: bool = False,
        poll_interval_s: float = 0.0005,
        timeout_s: float = 300.0,
    ) -> None:
        self.pin_threads = pin_threads
        self.poll_interval_s = poll_interval_s
        self.timeout_s = timeout_s

    def run(self, session: EmulationSession) -> EmulationStats:
        for instance in session.instances:
            if instance.variables is None:
                raise EmulationError(
                    "threaded backend requires materialized instances "
                    "(instantiate with materialize_memory=True)"
                )
        devices: dict[int, FFTAcceleratorDevice] = {}
        for pe in session.plan.pes:
            if pe.is_accelerator:
                devices[pe.pe_id] = session.platform.make_accelerator(
                    f"{pe.name}_dev"
                )
        if session.scheduler.oracle is None:
            session.scheduler.oracle = PerfModelOracle(session.perf_model, devices)

        core = WorkloadManagerCore(
            session.instances,
            session.handlers,
            session.scheduler,
            session.stats,
            validate=session.validate_assignments,
        )
        # Reference start time: all timestamps are µs since this instant.
        ref = time.perf_counter()

        def clock() -> float:
            return (time.perf_counter() - ref) * 1e6

        wm_lock = threading.Lock()
        wm_condition = threading.Condition(wm_lock)
        completed: list[tuple[ResourceHandler, object]] = []
        failure: list[BaseException] = []

        rm_threads = [
            threading.Thread(
                target=self._rm_loop,
                args=(session, handler, devices.get(handler.pe_id), clock,
                      wm_condition, completed, failure),
                name=f"rm-{handler.name}",
                daemon=True,
            )
            for handler in session.handlers
        ]
        for t in rm_threads:
            t.start()
        try:
            self._wm_loop(session, core, clock, wm_condition, completed, failure)
        finally:
            for handler in session.handlers:
                handler.request_shutdown()
            for t in rm_threads:
                t.join(timeout=5.0)
        if failure:
            raise failure[0]
        session.stats.assert_all_complete()
        return session.stats

    # -- workload-manager thread (runs on the caller) ------------------------------------

    def _wm_loop(self, session, core, clock, wm_condition, completed, failure):
        self_serve = session.scheduler.uses_reservation
        if self.pin_threads:
            _try_pin(session.platform.management_core)
        deadline = time.perf_counter() + self.timeout_s
        while not core.all_complete():
            if failure:
                return
            if time.perf_counter() > deadline:
                raise EmulationError(
                    f"threaded emulation exceeded {self.timeout_s}s "
                    f"({core.apps_completed}/{core.n_apps} apps complete)"
                )
            with wm_condition:
                if not completed and not core.has_due_arrival(clock()):
                    nxt = core.next_arrival()
                    wait_s = self.poll_interval_s
                    if nxt is not None:
                        wait_s = max(0.0, min(wait_s * 50, (nxt - clock()) / 1e6))
                        wait_s = max(wait_s, 1e-5)
                    wm_condition.wait(timeout=wait_s)
                batch = list(completed)
                completed.clear()
            t0 = clock()
            now = t0
            n_comp = core.process_completions(batch, now)
            core.inject_due(now)
            ready_len = len(core.ready)
            assignments = core.run_policy(now)
            core.commit(assignments, clock())
            for a in assignments:
                if self_serve:
                    a.handler.reserve(a.task)
                else:
                    a.handler.assign(a.task)
            # Measured overhead: monitor + ready update + policy + dispatch.
            if n_comp or assignments or ready_len:
                session.stats.record_scheduling_pass(clock() - t0, ready_len)
            with wm_condition:
                pending = len(completed)
            try:
                core.check_liveness(clock(), pending_completions=pending)
            except EmulationError:
                # A completion may have landed between the snapshot and the
                # verdict; only a still-empty queue is a real deadlock.
                with wm_condition:
                    if not completed:
                        raise

    # -- resource-manager threads -----------------------------------------------------------

    def _rm_loop(self, session, handler, device, clock, wm_condition,
                 completed, failure):
        if self.pin_threads:
            _try_pin(handler.pe.host_core)
        self_serve = session.scheduler.uses_reservation
        app_handler = session.app_handler
        try:
            while True:
                task = handler.wait_for_work(timeout=0.05)
                if task is None:
                    if handler.shutdown:
                        return
                    continue
                while task is not None:
                    binding = task.chosen_platform
                    if binding is None:
                        raise EmulationError(
                            f"PE {handler.name}: task without platform binding"
                        )
                    kernel = app_handler.resolved(task.app_name).kernel_for(
                        task.name, binding.name
                    )
                    ctx = KernelContext(
                        task.app.variables,
                        arg_names=task.node.arguments,
                        platform=binding.name,
                        node_name=task.name,
                        app_name=task.app_name,
                        device=device,
                    )
                    task.mark_running(clock())
                    try:
                        kernel(ctx)
                    except Exception as exc:
                        raise EmulationError(
                            f"kernel {binding.runfunc!r} failed on "
                            f"{task.qualified_name()}: {exc}"
                        ) from exc
                    task.mark_complete(clock())
                    handler.busy_time += task.finish_time - task.start_time
                    next_task = handler.finish_task(self_serve=self_serve)
                    with wm_condition:
                        completed.append((handler, task))
                        wm_condition.notify_all()
                    task = next_task
        except BaseException as exc:  # propagate to the WM thread
            failure.append(exc)
            with wm_condition:
                wm_condition.notify_all()
