"""Workload creation: validation mode and performance mode (Sec. II-B).

* **Validation mode** — every requested instance arrives at t=0 and the
  emulation finishes once all applications complete.
* **Performance mode** — applications are injected periodically over a test
  time-frame (the paper uses 100 ms) with a per-application period and
  injection probability; varying the periods sets the average injection
  rate (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ApplicationSpecError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MS


@dataclass(frozen=True)
class WorkloadItem:
    """One application arrival: which archetype, and when."""

    app_name: str
    arrival_time: float  # µs relative to the emulation reference start time

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ApplicationSpecError(
                f"negative arrival time for {self.app_name!r}"
            )


@dataclass
class WorkloadSpec:
    """A complete workload: ordered arrivals plus provenance metadata."""

    items: list[WorkloadItem]
    mode: str = "validation"            # "validation" | "performance"
    time_frame: float = 0.0             # µs (performance mode window)
    description: str = ""

    def __post_init__(self) -> None:
        self.items = sorted(self.items, key=lambda it: it.arrival_time)

    @property
    def size(self) -> int:
        return len(self.items)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for item in self.items:
            out[item.app_name] = out.get(item.app_name, 0) + 1
        return out

    def injection_rate_per_ms(self) -> float:
        """Average injection rate in jobs per millisecond (performance mode)."""
        if self.time_frame <= 0:
            return 0.0
        return self.size / (self.time_frame / MS)


def validation_workload(app_counts: dict[str, int]) -> WorkloadSpec:
    """All instances at t=0 (functional-verification mode)."""
    items: list[WorkloadItem] = []
    for app_name, count in app_counts.items():
        if count < 0:
            raise ApplicationSpecError(f"negative count for {app_name!r}")
        items.extend(WorkloadItem(app_name, 0.0) for _ in range(count))
    if not items:
        raise ApplicationSpecError("validation workload is empty")
    return WorkloadSpec(
        items=items,
        mode="validation",
        description=f"validation: {dict(sorted(app_counts.items()))}",
    )


def periodic_arrivals(
    period: float,
    time_frame: float,
    probability: float = 1.0,
    rng: np.random.Generator | None = None,
    phase: float = 0.0,
) -> list[float]:
    """Arrival instants for one application: every ``period`` µs within
    ``[0, time_frame)``, each kept with ``probability``."""
    # NaN/inf would make every loop comparison False and spin forever, so
    # reject non-finite parameters up front alongside the sign checks.
    if not np.isfinite(period) or period <= 0:
        raise ApplicationSpecError(f"period must be positive, got {period}")
    if not np.isfinite(time_frame) or time_frame <= 0:
        raise ApplicationSpecError(
            f"time_frame must be positive, got {time_frame}"
        )
    if not np.isfinite(phase) or phase < 0:
        raise ApplicationSpecError(f"phase must be >= 0, got {phase}")
    if not 0.0 <= probability <= 1.0:
        raise ApplicationSpecError(f"probability out of range: {probability}")
    arrivals: list[float] = []
    k = 0
    # Multiply rather than accumulate so float error cannot admit an extra
    # k*period == time_frame arrival (period is often time_frame/count).
    eps = 1e-9 * max(time_frame, 1.0)
    while True:
        t = phase + k * period
        if t >= time_frame - eps:
            break
        if probability >= 1.0 or (rng is not None and rng.random() < probability):
            arrivals.append(t)
        k += 1
    return arrivals


def performance_workload(
    app_periods: dict[str, float],
    time_frame: float = 100.0 * MS,
    probabilities: dict[str, float] | None = None,
    seed: int | None = None,
) -> WorkloadSpec:
    """Probabilistic periodic trace over the test time-frame.

    ``app_periods`` maps app name → injection period in µs; the optional
    ``probabilities`` map defaults each app to 1.0 (the paper's setting).
    """
    if not np.isfinite(time_frame) or time_frame <= 0:
        raise ApplicationSpecError(
            f"time_frame must be positive, got {time_frame}"
        )
    probabilities = probabilities or {}
    factory = SeedSequenceFactory(seed)
    items: list[WorkloadItem] = []
    for app_name, period in sorted(app_periods.items()):
        prob = probabilities.get(app_name, 1.0)
        rng = factory.rng("arrivals", app_name) if prob < 1.0 else None
        for t in periodic_arrivals(period, time_frame, prob, rng):
            items.append(WorkloadItem(app_name, t))
    if not items:
        raise ApplicationSpecError("performance workload is empty")
    return WorkloadSpec(
        items=items,
        mode="performance",
        time_frame=time_frame,
        description=(
            f"performance: periods={ {k: round(v, 1) for k, v in app_periods.items()} }"
            f" over {time_frame / MS:.0f}ms"
        ),
    )


def workload_for_counts(
    app_counts: dict[str, int], time_frame: float = 100.0 * MS
) -> WorkloadSpec:
    """Performance-mode workload hitting exact per-app instance counts.

    Inverts the paper's Table II: given target counts over the window, the
    per-app period is ``time_frame / count`` (probability 1), producing
    exactly ``count`` arrivals at k·period for k = 0..count-1.
    """
    periods = {}
    for app_name, count in app_counts.items():
        if count < 0:
            raise ApplicationSpecError(
                f"negative instance count for {app_name!r}: {count}"
            )
        if count == 0:
            continue
        periods[app_name] = time_frame / count
    if not periods:
        raise ApplicationSpecError("no positive app counts given")
    spec = performance_workload(periods, time_frame)
    actual = spec.counts()
    expected = {k: v for k, v in app_counts.items() if v > 0}
    if actual != expected:
        raise ApplicationSpecError(
            f"count inversion failed: wanted {expected}, got {actual}"
        )
    return spec
