"""Workload creation: validation mode, performance mode, arrival streams.

* **Validation mode** — every requested instance arrives at t=0 and the
  emulation finishes once all applications complete.
* **Performance mode** — applications are injected periodically over a test
  time-frame (the paper uses 100 ms) with a per-application period and
  injection probability; varying the periods sets the average injection
  rate (Table II).
* **Arrival streams** — open-loop generator sources for serving-scale
  workloads: instead of materializing every arrival up front (fine for the
  paper's 100 ms windows, fatal at millions of instances), an
  :class:`ArrivalStream` yields ``(arrival_time_us, app_name)`` pairs
  lazily, in non-decreasing time order, with a bounded lookahead window.
  All sources are seeded and deterministic; :class:`SpecStream` re-expresses
  a finite :class:`WorkloadSpec` as a stream so both paths share one
  injection machinery.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ApplicationSpecError, EmulationError
from repro.common.rng import SeedSequenceFactory
from repro.common.units import MS


@dataclass(frozen=True)
class WorkloadItem:
    """One application arrival: which archetype, and when."""

    app_name: str
    arrival_time: float  # µs relative to the emulation reference start time

    def __post_init__(self) -> None:
        if self.arrival_time < 0:
            raise ApplicationSpecError(
                f"negative arrival time for {self.app_name!r}"
            )


@dataclass
class WorkloadSpec:
    """A complete workload: ordered arrivals plus provenance metadata."""

    items: list[WorkloadItem]
    mode: str = "validation"            # "validation" | "performance"
    time_frame: float = 0.0             # µs (performance mode window)
    description: str = ""

    def __post_init__(self) -> None:
        self.items = sorted(self.items, key=lambda it: it.arrival_time)

    @property
    def size(self) -> int:
        return len(self.items)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for item in self.items:
            out[item.app_name] = out.get(item.app_name, 0) + 1
        return out

    def injection_rate_per_ms(self) -> float:
        """Average injection rate in jobs per millisecond (performance mode)."""
        span = self.time_frame
        if span <= 0:
            if self.mode == "validation":
                # Validation mode has no time frame by construction; 0.0 is
                # the documented "not applicable" answer.
                return 0.0
            # No explicit window: fall back to the observed arrival span so
            # replayed traces still report a rate — and fail clearly when
            # the rate is genuinely undefined (single arrival / zero span)
            # instead of dividing by zero.
            if self.size >= 2:
                span = self.items[-1].arrival_time - self.items[0].arrival_time
            if span <= 0:
                raise EmulationError(
                    f"injection rate undefined for {self.mode!r} workload "
                    f"({self.size} arrival(s) over a zero time span); set "
                    "time_frame or provide at least two distinct arrivals"
                )
        return self.size / (span / MS)


def validation_workload(app_counts: dict[str, int]) -> WorkloadSpec:
    """All instances at t=0 (functional-verification mode)."""
    items: list[WorkloadItem] = []
    for app_name, count in app_counts.items():
        if count < 0:
            raise ApplicationSpecError(f"negative count for {app_name!r}")
        items.extend(WorkloadItem(app_name, 0.0) for _ in range(count))
    if not items:
        raise ApplicationSpecError("validation workload is empty")
    return WorkloadSpec(
        items=items,
        mode="validation",
        description=f"validation: {dict(sorted(app_counts.items()))}",
    )


def periodic_arrivals(
    period: float,
    time_frame: float,
    probability: float = 1.0,
    rng: np.random.Generator | None = None,
    phase: float = 0.0,
) -> list[float]:
    """Arrival instants for one application: every ``period`` µs within
    ``[0, time_frame)``, each kept with ``probability``."""
    # NaN/inf would make every loop comparison False and spin forever, so
    # reject non-finite parameters up front alongside the sign checks.
    if not np.isfinite(period) or period <= 0:
        raise ApplicationSpecError(f"period must be positive, got {period}")
    if not np.isfinite(time_frame) or time_frame <= 0:
        raise ApplicationSpecError(
            f"time_frame must be positive, got {time_frame}"
        )
    if not np.isfinite(phase) or phase < 0:
        raise ApplicationSpecError(f"phase must be >= 0, got {phase}")
    if not 0.0 <= probability <= 1.0:
        raise ApplicationSpecError(f"probability out of range: {probability}")
    arrivals: list[float] = []
    k = 0
    # Multiply rather than accumulate so float error cannot admit an extra
    # k*period == time_frame arrival (period is often time_frame/count).
    eps = 1e-9 * max(time_frame, 1.0)
    while True:
        t = phase + k * period
        if t >= time_frame - eps:
            break
        if probability >= 1.0 or (rng is not None and rng.random() < probability):
            arrivals.append(t)
        k += 1
    return arrivals


def performance_workload(
    app_periods: dict[str, float],
    time_frame: float = 100.0 * MS,
    probabilities: dict[str, float] | None = None,
    seed: int | None = None,
) -> WorkloadSpec:
    """Probabilistic periodic trace over the test time-frame.

    ``app_periods`` maps app name → injection period in µs; the optional
    ``probabilities`` map defaults each app to 1.0 (the paper's setting).
    """
    if not np.isfinite(time_frame) or time_frame <= 0:
        raise ApplicationSpecError(
            f"time_frame must be positive, got {time_frame}"
        )
    probabilities = probabilities or {}
    factory = SeedSequenceFactory(seed)
    items: list[WorkloadItem] = []
    for app_name, period in sorted(app_periods.items()):
        prob = probabilities.get(app_name, 1.0)
        rng = factory.rng("arrivals", app_name) if prob < 1.0 else None
        for t in periodic_arrivals(period, time_frame, prob, rng):
            items.append(WorkloadItem(app_name, t))
    if not items:
        raise ApplicationSpecError("performance workload is empty")
    return WorkloadSpec(
        items=items,
        mode="performance",
        time_frame=time_frame,
        description=(
            f"performance: periods={ {k: round(v, 1) for k, v in app_periods.items()} }"
            f" over {time_frame / MS:.0f}ms"
        ),
    )


def workload_for_counts(
    app_counts: dict[str, int], time_frame: float = 100.0 * MS
) -> WorkloadSpec:
    """Performance-mode workload hitting exact per-app instance counts.

    Inverts the paper's Table II: given target counts over the window, the
    per-app period is ``time_frame / count`` (probability 1), producing
    exactly ``count`` arrivals at k·period for k = 0..count-1.
    """
    periods = {}
    for app_name, count in app_counts.items():
        if count < 0:
            raise ApplicationSpecError(
                f"negative instance count for {app_name!r}: {count}"
            )
        if count == 0:
            continue
        periods[app_name] = time_frame / count
    if not periods:
        raise ApplicationSpecError("no positive app counts given")
    spec = performance_workload(periods, time_frame)
    actual = spec.counts()
    expected = {k: v for k, v in app_counts.items() if v > 0}
    if actual != expected:
        raise ApplicationSpecError(
            f"count inversion failed: wanted {expected}, got {actual}"
        )
    return spec


# ---------------------------------------------------------------------------
# Open-loop arrival streams
# ---------------------------------------------------------------------------

#: draws per RNG batch: the stream's only lookahead buffer, so memory stays
#: O(chunk) however long the stream runs
_CHUNK = 256


def validate_arrivals(iterable, what: str = "arrival stream"):
    """Wrap an arrival iterator, enforcing the stream contract lazily.

    Every yielded item must be a ``(time_us, app_name)`` pair with a finite,
    non-negative time no earlier than its predecessor.  Violations raise
    :class:`EmulationError` naming the offending index, so a bad trace file
    or source fails fast at the first out-of-order arrival instead of
    corrupting the emulation's event ordering.
    """
    last = 0.0
    for i, item in enumerate(iterable):
        try:
            t, app_name = item
        except (TypeError, ValueError):
            raise EmulationError(
                f"{what}: arrival #{i} is not a (time, app_name) pair: "
                f"{item!r}"
            ) from None
        t = float(t)
        if not math.isfinite(t) or t < 0:
            raise EmulationError(
                f"{what}: arrival #{i} has invalid time {t!r} "
                "(must be finite and >= 0)"
            )
        if t < last:
            raise EmulationError(
                f"{what}: arrival #{i} at t={t:.3f}us precedes arrival "
                f"#{i - 1} at t={last:.3f}us — arrival times must be "
                "non-decreasing"
            )
        last = t
        yield t, str(app_name)


def _normalize_mix(apps: dict[str, float], what: str):
    """Validate an app-weight mix; return (names, cumulative_weights)."""
    if not apps:
        raise EmulationError(f"{what}: app mix is empty")
    names: list[str] = []
    weights: list[float] = []
    for name in sorted(apps):
        w = float(apps[name])
        if not math.isfinite(w) or w <= 0:
            raise EmulationError(
                f"{what}: weight for {name!r} must be positive and finite, "
                f"got {w}"
            )
        names.append(name)
        weights.append(w)
    total = sum(weights)
    cum: list[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)
    cum[-1] = 1.0  # absorb float drift so every draw lands in range
    return tuple(names), cum


def _positive_rate(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise EmulationError(f"{what} must be positive and finite, got {value}")
    return value


class ArrivalStream:
    """Base class for open-loop arrival sources.

    Subclasses implement :meth:`arrivals`, a generator of
    ``(arrival_time_us, app_name)`` pairs; iteration always goes through the
    monotonicity guard, so any misbehaving source fails fast with the
    offending index.  ``total`` is the known arrival count for bounded
    streams (None when only a duration bounds the stream), and ``mode`` is
    what stats/report labels use.
    """

    mode = "openloop"
    description = ""

    @property
    def total(self) -> int | None:
        return None

    def arrivals(self):
        raise NotImplementedError

    def __iter__(self):
        return validate_arrivals(
            self.arrivals(), what=self.description or type(self).__name__
        )


class SpecStream(ArrivalStream):
    """Finite adapter: replays a :class:`WorkloadSpec` as an arrival stream.

    This is how the classic materialized path and the streaming path share
    one injection machinery — the spec's sorted items already satisfy the
    stream contract.
    """

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.mode = spec.mode
        self.description = spec.description

    @property
    def total(self) -> int | None:
        return self.spec.size

    def arrivals(self):
        for item in self.spec.items:
            yield item.arrival_time, item.app_name


class _BoundedStream(ArrivalStream):
    """Shared bounds handling: stop after ``duration_us`` or ``max_apps``."""

    def __init__(
        self,
        *,
        duration_us: float | None,
        max_apps: int | None,
        what: str,
    ) -> None:
        if duration_us is None and max_apps is None:
            raise EmulationError(
                f"{what}: unbounded stream — set a duration and/or a "
                "max_apps cap so the emulation can terminate"
            )
        if duration_us is not None:
            self.duration_us: float | None = _positive_rate(
                duration_us, f"{what}: duration"
            )
        else:
            self.duration_us = None
        if max_apps is not None and max_apps < 1:
            raise EmulationError(
                f"{what}: max_apps must be >= 1, got {max_apps}"
            )
        self.max_apps = max_apps
        self._what = what

    @property
    def total(self) -> int | None:
        # Only a hard count cap makes the length knowable up front.
        if self.max_apps is not None and self.duration_us is None:
            return self.max_apps
        return None


class PoissonStream(_BoundedStream):
    """Homogeneous Poisson arrivals at ``rate_per_ms``, app mix by weight."""

    def __init__(
        self,
        rate_per_ms: float,
        apps: dict[str, float],
        *,
        duration_ms: float | None = None,
        max_apps: int | None = None,
        seed: int = 0,
    ) -> None:
        what = f"poisson({rate_per_ms}/ms)"
        super().__init__(
            duration_us=None if duration_ms is None else duration_ms * MS,
            max_apps=max_apps,
            what=what,
        )
        self.rate_per_ms = _positive_rate(rate_per_ms, f"{what}: rate_per_ms")
        self.names, self.cum = _normalize_mix(apps, what)
        self.seed = int(seed)
        self.description = (
            f"openloop poisson {self.rate_per_ms:g}/ms seed={self.seed}"
        )

    def arrivals(self):
        factory = SeedSequenceFactory(self.seed)
        t_rng = factory.rng("openloop", "poisson", "times")
        a_rng = factory.rng("openloop", "poisson", "apps")
        scale = 1.0 / (self.rate_per_ms / MS)  # mean inter-arrival, µs
        names, cum = self.names, self.cum
        last = len(names) - 1
        t = 0.0
        emitted = 0
        while True:
            gaps = t_rng.exponential(scale, size=_CHUNK)
            picks = a_rng.random(_CHUNK)
            for gap, u in zip(gaps, picks):
                t += gap
                if self.duration_us is not None and t >= self.duration_us:
                    return
                yield t, names[min(bisect_right(cum, u), last)]
                emitted += 1
                if self.max_apps is not None and emitted >= self.max_apps:
                    return


class PeriodicStream(_BoundedStream):
    """Deterministic fixed-spacing arrivals with a smooth weighted mix.

    One arrival every ``1/rate_per_ms`` ms; the app for each slot comes from
    an error-diffusion (smooth weighted round-robin) pick, so the mix
    converges to the weights without any randomness — the same seedless
    trace every run.
    """

    def __init__(
        self,
        rate_per_ms: float,
        apps: dict[str, float],
        *,
        duration_ms: float | None = None,
        max_apps: int | None = None,
        phase_us: float = 0.0,
    ) -> None:
        what = f"periodic({rate_per_ms}/ms)"
        super().__init__(
            duration_us=None if duration_ms is None else duration_ms * MS,
            max_apps=max_apps,
            what=what,
        )
        self.rate_per_ms = _positive_rate(rate_per_ms, f"{what}: rate_per_ms")
        names, cum = _normalize_mix(apps, what)
        self.names = names
        # back out the normalized per-app shares from the cumulative form
        self.shares = [
            cum[i] - (cum[i - 1] if i else 0.0) for i in range(len(names))
        ]
        if not math.isfinite(phase_us) or phase_us < 0:
            raise EmulationError(f"{what}: phase must be >= 0, got {phase_us}")
        self.phase_us = phase_us
        self.description = f"openloop periodic {self.rate_per_ms:g}/ms"

    def arrivals(self):
        period = MS / self.rate_per_ms
        names, shares = self.names, self.shares
        n = len(names)
        credits = [0.0] * n
        k = 0
        while True:
            t = self.phase_us + k * period
            if self.duration_us is not None and t >= self.duration_us:
                return
            best = 0
            for i in range(n):
                credits[i] += shares[i]
                if credits[i] > credits[best]:
                    best = i
            credits[best] -= 1.0
            yield t, names[best]
            k += 1
            if self.max_apps is not None and k >= self.max_apps:
                return


class _ThinnedStream(_BoundedStream):
    """Nonhomogeneous Poisson via thinning against a constant majorant.

    Subclasses provide ``rate_at(t_us)`` (µs^-1) and ``peak_rate_us``; the
    generator draws candidate arrivals at the peak rate and accepts each
    with probability ``rate_at(t)/peak`` — the standard Lewis-Shedler
    construction, deterministic for a fixed seed.
    """

    stream_kind = "thinned"

    def rate_at(self, t_us: float) -> float:
        raise NotImplementedError

    @property
    def peak_rate_us(self) -> float:
        raise NotImplementedError

    def arrivals(self):
        factory = SeedSequenceFactory(self.seed)
        t_rng = factory.rng("openloop", self.stream_kind, "times")
        u_rng = factory.rng("openloop", self.stream_kind, "thin")
        a_rng = factory.rng("openloop", self.stream_kind, "apps")
        peak = self.peak_rate_us
        scale = 1.0 / peak
        names, cum = self.names, self.cum
        last = len(names) - 1
        t = 0.0
        emitted = 0
        while True:
            gaps = t_rng.exponential(scale, size=_CHUNK)
            accepts = u_rng.random(_CHUNK)
            picks = a_rng.random(_CHUNK)
            for gap, v, u in zip(gaps, accepts, picks):
                t += gap
                if self.duration_us is not None and t >= self.duration_us:
                    return
                if v * peak >= self.rate_at(t):
                    continue  # thinned out
                yield t, names[min(bisect_right(cum, u), last)]
                emitted += 1
                if self.max_apps is not None and emitted >= self.max_apps:
                    return


class DiurnalStream(_ThinnedStream):
    """Sinusoidal day/night load: rate swings between base and peak.

    ``rate(t) = base + (peak - base) · (1 - cos(2πt/period)) / 2`` — the
    cycle starts at the base rate, crests at ``period/2``, and returns.
    """

    stream_kind = "diurnal"

    def __init__(
        self,
        rate_per_ms: float,
        peak_rate_per_ms: float,
        apps: dict[str, float],
        *,
        period_ms: float = 1000.0,
        duration_ms: float | None = None,
        max_apps: int | None = None,
        seed: int = 0,
    ) -> None:
        what = f"diurnal({rate_per_ms}..{peak_rate_per_ms}/ms)"
        super().__init__(
            duration_us=None if duration_ms is None else duration_ms * MS,
            max_apps=max_apps,
            what=what,
        )
        self.base = _positive_rate(rate_per_ms, f"{what}: rate_per_ms")
        self.peak = _positive_rate(
            peak_rate_per_ms, f"{what}: peak_rate_per_ms"
        )
        if self.peak < self.base:
            raise EmulationError(
                f"{what}: peak_rate_per_ms ({self.peak}) must be >= "
                f"rate_per_ms ({self.base})"
            )
        self.period_us = _positive_rate(period_ms, f"{what}: period_ms") * MS
        self.names, self.cum = _normalize_mix(apps, what)
        self.seed = int(seed)
        self.description = (
            f"openloop diurnal {self.base:g}..{self.peak:g}/ms "
            f"period={self.period_us / MS:g}ms seed={self.seed}"
        )

    @property
    def peak_rate_us(self) -> float:
        return self.peak / MS

    def rate_at(self, t_us: float) -> float:
        swing = (self.peak - self.base) / MS
        base = self.base / MS
        return base + swing * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * t_us / self.period_us)
        )


class BurstyStream(_ThinnedStream):
    """Flash-crowd load: a base rate with piecewise-constant burst windows.

    Each burst is ``(start_ms, duration_ms, rate_per_ms)``; while a burst
    window is active the offered rate is the burst rate (overlapping bursts
    take the maximum), otherwise the base rate.
    """

    stream_kind = "bursty"

    def __init__(
        self,
        rate_per_ms: float,
        apps: dict[str, float],
        *,
        bursts: list[tuple[float, float, float]],
        duration_ms: float | None = None,
        max_apps: int | None = None,
        seed: int = 0,
    ) -> None:
        what = f"bursty({rate_per_ms}/ms base)"
        super().__init__(
            duration_us=None if duration_ms is None else duration_ms * MS,
            max_apps=max_apps,
            what=what,
        )
        self.base = _positive_rate(rate_per_ms, f"{what}: rate_per_ms")
        if not bursts:
            raise EmulationError(f"{what}: bursts list is empty")
        windows: list[tuple[float, float, float]] = []
        for j, burst in enumerate(bursts):
            try:
                start_ms, dur_ms, rate = burst
            except (TypeError, ValueError):
                raise EmulationError(
                    f"{what}: burst #{j} must be "
                    f"(start_ms, duration_ms, rate_per_ms), got {burst!r}"
                ) from None
            start_ms = float(start_ms)
            if not math.isfinite(start_ms) or start_ms < 0:
                raise EmulationError(
                    f"{what}: burst #{j} start must be >= 0, got {start_ms}"
                )
            dur_ms = _positive_rate(dur_ms, f"{what}: burst #{j} duration")
            rate = _positive_rate(rate, f"{what}: burst #{j} rate")
            windows.append((start_ms * MS, (start_ms + dur_ms) * MS, rate))
        self.windows = sorted(windows)
        self.names, self.cum = _normalize_mix(apps, what)
        self.seed = int(seed)
        peak = max(self.base, max(w[2] for w in self.windows))
        self._peak = peak
        self.description = (
            f"openloop bursty {self.base:g}/ms +{len(self.windows)} "
            f"burst(s) peak={peak:g}/ms seed={self.seed}"
        )

    @property
    def peak_rate_us(self) -> float:
        return self._peak / MS

    def rate_at(self, t_us: float) -> float:
        rate = self.base
        for start, end, burst_rate in self.windows:
            if start > t_us:
                break
            if t_us < end and burst_rate > rate:
                rate = burst_rate
        return rate / MS


class TraceStream(ArrivalStream):
    """Replay arrivals from a trace file, one line at a time (O(1) memory).

    Two formats, chosen by extension:

    * ``.jsonl`` — one JSON value per line: either an object
      ``{"t_us": <float>, "app": <name>}`` or a two-element array
      ``[<t_us>, <name>]``.
    * ``.csv`` — ``t_us,app`` rows; a header row naming the columns is
      skipped if present.

    ``time_scale`` divides every timestamp (>1 compresses the trace —
    the offered-load knob for replayed traces), and ``duration_ms``
    bounds replay in *scaled* time exactly like the generated sources:
    the first arrival at or past the bound ends the stream.  Ordering
    violations are reported with the offending line via the stream
    guard.
    """

    def __init__(
        self,
        path: str,
        *,
        time_scale: float = 1.0,
        duration_ms: float | None = None,
        max_apps: int | None = None,
    ) -> None:
        self.path = str(path)
        self.time_scale = _positive_rate(
            time_scale, f"trace {self.path!r}: time_scale"
        )
        if duration_ms is not None:
            self.duration_us: float | None = _positive_rate(
                duration_ms * MS, f"trace {self.path!r}: duration"
            )
        else:
            self.duration_us = None
        if max_apps is not None and max_apps < 1:
            raise EmulationError(
                f"trace {self.path!r}: max_apps must be >= 1, got {max_apps}"
            )
        self.max_apps = max_apps
        self.description = f"openloop trace {self.path}"

    def arrivals(self):
        jsonl = self.path.endswith((".jsonl", ".json"))
        emitted = 0
        saw_data = False
        try:
            fh = open(self.path, encoding="utf-8")
        except OSError as exc:
            raise EmulationError(
                f"cannot open arrival trace {self.path!r}: {exc}"
            ) from exc
        with fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    if jsonl:
                        row = json.loads(line)
                        if isinstance(row, dict):
                            t, app_name = row["t_us"], row["app"]
                        else:
                            t, app_name = row
                    else:
                        first, _, rest = line.partition(",")
                        if not saw_data and not _is_number(first):
                            # Header row: only the first non-skipped row
                            # may name the columns; anything non-numeric
                            # later is a genuine parse error.
                            saw_data = True
                            continue
                        t, app_name = float(first), rest.strip()
                    t = float(t)
                    saw_data = True
                except (ValueError, KeyError, TypeError,
                        json.JSONDecodeError) as exc:
                    raise EmulationError(
                        f"arrival trace {self.path!r} line {lineno}: "
                        f"cannot parse {line!r}: {exc}"
                    ) from exc
                if not app_name:
                    raise EmulationError(
                        f"arrival trace {self.path!r} line {lineno}: "
                        "missing app name"
                    )
                t_scaled = t / self.time_scale
                if (self.duration_us is not None
                        and t_scaled >= self.duration_us):
                    return
                yield t_scaled, app_name
                emitted += 1
                if self.max_apps is not None and emitted >= self.max_apps:
                    return


def _is_number(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


# ---------------------------------------------------------------------------
# Declarative arrival specs (the --arrivals JSON façade)
# ---------------------------------------------------------------------------

ARRIVAL_KINDS = ("poisson", "periodic", "diurnal", "bursty", "trace")

#: Fields each kind actually consumes, beyond the always-allowed
#: ``kind``/``duration_ms``/``max_apps``/``label``.  Anything else set on
#: a spec is rejected up front: a silently ignored ``seed`` on a
#: deterministic periodic stream (or a rate on a trace replay) is a
#: config typo, not a request.
_KIND_FIELDS: dict[str, frozenset[str]] = {
    "poisson": frozenset({"apps", "rate_per_ms", "seed"}),
    "periodic": frozenset({"apps", "rate_per_ms"}),
    "diurnal": frozenset(
        {"apps", "rate_per_ms", "seed", "peak_rate_per_ms", "period_ms"}
    ),
    "bursty": frozenset({"apps", "rate_per_ms", "seed", "bursts"}),
    "trace": frozenset({"path", "time_scale"}),
}

#: (field, default) pairs checked against :data:`_KIND_FIELDS`.
_KIND_CHECKED: tuple[tuple[str, object], ...] = (
    ("apps", ()),
    ("rate_per_ms", None),
    ("seed", 0),
    ("peak_rate_per_ms", None),
    ("period_ms", None),
    ("bursts", ()),
    ("path", ""),
    ("time_scale", None),
)


@dataclass(frozen=True)
class ArrivalSpec:
    """JSON-serializable description of one arrival stream.

    The CLI/bench knobs compose through :meth:`build`: ``rate_scale``
    multiplies every generated rate (for a trace it *composes* with the
    spec's own ``time_scale`` unit conversion), and
    ``duration_ms``/``max_apps`` override the spec's own bounds.
    """

    kind: str
    apps: tuple[tuple[str, float], ...] = ()
    rate_per_ms: float | None = None
    duration_ms: float | None = None
    max_apps: int | None = None
    seed: int = 0
    #: diurnal only
    peak_rate_per_ms: float | None = None
    period_ms: float | None = None
    #: bursty only: (start_ms, duration_ms, rate_per_ms) windows
    bursts: tuple[tuple[float, float, float], ...] = ()
    #: trace only: path to the trace file and its timestamp unit
    #: conversion (e.g. 1000.0 for a trace recorded in ms)
    path: str = ""
    time_scale: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise EmulationError(
                f"unknown arrival kind {self.kind!r} "
                f"(use one of {ARRIVAL_KINDS})"
            )
        allowed = _KIND_FIELDS[self.kind]
        stray = [
            name for name, default in _KIND_CHECKED
            if name not in allowed and getattr(self, name) != default
        ]
        if stray:
            raise EmulationError(
                f"arrival spec kind={self.kind!r} does not use "
                f"{sorted(stray)} (allowed: {sorted(allowed)})"
            )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        doc: dict = {"kind": self.kind}
        if self.apps:
            doc["apps"] = {name: w for name, w in self.apps}
        for key in ("rate_per_ms", "duration_ms", "max_apps",
                    "peak_rate_per_ms", "period_ms", "time_scale"):
            value = getattr(self, key)
            if value is not None:
                doc[key] = value
        if self.seed:
            doc["seed"] = self.seed
        if self.bursts:
            doc["bursts"] = [
                {"start_ms": s, "duration_ms": d, "rate_per_ms": r}
                for s, d, r in self.bursts
            ]
        if self.path:
            doc["path"] = self.path
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "ArrivalSpec":
        if not isinstance(data, dict):
            raise EmulationError(
                f"arrival spec must be an object, got {type(data).__name__}"
            )
        known = {
            "kind", "apps", "rate_per_ms", "duration_ms", "max_apps",
            "seed", "peak_rate_per_ms", "period_ms", "bursts", "path",
            "time_scale", "label",
        }
        unknown = set(data) - known
        if unknown:
            raise EmulationError(
                f"unknown arrival spec keys: {sorted(unknown)}"
            )
        kind = str(data.get("kind", ""))
        apps_raw = data.get("apps", {})
        if not isinstance(apps_raw, dict):
            raise EmulationError("arrival spec 'apps' must be an object "
                                 "mapping app name -> weight")
        bursts_raw = data.get("bursts", [])
        bursts: list[tuple[float, float, float]] = []
        for j, b in enumerate(bursts_raw):
            if isinstance(b, dict):
                extra = set(b) - {"start_ms", "duration_ms", "rate_per_ms"}
                if extra or "start_ms" not in b:
                    raise EmulationError(
                        f"arrival spec burst #{j} must have start_ms, "
                        f"duration_ms, rate_per_ms (got {sorted(b)})"
                    )
                bursts.append((
                    float(b["start_ms"]),
                    float(b.get("duration_ms", 0.0)),
                    float(b.get("rate_per_ms", 0.0)),
                ))
            else:
                try:
                    s, d, r = b
                except (TypeError, ValueError):
                    raise EmulationError(
                        f"arrival spec burst #{j}: expected 3 fields, "
                        f"got {b!r}"
                    ) from None
                bursts.append((float(s), float(d), float(r)))

        def opt(key: str) -> float | None:
            value = data.get(key)
            return None if value is None else float(value)

        max_apps = data.get("max_apps")
        return cls(
            kind=kind,
            apps=tuple(sorted(
                (str(k), float(v)) for k, v in apps_raw.items()
            )),
            rate_per_ms=opt("rate_per_ms"),
            duration_ms=opt("duration_ms"),
            max_apps=None if max_apps is None else int(max_apps),
            seed=int(data.get("seed", 0)),
            peak_rate_per_ms=opt("peak_rate_per_ms"),
            period_ms=opt("period_ms"),
            bursts=tuple(bursts),
            path=str(data.get("path", "")),
            time_scale=opt("time_scale"),
            label=str(data.get("label", "")),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "ArrivalSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise EmulationError(
                f"cannot load arrival spec {path!r}: {exc}"
            ) from exc
        return cls.from_dict(data)

    # -- construction --------------------------------------------------------

    def build(
        self,
        *,
        rate_scale: float = 1.0,
        duration_ms: float | None = None,
        max_apps: int | None = None,
    ) -> ArrivalStream:
        """Instantiate the stream, applying the offered-load/bound knobs."""
        rate_scale = _positive_rate(rate_scale, "rate_scale")
        duration = duration_ms if duration_ms is not None else self.duration_ms
        cap = max_apps if max_apps is not None else self.max_apps
        apps = dict(self.apps)

        def scaled(rate: float | None, what: str) -> float:
            if rate is None:
                raise EmulationError(
                    f"arrival spec kind={self.kind!r} requires {what}"
                )
            return rate * rate_scale

        if self.kind == "trace":
            if not self.path:
                raise EmulationError("arrival spec kind='trace' requires path")
            # rate_scale composes with (never replaces) the spec's own
            # timestamp unit conversion: both divide replayed times.
            unit = self.time_scale if self.time_scale is not None else 1.0
            stream: ArrivalStream = TraceStream(
                self.path,
                time_scale=unit * rate_scale,
                duration_ms=duration,
                max_apps=cap,
            )
        elif self.kind == "poisson":
            stream = PoissonStream(
                scaled(self.rate_per_ms, "rate_per_ms"), apps,
                duration_ms=duration, max_apps=cap, seed=self.seed,
            )
        elif self.kind == "periodic":
            stream = PeriodicStream(
                scaled(self.rate_per_ms, "rate_per_ms"), apps,
                duration_ms=duration, max_apps=cap,
            )
        elif self.kind == "diurnal":
            stream = DiurnalStream(
                scaled(self.rate_per_ms, "rate_per_ms"),
                scaled(self.peak_rate_per_ms, "peak_rate_per_ms"),
                apps,
                period_ms=(
                    self.period_ms if self.period_ms is not None else 1000.0
                ),
                duration_ms=duration, max_apps=cap, seed=self.seed,
            )
        else:  # bursty
            stream = BurstyStream(
                scaled(self.rate_per_ms, "rate_per_ms"), apps,
                bursts=tuple(
                    (s, d, r * rate_scale) for s, d, r in self.bursts
                ),
                duration_ms=duration, max_apps=cap, seed=self.seed,
            )
        if self.label:
            stream.description = f"{self.label}: {stream.description}"
        return stream
