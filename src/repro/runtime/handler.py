"""Resource handlers — the WM ↔ RM communication objects (paper Sec. II-C).

Each PE gets a dedicated handler composed of "fields that track PE
availability, type, and id along with its workload and synchronization
lock".  Availability follows the paper's three-state protocol, extended
with a terminal failure state for fault injection::

    IDLE ──(WM assigns task, sets RUN)──► RUN
    RUN ──(RM finishes, sets COMPLETE)──► COMPLETE
    COMPLETE ──(WM acknowledges)──► IDLE
    any ──(fault injection, mark_failed)──► FAILED   (terminal)

Any thread reading or writing the status field must hold the handler's
lock; the threaded backend relies on this, while the single-threaded
virtual backend satisfies the rule trivially (its lock is uncontended).
The ``failed`` flag is additionally mirrored as a plain attribute so
schedulers can exclude failed PEs without taking the lock in their inner
loops (written once under the lock; a stale read is benign because the
workload manager re-filters assignments against it before dispatch).

Completed tasks are buffered in ``finished_tasks`` for the workload
manager's monitoring step.  The ``reservation_queue`` implements the
paper's future-work PE-level work queues: with a reservation-capable
policy, the WM may book tasks onto a busy PE and the resource manager
*self-serves* the next task on completion (``finish_task(self_serve=True)``),
skipping the COMPLETE→IDLE handshake entirely.
"""

from __future__ import annotations

import enum
import threading
from collections import deque

from repro.appmodel.instance import TaskInstance
from repro.common.errors import EmulationError
from repro.hardware.pe import ProcessingElement


class PEStatus(enum.Enum):
    IDLE = "idle"
    RUN = "run"
    COMPLETE = "complete"
    #: terminal: the PE suffered a permanent fault and accepts no more work
    FAILED = "failed"


class PEFailedError(EmulationError):
    """Work was handed to a PE that has permanently failed.

    Raised by :meth:`ResourceHandler.assign`/:meth:`ResourceHandler.reserve`
    when the WM loses the race against a concurrent failure; the workload
    manager catches it and requeues the task instead of crashing the run.
    """


class ResourceHandler:
    """Shared state between the workload manager and one resource manager."""

    def __init__(self, pe: ProcessingElement) -> None:
        self.pe = pe
        # Immutable PE identity, mirrored as plain attributes: schedulers
        # read pe_id millions of times per run, and a property indirection
        # there is measurable in profiles.
        self.pe_id: int = pe.pe_id
        self.name: str = pe.name
        self.type_name: str = pe.type_name
        #: platform-binding names this PE can execute.  A CPU-kind PE also
        #: accepts the generic "cpu" binding (a portable C kernel runs on
        #: any core cluster — this is how the unchanged SDR applications run
        #: on the Odroid's big/little PE types); accelerators match exactly.
        if pe.pe_type.is_cpu and pe.type_name != "cpu":
            self.accepted_platforms: tuple[str, ...] = (pe.type_name, "cpu")
        else:
            self.accepted_platforms = (pe.type_name,)
        self.lock = threading.Lock()
        self.condition = threading.Condition(self.lock)
        self._status = PEStatus.IDLE
        self.current_task: TaskInstance | None = None
        self.reservation_queue: deque[TaskInstance] = deque()
        self.finished_tasks: deque[TaskInstance] = deque()
        # accounting (owned by the RM side)
        self.busy_time: float = 0.0
        self.tasks_executed: int = 0
        #: scheduler-visible estimate of when this PE frees up (used by
        #: EFT/HEFT/reservation placement)
        self.estimated_free_time: float = 0.0
        #: set by backends that want the RM thread/process to exit
        self.shutdown = False
        #: lock-free mirror of ``status is PEStatus.FAILED`` (see module doc)
        self.failed: bool = False
        #: time the PE failed (µs), or -1.0 while healthy
        self.failed_at: float = -1.0
        #: last sign of life from this PE's RM (threaded-backend wall-clock
        #: µs), stamped at dispatch and around kernel attempts; the QoS
        #: watchdog fail-stops a PE stuck in RUN past its heartbeat timeout.
        #: Plain float write/read — stale reads only delay detection.
        self.heartbeat: float = -1.0

    # -- properties ------------------------------------------------------------

    @property
    def status(self) -> PEStatus:
        with self.lock:
            return self._status

    def is_idle(self) -> bool:
        return self.status is PEStatus.IDLE

    # -- WM side -----------------------------------------------------------------

    def assign(self, task: TaskInstance) -> None:
        """Hand a task to an idle PE and flip it to RUN."""
        with self.condition:
            if self._status is PEStatus.FAILED:
                raise PEFailedError(
                    f"PE {self.name}: assign after permanent failure"
                )
            if self._status is not PEStatus.IDLE:
                raise EmulationError(
                    f"PE {self.name}: assign while {self._status.value}"
                )
            self.current_task = task
            self._status = PEStatus.RUN
            self.condition.notify_all()

    def reserve(self, task: TaskInstance) -> bool:
        """Book a task onto this PE (reservation extension).

        Returns True when the PE was idle and the task starts immediately;
        False when it was queued behind the current work.
        """
        with self.condition:
            if self._status is PEStatus.FAILED:
                raise PEFailedError(
                    f"PE {self.name}: reserve after permanent failure"
                )
            if self._status is PEStatus.IDLE:
                self.current_task = task
                self._status = PEStatus.RUN
                self.condition.notify_all()
                return True
            self.reservation_queue.append(task)
            return False

    def acknowledge_complete(self) -> None:
        """Return a COMPLETE PE to IDLE (plain-dispatch handshake)."""
        with self.condition:
            if self._status is not PEStatus.COMPLETE:
                raise EmulationError(
                    f"PE {self.name}: acknowledge while {self._status.value}"
                )
            self.current_task = None
            self._status = PEStatus.IDLE

    def drain_finished(self) -> list[TaskInstance]:
        """WM monitoring step: collect all buffered completed tasks."""
        with self.lock:
            items = list(self.finished_tasks)
            self.finished_tasks.clear()
            return items

    def request_shutdown(self) -> None:
        """Ask the RM (thread) to exit once idle."""
        with self.condition:
            self.shutdown = True
            self.condition.notify_all()

    def mark_failed(self, now: float) -> list[TaskInstance]:
        """Permanent fault: flip to FAILED and surrender unexecuted work.

        Returns the tasks the workload manager must requeue: the in-flight
        task when the PE was in RUN (assigned or mid-kernel — fail-stop
        semantics discard the attempt) plus every reservation-queue
        booking.  A task already in COMPLETE finished execution and stays
        with the completion channel.  Idempotent: a second call returns
        ``[]``.
        """
        with self.condition:
            if self._status is PEStatus.FAILED:
                return []
            orphans: list[TaskInstance] = []
            if self._status is PEStatus.RUN and self.current_task is not None:
                orphans.append(self.current_task)
            orphans.extend(self.reservation_queue)
            self.reservation_queue.clear()
            self.current_task = None
            self._status = PEStatus.FAILED
            self.failed = True
            self.failed_at = now
            self.condition.notify_all()
            return orphans

    # -- RM side -----------------------------------------------------------------

    def finish_task(self, *, self_serve: bool = False) -> TaskInstance | None:
        """RM reports the current task done.

        Plain mode (``self_serve=False``): buffers the task and flips to
        COMPLETE, awaiting the WM's acknowledgement.  Self-serve mode: the
        PE immediately continues with the next reserved task (returned), or
        goes straight to IDLE when its queue is empty.
        """
        with self.condition:
            if self._status is not PEStatus.RUN or self.current_task is None:
                raise EmulationError(
                    f"PE {self.name}: finish_task while {self._status.value}"
                )
            done = self.current_task
            self.finished_tasks.append(done)
            self.tasks_executed += 1
            # Busy-time accounting happens here, under the condition lock,
            # because the WM side may read busy_time concurrently; timeline
            # stamps are valid only once mark_complete() ran.
            if done.finish_time >= 0.0 and done.start_time >= 0.0:
                self.busy_time += done.finish_time - done.start_time
            if not self_serve:
                self._status = PEStatus.COMPLETE
                self.condition.notify_all()
                return None
            if self.reservation_queue:
                self.current_task = self.reservation_queue.popleft()
                self.condition.notify_all()
                return self.current_task
            self.current_task = None
            self._status = PEStatus.IDLE
            return None

    def abort_task(self, *, self_serve: bool = False) -> TaskInstance | None:
        """RM abandons the current task without completing it (fault path).

        Mirrors :meth:`finish_task` minus the completion bookkeeping: the
        task is *not* buffered, counted, or charged to busy time — the
        workload manager receives it through the requeue channel instead.
        Self-serve mode continues with the next reserved task.
        """
        with self.condition:
            if self._status is not PEStatus.RUN or self.current_task is None:
                raise EmulationError(
                    f"PE {self.name}: abort_task while {self._status.value}"
                )
            self.current_task = None
            if self_serve and self.reservation_queue:
                self.current_task = self.reservation_queue.popleft()
                self.condition.notify_all()
                return self.current_task
            self._status = PEStatus.IDLE
            self.condition.notify_all()
            return None

    def wait_for_work(self, timeout: float | None = None) -> TaskInstance | None:
        """RM blocks until a task is assigned (threaded backend).

        Returns None on shutdown or timeout.
        """
        with self.condition:
            while not self.shutdown:
                if self._status is PEStatus.FAILED:
                    return None
                if self._status is PEStatus.RUN and self.current_task is not None:
                    return self.current_task
                if not self.condition.wait(timeout=timeout):
                    return None
            return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResourceHandler({self.name!r}, {self._status.value}, "
            f"queued={len(self.reservation_queue)})"
        )
