"""Application handler (paper Sec. II-B).

Parses the framework-compatible representation of every application —
resolving each DAG node's ``runfunc`` against its shared object exactly
once, at parse time, so integration errors surface before any emulation
starts — then instantiates the requested workload: allocating and
initializing each instance's variables in the emulated main memory and
enqueueing the instances by arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.dag import TaskGraph
from repro.appmodel.instance import ApplicationInstance
from repro.appmodel.library import Kernel, KernelContext, KernelLibrary
from repro.common.errors import ApplicationSpecError
from repro.common.ids import IdAllocator
from repro.common.log import get_logger
from repro.runtime.workload import WorkloadSpec

_log = get_logger("runtime.application_handler")


@dataclass
class ResolvedApplication:
    """An archetype with every (node, platform) kernel symbol resolved."""

    graph: TaskGraph
    kernels: dict[tuple[str, str], Kernel]
    setup_kernel: Kernel | None = None

    def kernel_for(self, node_name: str, platform: str) -> Kernel:
        try:
            return self.kernels[(node_name, platform)]
        except KeyError:
            raise ApplicationSpecError(
                f"app {self.graph.app_name!r}: no resolved kernel for node "
                f"{node_name!r} on platform {platform!r}"
            ) from None


class ApplicationHandler:
    """Parses applications and creates workload instances."""

    def __init__(self, library: KernelLibrary) -> None:
        self.library = library
        self._resolved: dict[str, ResolvedApplication] = {}
        self._app_ids = IdAllocator()
        self._task_ids = IdAllocator()

    # -- parsing ------------------------------------------------------------------

    def register(self, graph: TaskGraph) -> ResolvedApplication:
        """Parse one archetype: resolve every runfunc it references."""
        kernels: dict[tuple[str, str], Kernel] = {}
        for node_name, node in graph.nodes.items():
            for binding in node.platforms:
                shared_object = binding.shared_object or graph.shared_object
                kernels[(node_name, binding.name)] = self.library.resolve(
                    shared_object, binding.runfunc
                )
        setup_kernel = None
        if graph.setup:
            setup_kernel = self.library.resolve(graph.shared_object, graph.setup)
        resolved = ResolvedApplication(
            graph=graph, kernels=kernels, setup_kernel=setup_kernel
        )
        self._resolved[graph.app_name] = resolved
        _log.debug(
            "parsed %s: %d tasks, %d kernel bindings",
            graph.app_name, graph.task_count, len(kernels),
        )
        return resolved

    def register_all(self, graphs: dict[str, TaskGraph]) -> None:
        for graph in graphs.values():
            self.register(graph)

    def resolved(self, app_name: str) -> ResolvedApplication:
        try:
            return self._resolved[app_name]
        except KeyError:
            raise ApplicationSpecError(
                f"application {app_name!r} was not detected "
                f"(parsed: {sorted(self._resolved)})"
            ) from None

    def app_names(self) -> list[str]:
        return sorted(self._resolved)

    def check_platform_coverage(self, available_platforms: set[str]) -> None:
        """Every node must have at least one binding the configuration can
        execute — otherwise the emulation would deadlock on that task."""
        for app_name, resolved in self._resolved.items():
            for node_name, node in resolved.graph.nodes.items():
                if not set(node.platform_names()) & available_platforms:
                    raise ApplicationSpecError(
                        f"app {app_name!r}, node {node_name!r} supports "
                        f"{node.platform_names()}, none of which are in the "
                        f"configuration ({sorted(available_platforms)})"
                    )

    # -- instantiation ---------------------------------------------------------------

    def instantiate(
        self,
        workload: WorkloadSpec,
        *,
        materialize_memory: bool = True,
    ) -> list[ApplicationInstance]:
        """Create one instance per workload item, in arrival order.

        ``materialize_memory=False`` skips variable allocation and setup
        kernels; it is valid only for the virtual backend (which charges
        model time instead of executing kernels) and exists so very large
        performance-mode sweeps do not pay for functionally-unused memory.
        """
        instances: list[ApplicationInstance] = []
        for item in workload.items:
            resolved = self.resolved(item.app_name)
            instance = ApplicationInstance(
                resolved.graph,
                instance_id=self._app_ids.allocate(),
                arrival_time=item.arrival_time,
                task_id_base=self._task_ids.peek(),
                materialize=materialize_memory,
            )
            # keep the global task-id space dense across instances
            for _ in range(instance.task_count):
                self._task_ids.allocate()
            if materialize_memory and resolved.setup_kernel is not None:
                resolved.setup_kernel(
                    KernelContext(
                        instance.variables,
                        arg_names=(),
                        platform="cpu",
                        node_name="<setup>",
                        app_name=instance.app_name,
                    )
                )
            instances.append(instance)
        return instances
