"""Application handler (paper Sec. II-B).

Parses the framework-compatible representation of every application —
resolving each DAG node's ``runfunc`` against its shared object exactly
once, at parse time, so integration errors surface before any emulation
starts — then instantiates the requested workload: allocating and
initializing each instance's variables in the emulated main memory and
enqueueing the instances by arrival time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.dag import TaskGraph
from repro.appmodel.instance import ApplicationInstance
from repro.appmodel.library import Kernel, KernelContext, KernelLibrary
from repro.common.errors import ApplicationSpecError
from repro.common.ids import IdAllocator
from repro.common.log import get_logger
from repro.runtime.workload import WorkloadSpec

_log = get_logger("runtime.application_handler")


@dataclass
class ResolvedApplication:
    """An archetype with every (node, platform) kernel symbol resolved."""

    graph: TaskGraph
    kernels: dict[tuple[str, str], Kernel]
    setup_kernel: Kernel | None = None

    def kernel_for(self, node_name: str, platform: str) -> Kernel:
        try:
            return self.kernels[(node_name, platform)]
        except KeyError:
            raise ApplicationSpecError(
                f"app {self.graph.app_name!r}: no resolved kernel for node "
                f"{node_name!r} on platform {platform!r}"
            ) from None


class ApplicationHandler:
    """Parses applications and creates workload instances."""

    def __init__(self, library: KernelLibrary) -> None:
        self.library = library
        self._resolved: dict[str, ResolvedApplication] = {}
        self._app_ids = IdAllocator()
        self._task_ids = IdAllocator()

    # -- parsing ------------------------------------------------------------------

    def register(self, graph: TaskGraph) -> ResolvedApplication:
        """Parse one archetype: resolve every runfunc it references."""
        kernels: dict[tuple[str, str], Kernel] = {}
        for node_name, node in graph.nodes.items():
            for binding in node.platforms:
                shared_object = binding.shared_object or graph.shared_object
                kernels[(node_name, binding.name)] = self.library.resolve(
                    shared_object, binding.runfunc
                )
        setup_kernel = None
        if graph.setup:
            setup_kernel = self.library.resolve(graph.shared_object, graph.setup)
        resolved = ResolvedApplication(
            graph=graph, kernels=kernels, setup_kernel=setup_kernel
        )
        self._resolved[graph.app_name] = resolved
        _log.debug(
            "parsed %s: %d tasks, %d kernel bindings",
            graph.app_name, graph.task_count, len(kernels),
        )
        return resolved

    def register_all(self, graphs: dict[str, TaskGraph]) -> None:
        for graph in graphs.values():
            self.register(graph)

    def resolved(self, app_name: str) -> ResolvedApplication:
        try:
            return self._resolved[app_name]
        except KeyError:
            raise ApplicationSpecError(
                f"application {app_name!r} was not detected "
                f"(parsed: {sorted(self._resolved)})"
            ) from None

    def app_names(self) -> list[str]:
        return sorted(self._resolved)

    def check_platform_coverage(self, available_platforms: set[str]) -> None:
        """Every node must have at least one binding the configuration can
        execute — otherwise the emulation would deadlock on that task."""
        for app_name, resolved in self._resolved.items():
            for node_name, node in resolved.graph.nodes.items():
                if not set(node.platform_names()) & available_platforms:
                    raise ApplicationSpecError(
                        f"app {app_name!r}, node {node_name!r} supports "
                        f"{node.platform_names()}, none of which are in the "
                        f"configuration ({sorted(available_platforms)})"
                    )

    # -- instantiation ---------------------------------------------------------------

    def instantiate_one(
        self,
        app_name: str,
        arrival_time: float,
        *,
        materialize_memory: bool = True,
    ) -> ApplicationInstance:
        """Create one instance of ``app_name`` arriving at ``arrival_time``.

        Allocates the next app/task ids (the global task-id space stays
        dense across instances) and, when memory is materialized, runs the
        archetype's setup kernel against the fresh variable table.
        """
        resolved = self.resolved(app_name)
        instance = ApplicationInstance(
            resolved.graph,
            instance_id=self._app_ids.allocate(),
            arrival_time=arrival_time,
            task_id_base=self._task_ids.peek(),
            materialize=materialize_memory,
        )
        for _ in range(instance.task_count):
            self._task_ids.allocate()
        if materialize_memory and resolved.setup_kernel is not None:
            resolved.setup_kernel(
                KernelContext(
                    instance.variables,
                    arg_names=(),
                    platform="cpu",
                    node_name="<setup>",
                    app_name=instance.app_name,
                )
            )
        return instance

    def instantiate(
        self,
        workload: WorkloadSpec,
        *,
        materialize_memory: bool = True,
    ) -> list[ApplicationInstance]:
        """Create one instance per workload item, in arrival order.

        ``materialize_memory=False`` skips variable allocation and setup
        kernels; it is valid only for the virtual backend (which charges
        model time instead of executing kernels) and exists so very large
        performance-mode sweeps do not pay for functionally-unused memory.
        """
        return [
            self.instantiate_one(
                item.app_name,
                item.arrival_time,
                materialize_memory=materialize_memory,
            )
            for item in workload.items
        ]


class LazyInstanceSource:
    """Instance source that builds applications at injection time.

    Wraps an :class:`~repro.runtime.workload.ArrivalStream`: a single
    ``(arrival_time, app_name)`` pair of lookahead is held so the workload
    manager can peek the next arrival, and the :class:`ApplicationInstance`
    (DAG bookkeeping, ids, optional emulated memory) is only built when the
    WM pops it for injection.  Memory therefore scales with apps *in
    flight*, not apps *injected* — the streaming half of the open-loop
    path (release-on-completion is the other half).
    """

    __slots__ = (
        "handler",
        "materialize",
        "qos",
        "total",
        "produced",
        "exhausted",
        "_iter",
        "_pending",
    )

    def __init__(
        self,
        handler: ApplicationHandler,
        stream,
        *,
        materialize_memory: bool = True,
        qos=None,
    ) -> None:
        self.handler = handler
        self.materialize = materialize_memory
        self.qos = qos
        #: None for unbounded/duration-bounded streams
        self.total: int | None = stream.total
        self.produced = 0
        self.exhausted = False
        self._iter = iter(stream)
        self._pending: tuple[float, str] | None = None
        self._advance()

    def _advance(self) -> None:
        try:
            self._pending = next(self._iter)
        except StopIteration:
            self._pending = None
            self.exhausted = True

    def peek_time(self) -> float | None:
        return None if self._pending is None else self._pending[0]

    def pop(self) -> ApplicationInstance:
        if self._pending is None:
            raise ApplicationSpecError("pop() on an exhausted arrival stream")
        arrival_time, app_name = self._pending
        instance = self.handler.instantiate_one(
            app_name, arrival_time, materialize_memory=self.materialize
        )
        if self.qos is not None:
            self.qos.assign_deadline(instance)
        self.produced += 1
        self._advance()
        return instance
