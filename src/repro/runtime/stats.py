"""Scheduling statistics collected before emulation termination (Sec. II-A).

The framework records, per task: which PE ran it and its ready → dispatch
→ start → finish timeline; per PE: busy time (and derived utilization and
energy); per workload-manager invocation: the scheduling overhead — the
paper's definition: time to monitor completion status, update the ready
queue, run the policy, and communicate tasks to resource managers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmulationError
from repro.common.log import get_logger
from repro.common.units import to_msec, to_sec
from repro.hardware.pe import ProcessingElement

_log = get_logger("runtime.stats")

#: streaming mode keeps at most this many fault-timeline entries; overload
#: runs shedding millions of apps must not grow the timeline unboundedly
_TIMELINE_CAP = 1024


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator (O(1) memory).

    Maintains five markers whose heights track the p-quantile without
    retaining samples; marker heights are adjusted with a piecewise
    parabolic fit as observations stream in.  Exact for the first five
    samples, asymptotically accurate afterwards.
    """

    __slots__ = ("p", "_q", "_n", "_np", "_dn", "count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise EmulationError(f"quantile p must be in (0, 1), got {p}")
        self.p = p
        self._q: list[float] = []  # marker heights (first 5: raw samples)
        self._n = [0.0, 1.0, 2.0, 3.0, 4.0]  # marker positions
        self._np = [0.0, 2.0 * p, 4.0 * p, 2.0 + 2.0 * p, 4.0]  # desired
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        q = self._q
        if len(q) < 5:
            # initialization phase: collect and keep sorted
            lo, hi = 0, len(q)
            while lo < hi:
                mid = (lo + hi) // 2
                if q[mid] < x:
                    lo = mid + 1
                else:
                    hi = mid
            q.insert(lo, x)
            return
        n, np_, dn = self._n, self._np, self._dn
        # locate the cell containing x, clamping the extreme markers
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            np_[i] += dn[i]
        # adjust the three interior markers toward their desired positions
        for i in (1, 2, 3):
            d = np_[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if d >= 0 else -1.0
                qi = self._parabolic(i, d)
                if not q[i - 1] < qi < q[i + 1]:
                    # parabolic estimate left the bracket: linear fallback
                    j = i + int(d)
                    qi = q[i] + d * (q[j] - q[i]) / (n[j] - n[i])
                q[i] = qi
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def value(self) -> float:
        """Current quantile estimate (exact while fewer than 5 samples)."""
        q = self._q
        if not q:
            raise EmulationError("quantile of an empty stream")
        if len(q) < 5:
            # linear interpolation over the sorted prefix (numpy's default)
            pos = self.p * (len(q) - 1)
            lo = int(pos)
            frac = pos - lo
            if lo + 1 >= len(q):
                return q[-1]
            return q[lo] + frac * (q[lo + 1] - q[lo])
        return self._q[2]


class _MeanAgg:
    """Constant-size (count, sum) aggregate for a stream of floats."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, x: float) -> None:
        self.count += 1
        self.total += x

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass(frozen=True)
class TaskRecord:
    """Timeline of one executed task."""

    app_name: str
    instance_id: int
    task_name: str
    task_id: int
    pe_name: str
    pe_type: str
    ready_time: float
    dispatch_time: float
    start_time: float
    finish_time: float

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Ready → start latency (scheduling + dispatch + PE wait)."""
        return self.start_time - self.ready_time


@dataclass
class PEUsage:
    pe_name: str
    pe_type: str
    busy_time: float = 0.0
    tasks_executed: int = 0
    active_power_w: float = 0.0
    idle_power_w: float = 0.0
    _overrun_warned: bool = False

    def utilization(self, makespan: float, *, strict: bool = False) -> float:
        """Busy fraction of the makespan, clamped to [0, 1].

        Busy time exceeding the makespan means double accounting somewhere
        upstream; that is surfaced (warning, or :class:`EmulationError`
        under ``strict``) instead of silently hidden by the clamp.
        """
        if makespan <= 0:
            return 0.0
        util = self.busy_time / makespan
        if util > 1.0 + 1e-9:
            msg = (
                f"PE {self.pe_name}: busy_time {self.busy_time:.1f}us exceeds "
                f"makespan {makespan:.1f}us (utilization {util:.4f}) — "
                "double-accounted service time?"
            )
            if strict:
                raise EmulationError(msg)
            if not self._overrun_warned:
                self._overrun_warned = True
                _log.warning(msg)
        return min(1.0, util)

    def energy_joules(self, makespan: float) -> float:
        """Busy at active power, remainder at idle power (µs·W → J)."""
        idle = max(0.0, makespan - self.busy_time)
        return (self.busy_time * self.active_power_w + idle * self.idle_power_w) / 1e6


class EmulationStats:
    """Accumulator shared by both backends.

    ``streaming=True`` switches every per-sample list to a constant-size
    incremental aggregate (running sums plus P² quantile estimators), so
    memory stays O(1) however many applications stream through — the
    contract behind million-app open-loop runs.  The default (materialized)
    mode is byte-identical to what it always was: exact percentiles, full
    task records, per-app sample lists.
    """

    def __init__(self, label: str = "", *, streaming: bool = False) -> None:
        self.label = label
        #: constant-memory mode: aggregates only, no per-task/per-app lists
        self.streaming = streaming
        self.task_records: list[TaskRecord] = []
        # -- streaming-mode aggregates (unused otherwise) -------------------
        self._tasks_recorded = 0
        self._ready_len_agg = _MeanAgg()
        self._resp_agg: dict[str, _MeanAgg] = {}
        self._slack_agg: dict[str, _MeanAgg] = {}
        self._resp_tail = {
            50: P2Quantile(0.50), 95: P2Quantile(0.95), 99: P2Quantile(0.99),
        }
        #: timeline entries discarded once the streaming cap was hit
        self.fault_timeline_truncated = 0
        self.pe_usage: dict[str, PEUsage] = {}
        self.sched_overhead_total: float = 0.0
        self.sched_invocations: int = 0
        self.sched_overhead_samples: list[float] = []
        self.ready_len_samples: list[int] = []
        self.apps_injected: int = 0
        self.apps_completed: int = 0
        self.app_response_times: dict[str, list[float]] = {}
        self.emulation_end: float = 0.0
        self.policy_name: str = ""
        self.config_label: str = ""
        #: raise (instead of warn) on busy-time > makespan accounting bugs
        self.strict_accounting: bool = False
        # -- fault-tolerance accounting (see runtime.faults) ----------------
        #: applications terminally degraded (no live capable PE remained)
        self.apps_degraded: int = 0
        #: permanent PE failures injected
        self.pe_failures: int = 0
        #: transient kernel/DMA faults observed (one per failed attempt)
        self.transient_faults: int = 0
        #: in-place retry attempts after transient faults
        self.task_retries: int = 0
        #: WM-level reschedules (PE failure orphans + retry exhaustion)
        self.tasks_requeued: int = 0
        #: whether a fault injector was attached to the run at all
        self.faults_enabled: bool = False
        #: ordered fault events: {"t_us", "kind", "pe", ...}
        self.fault_timeline: list[dict] = []
        # Threaded-backend RM threads record faults concurrently; the
        # counters above are composite updates, so guard them.
        self._fault_lock = threading.Lock()
        # -- QoS accounting (see runtime.qos) -------------------------------
        #: whether a QoS controller was attached to the run at all
        self.qos_enabled: bool = False
        #: applications shed by admission control
        self.apps_dropped: int = 0
        #: completed applications that met / missed their deadline
        self.apps_on_time: int = 0
        self.apps_late: int = 0
        #: per-app slack samples (deadline − finish, µs; negative = late)
        self.app_slack: dict[str, list[float]] = {}
        #: hung-kernel fail-stops issued by the threaded watchdog
        self.watchdog_failstops: int = 0
        #: run stopped early (signal or budget); stats cover work done so far
        self.interrupted: bool = False
        self.interrupt_reason: str = ""

    # -- recording -----------------------------------------------------------------

    def register_pe(self, pe: ProcessingElement) -> None:
        self.pe_usage[pe.name] = PEUsage(
            pe_name=pe.name,
            pe_type=pe.type_name,
            active_power_w=pe.pe_type.active_power_w,
            idle_power_w=pe.pe_type.idle_power_w,
        )

    def record_task(self, task, pe: ProcessingElement) -> None:
        if self.streaming:
            self._tasks_recorded += 1
            usage = self.pe_usage[pe.name]
            usage.busy_time += task.finish_time - task.start_time
            usage.tasks_executed += 1
            self.emulation_end = max(self.emulation_end, task.finish_time)
            return
        rec = TaskRecord(
            app_name=task.app_name,
            instance_id=task.app.instance_id,
            task_name=task.name,
            task_id=task.task_id,
            pe_name=pe.name,
            pe_type=pe.type_name,
            ready_time=task.ready_time,
            dispatch_time=task.dispatch_time,
            start_time=task.start_time,
            finish_time=task.finish_time,
        )
        self.task_records.append(rec)
        usage = self.pe_usage[pe.name]
        usage.busy_time += rec.service_time
        usage.tasks_executed += 1
        self.emulation_end = max(self.emulation_end, rec.finish_time)

    def record_scheduling_pass(self, overhead: float, ready_len: int) -> None:
        self.sched_overhead_total += overhead
        self.sched_invocations += 1
        if self.streaming:
            self._ready_len_agg.add(float(ready_len))
            return
        self.sched_overhead_samples.append(overhead)
        self.ready_len_samples.append(ready_len)

    def record_injection(self, count: int = 1) -> None:
        self.apps_injected += count

    def record_app_completion(self, instance) -> None:
        self.apps_completed += 1
        response = instance.response_time()
        if self.streaming:
            agg = self._resp_agg.get(instance.app_name)
            if agg is None:
                agg = self._resp_agg[instance.app_name] = _MeanAgg()
            agg.add(response)
            for est in self._resp_tail.values():
                est.add(response)
        else:
            self.app_response_times.setdefault(instance.app_name, []).append(
                response
            )
        self.emulation_end = max(self.emulation_end, instance.finish_time)
        if instance.deadline is not None:
            slack = instance.deadline - instance.finish_time
            if self.streaming:
                agg = self._slack_agg.get(instance.app_name)
                if agg is None:
                    agg = self._slack_agg[instance.app_name] = _MeanAgg()
                agg.add(slack)
            else:
                self.app_slack.setdefault(instance.app_name, []).append(slack)
            if slack >= 0:
                self.apps_on_time += 1
            else:
                self.apps_late += 1

    def _timeline_append(self, entry: dict) -> None:
        """Append under the streaming cap (call with the fault lock held)."""
        if self.streaming and len(self.fault_timeline) >= _TIMELINE_CAP:
            self.fault_timeline_truncated += 1
            return
        self.fault_timeline.append(entry)

    def record_app_drop(self, instance, now: float, reason: str) -> None:
        """Application shed by admission control before completing."""
        with self._fault_lock:
            self.apps_dropped += 1
            self._timeline_append(
                {
                    "t_us": round(now, 3),
                    "kind": "app_dropped",
                    "app": f"{instance.app_name}#{instance.instance_id}",
                    "reason": reason,
                }
            )

    def mark_interrupted(self, reason: str, now: float) -> None:
        """Flag the run as stopped early (signal or watchdog budget)."""
        with self._fault_lock:
            if not self.interrupted:
                self.interrupted = True
                self.interrupt_reason = reason
                self._timeline_append(
                    {"t_us": round(now, 3), "kind": "interrupted",
                     "reason": reason}
                )

    # -- fault recording (thread-safe) ---------------------------------------------

    def record_pe_failure(
        self, pe_name: str, now: float, *, kind: str = "pe_failure"
    ) -> None:
        with self._fault_lock:
            self.pe_failures += 1
            if kind == "watchdog_failstop":
                self.watchdog_failstops += 1
            self._timeline_append(
                {"t_us": round(now, 3), "kind": kind, "pe": pe_name}
            )

    def record_transient_fault(
        self, pe_name: str, task_name: str, attempt: int, now: float, kind: str
    ) -> None:
        """One failed execution attempt (and the retry it triggers)."""
        with self._fault_lock:
            self.transient_faults += 1
            self.task_retries += 1
            self._timeline_append(
                {
                    "t_us": round(now, 3),
                    "kind": kind,
                    "pe": pe_name,
                    "task": task_name,
                    "attempt": attempt,
                }
            )

    def record_requeue(self, task, pe_name: str, now: float, kind: str) -> None:
        """Task handed back to the WM (PE failure orphan or retry exhaustion)."""
        with self._fault_lock:
            self.tasks_requeued += 1
            self._timeline_append(
                {
                    "t_us": round(now, 3),
                    "kind": kind,
                    "pe": pe_name,
                    "task": task.qualified_name(),
                }
            )

    def record_app_degradation(self, instance, now: float) -> None:
        with self._fault_lock:
            self.apps_degraded += 1
            self._timeline_append(
                {
                    "t_us": round(now, 3),
                    "kind": "app_degraded",
                    "app": f"{instance.app_name}#{instance.instance_id}",
                }
            )

    # -- aggregates ----------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Workload execution time in µs (reference start → last finish)."""
        return self.emulation_end

    @property
    def task_count(self) -> int:
        if self.streaming:
            return self._tasks_recorded
        return len(self.task_records)

    def avg_scheduling_overhead(self) -> float:
        """Mean overhead per scheduling pass, µs (the paper's Fig. 10b)."""
        if self.sched_invocations == 0:
            return 0.0
        return self.sched_overhead_total / self.sched_invocations

    def mean_ready_length(self) -> float:
        if self.streaming:
            return self._ready_len_agg.mean()
        if not self.ready_len_samples:
            return 0.0
        return float(np.mean(self.ready_len_samples))

    def pe_utilization(self) -> dict[str, float]:
        """Per-PE usage-time / workload-execution-time (Fig. 9b)."""
        span = self.makespan
        return {
            name: usage.utilization(span, strict=self.strict_accounting)
            for name, usage in self.pe_usage.items()
        }

    def pe_energy(self) -> dict[str, float]:
        span = self.makespan
        return {
            name: usage.energy_joules(span) for name, usage in self.pe_usage.items()
        }

    def mean_response_time(self, app_name: str) -> float:
        if self.streaming:
            agg = self._resp_agg.get(app_name)
            if agg is None or not agg.count:
                raise EmulationError(f"no completed instances of {app_name!r}")
            return agg.mean()
        times = self.app_response_times.get(app_name)
        if not times:
            raise EmulationError(f"no completed instances of {app_name!r}")
        return float(np.mean(times))

    def assert_all_complete(self) -> None:
        """Every injected app completed, was degraded, or was dropped."""
        accounted = self.apps_completed + self.apps_degraded + self.apps_dropped
        if accounted != self.apps_injected:
            raise EmulationError(
                f"{self.apps_injected - accounted} of "
                f"{self.apps_injected} applications did not complete"
            )

    def response_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 response time over all completed apps, in ms.

        Materialized runs compute exact percentiles over the retained
        samples; streaming runs report the P² estimates (asymptotically
        exact, O(1) memory).
        """
        if self.streaming:
            if not self._resp_tail[50].count:
                return {}
            return {
                f"p{p}_ms": round(to_msec(est.value()), 4)
                for p, est in self._resp_tail.items()
            }
        samples = [t for ts in self.app_response_times.values() for t in ts]
        if not samples:
            return {}
        p50, p95, p99 = np.percentile(samples, [50, 95, 99])
        return {
            "p50_ms": round(to_msec(float(p50)), 4),
            "p95_ms": round(to_msec(float(p95)), 4),
            "p99_ms": round(to_msec(float(p99)), 4),
        }

    def mean_response_times(self) -> dict[str, float]:
        """Mean response time per application in ms (empty apps omitted)."""
        if self.streaming:
            return {
                app: agg.mean() / 1000.0
                for app, agg in sorted(self._resp_agg.items())
                if agg.count
            }
        return {
            app: float(np.mean(times)) / 1000.0
            for app, times in sorted(self.app_response_times.items())
            if times
        }

    def summary(self) -> dict:
        """Flat report dict (what the bench harnesses print)."""
        energy = self.pe_energy()
        report = {
            "label": self.label,
            "config": self.config_label,
            "policy": self.policy_name,
            "apps_injected": self.apps_injected,
            "apps_completed": self.apps_completed,
            "apps_degraded": self.apps_degraded,
            "tasks": self.task_count,
            "makespan_ms": round(to_msec(self.makespan), 4),
            "makespan_s": round(to_sec(self.makespan), 6),
            "avg_sched_overhead_us": round(self.avg_scheduling_overhead(), 3),
            "sched_invocations": self.sched_invocations,
            "pe_utilization": {
                k: round(v, 4) for k, v in self.pe_utilization().items()
            },
            "pe_energy_j": {k: round(v, 6) for k, v in energy.items()},
            "total_energy_j": round(sum(energy.values()), 6),
            "mean_response_ms": {
                k: round(v, 4) for k, v in self.mean_response_times().items()
            },
        }
        if self.streaming:
            # Open-loop runs: tail latency is the headline number, so it is
            # reported unconditionally (estimated, see response_percentiles).
            report["streaming"] = True
            report["response_percentiles"] = self.response_percentiles()
        if self.faults_enabled or self.fault_timeline or self.apps_degraded:
            report["faults"] = {
                "pe_failures": self.pe_failures,
                "transient_faults": self.transient_faults,
                "task_retries": self.task_retries,
                "tasks_requeued": self.tasks_requeued,
                "timeline": list(self.fault_timeline),
            }
            if self.fault_timeline_truncated:
                report["faults"]["timeline_truncated"] = (
                    self.fault_timeline_truncated
                )
        # Conditional like "faults": runs without a QoS controller (and
        # without drops/fail-stops) keep today's byte-identical summaries.
        if self.qos_enabled or self.apps_dropped or self.watchdog_failstops:
            if self.streaming:
                mean_slack = {
                    app: round(agg.mean(), 3)
                    for app, agg in sorted(self._slack_agg.items())
                    if agg.count
                }
            else:
                mean_slack = {
                    app: round(float(np.mean(vals)), 3)
                    for app, vals in sorted(self.app_slack.items())
                    if vals
                }
            report["qos"] = {
                "apps_dropped": self.apps_dropped,
                "apps_on_time": self.apps_on_time,
                "apps_late": self.apps_late,
                "watchdog_failstops": self.watchdog_failstops,
                "response_percentiles": self.response_percentiles(),
                "mean_slack_us": mean_slack,
            }
        if self.interrupted:
            report["interrupted"] = True
            report["interrupt_reason"] = self.interrupt_reason
        return report
