"""Scheduling statistics collected before emulation termination (Sec. II-A).

The framework records, per task: which PE ran it and its ready → dispatch
→ start → finish timeline; per PE: busy time (and derived utilization and
energy); per workload-manager invocation: the scheduling overhead — the
paper's definition: time to monitor completion status, update the ready
queue, run the policy, and communicate tasks to resource managers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmulationError
from repro.common.log import get_logger
from repro.common.units import to_msec, to_sec
from repro.hardware.pe import ProcessingElement

_log = get_logger("runtime.stats")


@dataclass(frozen=True)
class TaskRecord:
    """Timeline of one executed task."""

    app_name: str
    instance_id: int
    task_name: str
    task_id: int
    pe_name: str
    pe_type: str
    ready_time: float
    dispatch_time: float
    start_time: float
    finish_time: float

    @property
    def service_time(self) -> float:
        return self.finish_time - self.start_time

    @property
    def queue_delay(self) -> float:
        """Ready → start latency (scheduling + dispatch + PE wait)."""
        return self.start_time - self.ready_time


@dataclass
class PEUsage:
    pe_name: str
    pe_type: str
    busy_time: float = 0.0
    tasks_executed: int = 0
    active_power_w: float = 0.0
    idle_power_w: float = 0.0
    _overrun_warned: bool = False

    def utilization(self, makespan: float, *, strict: bool = False) -> float:
        """Busy fraction of the makespan, clamped to [0, 1].

        Busy time exceeding the makespan means double accounting somewhere
        upstream; that is surfaced (warning, or :class:`EmulationError`
        under ``strict``) instead of silently hidden by the clamp.
        """
        if makespan <= 0:
            return 0.0
        util = self.busy_time / makespan
        if util > 1.0 + 1e-9:
            msg = (
                f"PE {self.pe_name}: busy_time {self.busy_time:.1f}us exceeds "
                f"makespan {makespan:.1f}us (utilization {util:.4f}) — "
                "double-accounted service time?"
            )
            if strict:
                raise EmulationError(msg)
            if not self._overrun_warned:
                self._overrun_warned = True
                _log.warning(msg)
        return min(1.0, util)

    def energy_joules(self, makespan: float) -> float:
        """Busy at active power, remainder at idle power (µs·W → J)."""
        idle = max(0.0, makespan - self.busy_time)
        return (self.busy_time * self.active_power_w + idle * self.idle_power_w) / 1e6


class EmulationStats:
    """Accumulator shared by both backends."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.task_records: list[TaskRecord] = []
        self.pe_usage: dict[str, PEUsage] = {}
        self.sched_overhead_total: float = 0.0
        self.sched_invocations: int = 0
        self.sched_overhead_samples: list[float] = []
        self.ready_len_samples: list[int] = []
        self.apps_injected: int = 0
        self.apps_completed: int = 0
        self.app_response_times: dict[str, list[float]] = {}
        self.emulation_end: float = 0.0
        self.policy_name: str = ""
        self.config_label: str = ""
        #: raise (instead of warn) on busy-time > makespan accounting bugs
        self.strict_accounting: bool = False
        # -- fault-tolerance accounting (see runtime.faults) ----------------
        #: applications terminally degraded (no live capable PE remained)
        self.apps_degraded: int = 0
        #: permanent PE failures injected
        self.pe_failures: int = 0
        #: transient kernel/DMA faults observed (one per failed attempt)
        self.transient_faults: int = 0
        #: in-place retry attempts after transient faults
        self.task_retries: int = 0
        #: WM-level reschedules (PE failure orphans + retry exhaustion)
        self.tasks_requeued: int = 0
        #: whether a fault injector was attached to the run at all
        self.faults_enabled: bool = False
        #: ordered fault events: {"t_us", "kind", "pe", ...}
        self.fault_timeline: list[dict] = []
        # Threaded-backend RM threads record faults concurrently; the
        # counters above are composite updates, so guard them.
        self._fault_lock = threading.Lock()
        # -- QoS accounting (see runtime.qos) -------------------------------
        #: whether a QoS controller was attached to the run at all
        self.qos_enabled: bool = False
        #: applications shed by admission control
        self.apps_dropped: int = 0
        #: completed applications that met / missed their deadline
        self.apps_on_time: int = 0
        self.apps_late: int = 0
        #: per-app slack samples (deadline − finish, µs; negative = late)
        self.app_slack: dict[str, list[float]] = {}
        #: hung-kernel fail-stops issued by the threaded watchdog
        self.watchdog_failstops: int = 0
        #: run stopped early (signal or budget); stats cover work done so far
        self.interrupted: bool = False
        self.interrupt_reason: str = ""

    # -- recording -----------------------------------------------------------------

    def register_pe(self, pe: ProcessingElement) -> None:
        self.pe_usage[pe.name] = PEUsage(
            pe_name=pe.name,
            pe_type=pe.type_name,
            active_power_w=pe.pe_type.active_power_w,
            idle_power_w=pe.pe_type.idle_power_w,
        )

    def record_task(self, task, pe: ProcessingElement) -> None:
        rec = TaskRecord(
            app_name=task.app_name,
            instance_id=task.app.instance_id,
            task_name=task.name,
            task_id=task.task_id,
            pe_name=pe.name,
            pe_type=pe.type_name,
            ready_time=task.ready_time,
            dispatch_time=task.dispatch_time,
            start_time=task.start_time,
            finish_time=task.finish_time,
        )
        self.task_records.append(rec)
        usage = self.pe_usage[pe.name]
        usage.busy_time += rec.service_time
        usage.tasks_executed += 1
        self.emulation_end = max(self.emulation_end, rec.finish_time)

    def record_scheduling_pass(self, overhead: float, ready_len: int) -> None:
        self.sched_overhead_total += overhead
        self.sched_invocations += 1
        self.sched_overhead_samples.append(overhead)
        self.ready_len_samples.append(ready_len)

    def record_injection(self, count: int = 1) -> None:
        self.apps_injected += count

    def record_app_completion(self, instance) -> None:
        self.apps_completed += 1
        self.app_response_times.setdefault(instance.app_name, []).append(
            instance.response_time()
        )
        self.emulation_end = max(self.emulation_end, instance.finish_time)
        if instance.deadline is not None:
            slack = instance.deadline - instance.finish_time
            self.app_slack.setdefault(instance.app_name, []).append(slack)
            if slack >= 0:
                self.apps_on_time += 1
            else:
                self.apps_late += 1

    def record_app_drop(self, instance, now: float, reason: str) -> None:
        """Application shed by admission control before completing."""
        with self._fault_lock:
            self.apps_dropped += 1
            self.fault_timeline.append(
                {
                    "t_us": round(now, 3),
                    "kind": "app_dropped",
                    "app": f"{instance.app_name}#{instance.instance_id}",
                    "reason": reason,
                }
            )

    def mark_interrupted(self, reason: str, now: float) -> None:
        """Flag the run as stopped early (signal or watchdog budget)."""
        with self._fault_lock:
            if not self.interrupted:
                self.interrupted = True
                self.interrupt_reason = reason
                self.fault_timeline.append(
                    {"t_us": round(now, 3), "kind": "interrupted",
                     "reason": reason}
                )

    # -- fault recording (thread-safe) ---------------------------------------------

    def record_pe_failure(
        self, pe_name: str, now: float, *, kind: str = "pe_failure"
    ) -> None:
        with self._fault_lock:
            self.pe_failures += 1
            if kind == "watchdog_failstop":
                self.watchdog_failstops += 1
            self.fault_timeline.append(
                {"t_us": round(now, 3), "kind": kind, "pe": pe_name}
            )

    def record_transient_fault(
        self, pe_name: str, task_name: str, attempt: int, now: float, kind: str
    ) -> None:
        """One failed execution attempt (and the retry it triggers)."""
        with self._fault_lock:
            self.transient_faults += 1
            self.task_retries += 1
            self.fault_timeline.append(
                {
                    "t_us": round(now, 3),
                    "kind": kind,
                    "pe": pe_name,
                    "task": task_name,
                    "attempt": attempt,
                }
            )

    def record_requeue(self, task, pe_name: str, now: float, kind: str) -> None:
        """Task handed back to the WM (PE failure orphan or retry exhaustion)."""
        with self._fault_lock:
            self.tasks_requeued += 1
            self.fault_timeline.append(
                {
                    "t_us": round(now, 3),
                    "kind": kind,
                    "pe": pe_name,
                    "task": task.qualified_name(),
                }
            )

    def record_app_degradation(self, instance, now: float) -> None:
        with self._fault_lock:
            self.apps_degraded += 1
            self.fault_timeline.append(
                {
                    "t_us": round(now, 3),
                    "kind": "app_degraded",
                    "app": f"{instance.app_name}#{instance.instance_id}",
                }
            )

    # -- aggregates ----------------------------------------------------------------

    @property
    def makespan(self) -> float:
        """Workload execution time in µs (reference start → last finish)."""
        return self.emulation_end

    @property
    def task_count(self) -> int:
        return len(self.task_records)

    def avg_scheduling_overhead(self) -> float:
        """Mean overhead per scheduling pass, µs (the paper's Fig. 10b)."""
        if self.sched_invocations == 0:
            return 0.0
        return self.sched_overhead_total / self.sched_invocations

    def mean_ready_length(self) -> float:
        if not self.ready_len_samples:
            return 0.0
        return float(np.mean(self.ready_len_samples))

    def pe_utilization(self) -> dict[str, float]:
        """Per-PE usage-time / workload-execution-time (Fig. 9b)."""
        span = self.makespan
        return {
            name: usage.utilization(span, strict=self.strict_accounting)
            for name, usage in self.pe_usage.items()
        }

    def pe_energy(self) -> dict[str, float]:
        span = self.makespan
        return {
            name: usage.energy_joules(span) for name, usage in self.pe_usage.items()
        }

    def mean_response_time(self, app_name: str) -> float:
        times = self.app_response_times.get(app_name)
        if not times:
            raise EmulationError(f"no completed instances of {app_name!r}")
        return float(np.mean(times))

    def assert_all_complete(self) -> None:
        """Every injected app completed, was degraded, or was dropped."""
        accounted = self.apps_completed + self.apps_degraded + self.apps_dropped
        if accounted != self.apps_injected:
            raise EmulationError(
                f"{self.apps_injected - accounted} of "
                f"{self.apps_injected} applications did not complete"
            )

    def response_percentiles(self) -> dict[str, float]:
        """p50/p95/p99 response time over all completed apps, in ms."""
        samples = [t for ts in self.app_response_times.values() for t in ts]
        if not samples:
            return {}
        p50, p95, p99 = np.percentile(samples, [50, 95, 99])
        return {
            "p50_ms": round(to_msec(float(p50)), 4),
            "p95_ms": round(to_msec(float(p95)), 4),
            "p99_ms": round(to_msec(float(p99)), 4),
        }

    def mean_response_times(self) -> dict[str, float]:
        """Mean response time per application in ms (empty apps omitted)."""
        return {
            app: float(np.mean(times)) / 1000.0
            for app, times in sorted(self.app_response_times.items())
            if times
        }

    def summary(self) -> dict:
        """Flat report dict (what the bench harnesses print)."""
        energy = self.pe_energy()
        report = {
            "label": self.label,
            "config": self.config_label,
            "policy": self.policy_name,
            "apps_injected": self.apps_injected,
            "apps_completed": self.apps_completed,
            "apps_degraded": self.apps_degraded,
            "tasks": self.task_count,
            "makespan_ms": round(to_msec(self.makespan), 4),
            "makespan_s": round(to_sec(self.makespan), 6),
            "avg_sched_overhead_us": round(self.avg_scheduling_overhead(), 3),
            "sched_invocations": self.sched_invocations,
            "pe_utilization": {
                k: round(v, 4) for k, v in self.pe_utilization().items()
            },
            "pe_energy_j": {k: round(v, 6) for k, v in energy.items()},
            "total_energy_j": round(sum(energy.values()), 6),
            "mean_response_ms": {
                k: round(v, 4) for k, v in self.mean_response_times().items()
            },
        }
        if self.faults_enabled or self.fault_timeline or self.apps_degraded:
            report["faults"] = {
                "pe_failures": self.pe_failures,
                "transient_faults": self.transient_faults,
                "task_retries": self.task_retries,
                "tasks_requeued": self.tasks_requeued,
                "timeline": list(self.fault_timeline),
            }
        # Conditional like "faults": runs without a QoS controller (and
        # without drops/fail-stops) keep today's byte-identical summaries.
        if self.qos_enabled or self.apps_dropped or self.watchdog_failstops:
            report["qos"] = {
                "apps_dropped": self.apps_dropped,
                "apps_on_time": self.apps_on_time,
                "apps_late": self.apps_late,
                "watchdog_failstops": self.watchdog_failstops,
                "response_percentiles": self.response_percentiles(),
                "mean_slack_us": {
                    app: round(float(np.mean(vals)), 3)
                    for app, vals in sorted(self.app_slack.items())
                    if vals
                },
            }
        if self.interrupted:
            report["interrupted"] = True
            report["interrupt_reason"] = self.interrupt_reason
        return report
