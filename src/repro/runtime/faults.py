"""Fault-tolerance subsystem: declarative fault specs and deterministic injection.

The paper frames resource handlers as the place where runtime decisions
react to PE state (Sec. II-C); DS3-style design-space exploration treats
resilience what-ifs as a first-class simulation axis.  This module makes PE
failure a *schedulable* state:

* :class:`FaultSpec` — a declarative, JSON-serializable description of the
  faults to inject into one emulation: permanent per-PE fail-at-time
  events, a transient kernel-exception probability, accelerator DMA/device
  error probability, and per-PE stall/slowdown factors.
* :class:`FaultInjector` — the runtime object built from a spec plus the
  session's seeded RNG factory.  Every random decision draws from a named
  per-PE stream, so a fixed seed replays the exact same fault sequence on
  the virtual backend (same workload, same policy, same failures).

Semantics shared by both backends:

* **Permanent PE failure** (``pe_failures``): at the given time the PE
  transitions to ``PEStatus.FAILED`` under its handler lock.  Its in-flight
  task and any reservation-queue bookings are requeued onto the workload
  manager's ready list and the policy re-runs with failed PEs excluded.
* **Transient kernel fault** (``transient_prob`` / ``accel_error_prob``):
  each execution attempt may fail; the resource manager retries in place
  with linear backoff up to ``max_retries`` times.  When retries are
  exhausted the task is handed back to the workload manager for
  rescheduling (at most ``max_requeues`` times, then its application is
  recorded as *degraded* instead of crashing the run).
* **Degraded completion**: an application whose remaining tasks have no
  live capable PE is terminally degraded — counted in
  ``EmulationStats.apps_degraded`` with a timeline event — so
  ``apps_completed + apps_degraded == apps_injected`` always holds.
* **Slowdown** (``slowdown``): a multiplicative stall factor on a PE's
  modeled service time (virtual backend) or post-kernel stall (threaded).

An *empty* spec (no failures, zero probabilities, no slowdown, hardening
off) disables the whole machinery: backends take their original code paths
and results are bit-identical to a run without any spec.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError
from repro.common.rng import SeedSequenceFactory


class FaultSpecError(ReproError):
    """A fault specification is malformed or inconsistent."""


class InjectedKernelFault(Exception):
    """Raised inside a resource manager to model a transient kernel fault.

    Internal to the fault machinery: it is always caught by the retry loop
    and never escapes a backend.
    """

    def __init__(self, kind: str) -> None:
        super().__init__(f"injected {kind} fault")
        self.kind = kind


@dataclass(frozen=True)
class PEFailure:
    """One permanent failure event: PE (by name or type) fails at ``at_us``."""

    pe: str
    at_us: float

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise FaultSpecError(
                f"PE failure time must be >= 0, got {self.at_us} for {self.pe!r}"
            )

    def matches(self, handler) -> bool:
        """Does this entry apply to ``handler``?  Name match wins; a type
        name (e.g. ``"fft"``) fails every PE of that type."""
        return self.pe in (handler.name, handler.type_name)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault plan for one emulation (see module docstring)."""

    pe_failures: tuple[PEFailure, ...] = ()
    #: per-attempt probability of a transient kernel exception (any PE)
    transient_prob: float = 0.0
    #: additional per-attempt probability of a DMA/device error (accel PEs)
    accel_error_prob: float = 0.0
    #: in-place retries per PE before the task is handed back to the WM
    max_retries: int = 2
    #: linear backoff step between retries (modeled µs / wall-clock µs)
    backoff_us: float = 50.0
    #: WM-level reschedules of one task before its app is degraded
    max_requeues: int = 3
    #: per-PE (name or type) service-time stall factors, as ordered pairs
    slowdown: tuple[tuple[str, float], ...] = ()
    #: retry *real* kernel exceptions in the threaded backend even when no
    #: fault is injected (crash hardening for flaky kernels)
    harden: bool = False
    #: optional short label used in DSE cell labels
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_prob <= 1.0:
            raise FaultSpecError(
                f"transient_prob must be in [0, 1], got {self.transient_prob}"
            )
        if not 0.0 <= self.accel_error_prob <= 1.0:
            raise FaultSpecError(
                f"accel_error_prob must be in [0, 1], got {self.accel_error_prob}"
            )
        if self.max_retries < 0:
            raise FaultSpecError("max_retries must be >= 0")
        if self.max_requeues < 0:
            raise FaultSpecError("max_requeues must be >= 0")
        if self.backoff_us < 0:
            raise FaultSpecError("backoff_us must be >= 0")
        for name, factor in self.slowdown:
            if factor < 1.0:
                raise FaultSpecError(
                    f"slowdown factor must be >= 1.0, got {factor} for {name!r}"
                )

    @property
    def is_empty(self) -> bool:
        """True when the spec injects nothing — backends skip all fault code."""
        return (
            not self.pe_failures
            and self.transient_prob == 0.0
            and self.accel_error_prob == 0.0
            and not self.slowdown
            and not self.harden
        )

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        doc: dict = {}
        if self.pe_failures:
            doc["pe_failures"] = [
                {"pe": f.pe, "at_us": f.at_us} for f in self.pe_failures
            ]
        if self.transient_prob or self.accel_error_prob:
            doc["transient"] = {
                "prob": self.transient_prob,
                "accel_prob": self.accel_error_prob,
            }
        doc["retry"] = {
            "max_retries": self.max_retries,
            "backoff_us": self.backoff_us,
            "max_requeues": self.max_requeues,
        }
        if self.slowdown:
            doc["slowdown"] = dict(self.slowdown)
        if self.harden:
            doc["harden"] = True
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        if not isinstance(data, dict):
            raise FaultSpecError(f"fault spec must be an object, got {type(data).__name__}")
        unknown = set(data) - {
            "pe_failures", "transient", "retry", "slowdown", "harden", "label",
        }
        if unknown:
            raise FaultSpecError(f"unknown fault spec keys: {sorted(unknown)}")
        failures = tuple(
            PEFailure(pe=str(entry["pe"]), at_us=float(entry["at_us"]))
            for entry in data.get("pe_failures", ())
        )
        transient = data.get("transient", {})
        retry = data.get("retry", {})
        slowdown = tuple(
            (str(name), float(factor))
            for name, factor in sorted(dict(data.get("slowdown", {})).items())
        )
        return cls(
            pe_failures=failures,
            transient_prob=float(transient.get("prob", 0.0)),
            accel_error_prob=float(transient.get("accel_prob", 0.0)),
            max_retries=int(retry.get("max_retries", 2)),
            backoff_us=float(retry.get("backoff_us", 50.0)),
            max_requeues=int(retry.get("max_requeues", 3)),
            slowdown=slowdown,
            harden=bool(data.get("harden", False)),
            label=str(data.get("label", "")),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "FaultSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise FaultSpecError(f"cannot load fault spec {path!r}: {exc}") from exc
        return cls.from_dict(data)


@dataclass
class FaultInjector:
    """Runtime fault source: a spec bound to the session's seeded RNG.

    One injector serves one emulation run.  Per-PE decision streams are
    derived by name (``faults/<pe-name>``) so a PE's fault sequence depends
    only on the seed and on how many attempts *that PE* has executed —
    deterministic under the virtual backend's deterministic schedule.
    """

    spec: FaultSpec
    seeds: SeedSequenceFactory
    _streams: dict[str, np.random.Generator] = field(default_factory=dict)

    # -- permanent failures --------------------------------------------------------

    def fail_at(self, handler) -> float | None:
        """Earliest scheduled permanent-failure time for this PE, or None."""
        times = [f.at_us for f in self.spec.pe_failures if f.matches(handler)]
        return min(times) if times else None

    # -- transient faults ----------------------------------------------------------

    def _stream(self, pe_name: str) -> np.random.Generator:
        rng = self._streams.get(pe_name)
        if rng is None:
            rng = self.seeds.rng("faults", pe_name)
            self._streams[pe_name] = rng
        return rng

    def draw_fault(self, handler) -> str | None:
        """One per-attempt draw: ``"accel"``, ``"transient"``, or None.

        Accelerator PEs stack the DMA/device error probability on top of
        the generic transient probability; CPU PEs see only the latter.
        Probability-zero configurations consume no RNG state.
        """
        p_transient = self.spec.transient_prob
        p_accel = (
            self.spec.accel_error_prob if handler.pe.pe_type.is_accelerator else 0.0
        )
        if p_transient <= 0.0 and p_accel <= 0.0:
            return None
        u = float(self._stream(handler.name).random())
        if u < p_accel:
            return "accel"
        if u < p_accel + p_transient:
            return "transient"
        return None

    # -- retry policy --------------------------------------------------------------

    @property
    def max_retries(self) -> int:
        return self.spec.max_retries

    @property
    def max_requeues(self) -> int:
        return self.spec.max_requeues

    @property
    def harden(self) -> bool:
        return self.spec.harden

    def backoff_us(self, attempt: int) -> float:
        """Linear backoff: ``attempt`` is 1-based."""
        return self.spec.backoff_us * attempt

    # -- slowdown ------------------------------------------------------------------

    def slowdown_for(self, handler) -> float:
        """Multiplicative stall factor for this PE (1.0 = nominal)."""
        factor = 1.0
        for name, value in self.spec.slowdown:
            if name in (handler.name, handler.type_name):
                factor = max(factor, value)
        return factor


def make_injector(
    spec: "FaultSpec | dict | None", seeds: SeedSequenceFactory
) -> FaultInjector | None:
    """Build an injector, or None when the spec is absent or empty."""
    if spec is None:
        return None
    if isinstance(spec, dict):
        spec = FaultSpec.from_dict(spec)
    if spec.is_empty:
        return None
    return FaultInjector(spec, seeds.spawn("faults"))
