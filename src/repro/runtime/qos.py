"""QoS/guardrail subsystem: deadlines, admission control, watchdogs, shutdown.

The paper's performance mode reports only *average* job completion time;
a long-running emulation service must also bound tail behavior — decide
which arrivals to admit under overload, account for missed deadlines, and
survive hung kernels and operator interrupts without losing results.
This module makes those guarantees declarative:

* :class:`QoSSpec` — a JSON-serializable description of one run's service
  objectives: per-application relative deadlines, an admission bound with
  an overload policy (``drop-newest`` / ``drop-oldest`` / ``defer``), and
  watchdog budgets (wall clock, modeled time, per-PE heartbeat timeout).
* :class:`QoSController` — the runtime object carried by the session.  It
  binds a spec to a thread-safe interrupt flag, so a signal handler (or a
  test) can request a graceful *drain*: backends stop injecting, let
  in-flight work finish, and return partial stats flagged
  ``interrupted=True`` instead of crashing or hanging.
* :class:`EDFScheduler` — a deadline-aware wrapper around any registered
  policy: the ready list is presented in earliest-deadline-first order
  (stable, so same-deadline tasks keep their FIFO order) before the
  wrapped policy runs.  Selected as ``<policy>+edf``, e.g. ``frfs+edf``.

Accounting contract (both backends): every presented arrival is admitted,
deferred, or shed, so

    ``apps_completed + apps_degraded + apps_dropped == apps_injected``

holds whenever a run finishes uninterrupted.  An *empty* spec (no
deadlines, no admission bound, no budgets) disables the whole machinery:
backends take their original code paths and results are bit-identical to
a run without any spec.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field, replace

from repro.common.errors import ReproError
from repro.runtime.schedulers.base import (
    Assignment,
    ExecutionTimeOracle,
    Scheduler,
)

#: Overload policies for the bounded admission queue.
OVERLOAD_POLICIES = ("drop-newest", "drop-oldest", "defer")

#: Key every application name can fall back to in a deadline map.
DEFAULT_DEADLINE_KEY = "*"


class QoSSpecError(ReproError):
    """A QoS specification is malformed or inconsistent."""


def _positive(value: float, what: str) -> float:
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise QoSSpecError(f"{what} must be positive and finite, got {value}")
    return value


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded admission: at most ``max_pending`` applications in flight.

    An application is *in flight* from admission (injection into the
    emulation) until it completes, degrades, or is dropped.  An arrival
    that comes due at the bound is handled by ``policy``:

    * ``defer`` — backpressure only: the arrival waits in the workload
      queue and is admitted (late) once an in-flight app finishes.
    * ``drop-newest`` — the due arrival is shed.
    * ``drop-oldest`` — the oldest admitted application that has made no
      progress yet (nothing dispatched or completed) is shed to make room
      for the new arrival; with no such victim the arrival is shed
      instead.
    """

    max_pending: int
    policy: str = "defer"

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise QoSSpecError(
                f"admission max_pending must be >= 1, got {self.max_pending}"
            )
        if self.policy not in OVERLOAD_POLICIES:
            raise QoSSpecError(
                f"unknown overload policy {self.policy!r} "
                f"(use one of {OVERLOAD_POLICIES})"
            )


@dataclass(frozen=True)
class QoSSpec:
    """Declarative QoS plan for one emulation (see module docstring)."""

    #: per-application relative deadlines in µs (measured from the app's
    #: nominal arrival time, so queueing delay counts against the budget);
    #: the ``"*"`` entry applies to every application not named explicitly
    deadlines: tuple[tuple[str, float], ...] = ()
    #: bounded admission + overload policy, or None for unbounded admission
    admission: AdmissionConfig | None = None
    #: wall-clock run budget in seconds (both backends)
    wall_budget_s: float | None = None
    #: modeled-time budget in µs (virtual backend only)
    virtual_budget_us: float | None = None
    #: threaded backend: a PE whose resource manager shows no heartbeat for
    #: this long while a task runs is fail-stopped as hung
    heartbeat_timeout_s: float | None = None
    #: optional short label used in DSE cell labels
    label: str = ""

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for name, rel in self.deadlines:
            if name in seen:
                raise QoSSpecError(f"duplicate deadline entry for {name!r}")
            seen.add(name)
            _positive(rel, f"deadline for {name!r}")
        if self.wall_budget_s is not None:
            _positive(self.wall_budget_s, "wall_budget_s")
        if self.virtual_budget_us is not None:
            _positive(self.virtual_budget_us, "virtual_budget_us")
        if self.heartbeat_timeout_s is not None:
            _positive(self.heartbeat_timeout_s, "heartbeat_timeout_s")

    @property
    def is_empty(self) -> bool:
        """True when the spec asks for nothing — backends skip all QoS code."""
        return (
            not self.deadlines
            and self.admission is None
            and self.wall_budget_s is None
            and self.virtual_budget_us is None
            and self.heartbeat_timeout_s is None
        )

    def deadline_for(self, app_name: str) -> float | None:
        """Relative deadline (µs) for one application, or None."""
        fallback: float | None = None
        for name, rel in self.deadlines:
            if name == app_name:
                return rel
            if name == DEFAULT_DEADLINE_KEY:
                fallback = rel
        return fallback

    # -- (de)serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        doc: dict = {}
        if self.deadlines:
            doc["deadlines"] = {name: rel for name, rel in self.deadlines}
        if self.admission is not None:
            doc["admission"] = {
                "max_pending": self.admission.max_pending,
                "policy": self.admission.policy,
            }
        watchdog: dict = {}
        if self.wall_budget_s is not None:
            watchdog["wall_budget_s"] = self.wall_budget_s
        if self.virtual_budget_us is not None:
            watchdog["virtual_budget_us"] = self.virtual_budget_us
        if self.heartbeat_timeout_s is not None:
            watchdog["heartbeat_timeout_s"] = self.heartbeat_timeout_s
        if watchdog:
            doc["watchdog"] = watchdog
        if self.label:
            doc["label"] = self.label
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "QoSSpec":
        if not isinstance(data, dict):
            raise QoSSpecError(
                f"QoS spec must be an object, got {type(data).__name__}"
            )
        unknown = set(data) - {"deadlines", "admission", "watchdog", "label"}
        if unknown:
            raise QoSSpecError(f"unknown QoS spec keys: {sorted(unknown)}")
        deadlines = tuple(
            (str(name), float(rel))
            for name, rel in sorted(dict(data.get("deadlines", {})).items())
        )
        admission = None
        adm = data.get("admission")
        if adm is not None:
            if not isinstance(adm, dict) or "max_pending" not in adm:
                raise QoSSpecError(
                    "admission must be an object with a max_pending bound"
                )
            bad = set(adm) - {"max_pending", "policy"}
            if bad:
                raise QoSSpecError(f"unknown admission keys: {sorted(bad)}")
            admission = AdmissionConfig(
                max_pending=int(adm["max_pending"]),
                policy=str(adm.get("policy", "defer")),
            )
        watchdog = data.get("watchdog", {})
        if not isinstance(watchdog, dict):
            raise QoSSpecError("watchdog must be an object")
        bad = set(watchdog) - {
            "wall_budget_s", "virtual_budget_us", "heartbeat_timeout_s",
        }
        if bad:
            raise QoSSpecError(f"unknown watchdog keys: {sorted(bad)}")

        def opt(key: str) -> float | None:
            value = watchdog.get(key)
            return None if value is None else float(value)

        return cls(
            deadlines=deadlines,
            admission=admission,
            wall_budget_s=opt("wall_budget_s"),
            virtual_budget_us=opt("virtual_budget_us"),
            heartbeat_timeout_s=opt("heartbeat_timeout_s"),
            label=str(data.get("label", "")),
        )

    @classmethod
    def from_json_file(cls, path: str) -> "QoSSpec":
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise QoSSpecError(f"cannot load QoS spec {path!r}: {exc}") from exc
        return cls.from_dict(data)


class QoSController:
    """One run's QoS runtime: a spec plus a thread-safe interrupt flag.

    The controller is what signal handlers (and tests) talk to: calling
    :meth:`request_interrupt` asks the running backend to drain — finish
    in-flight tasks, stop injecting, flush partial stats flagged
    ``interrupted`` — instead of dying mid-run.  Backends poll
    :meth:`poll` once per workload-manager pass; the check is a couple of
    attribute reads, so it costs nothing measurable even on the virtual
    backend's hot loop.
    """

    def __init__(
        self,
        spec: QoSSpec | dict | None = None,
        *,
        wall_budget_s: float | None = None,
    ) -> None:
        if isinstance(spec, dict):
            spec = QoSSpec.from_dict(spec)
        spec = spec if spec is not None else QoSSpec()
        if wall_budget_s is not None:
            spec = replace(spec, wall_budget_s=_positive(
                wall_budget_s, "wall_budget_s"
            ))
        self.spec = spec
        self._interrupt = threading.Event()
        self.interrupt_reason = ""
        self._t0: float | None = None

    # -- interrupt flag (thread/signal safe) -----------------------------------------

    def request_interrupt(self, reason: str = "signal") -> None:
        """Ask the running backend to drain and flush partial results."""
        if not self._interrupt.is_set():
            self.interrupt_reason = reason
            self._interrupt.set()

    @property
    def interrupted(self) -> bool:
        return self._interrupt.is_set()

    # -- run-scoped state ------------------------------------------------------------

    def start_run(self) -> None:
        """Backends call this once at run start (arms the wall budget)."""
        self._t0 = time.perf_counter()

    def poll(self, modeled_us: float | None = None) -> str | None:
        """Reason to stop now (``"signal" | "wall_budget" | ...``), or None."""
        if self._interrupt.is_set():
            return self.interrupt_reason or "signal"
        spec = self.spec
        if (
            spec.virtual_budget_us is not None
            and modeled_us is not None
            and modeled_us > spec.virtual_budget_us
        ):
            return "virtual_budget"
        if (
            spec.wall_budget_s is not None
            and self._t0 is not None
            and time.perf_counter() - self._t0 > spec.wall_budget_s
        ):
            return "wall_budget"
        return None

    # -- convenience accessors ---------------------------------------------------------

    @property
    def admission(self) -> AdmissionConfig | None:
        return self.spec.admission

    @property
    def heartbeat_timeout_us(self) -> float | None:
        if self.spec.heartbeat_timeout_s is None:
            return None
        return self.spec.heartbeat_timeout_s * 1e6

    def assign_deadline(self, instance) -> None:
        """Stamp one instance's absolute deadline (arrival + relative).

        Streaming runs call this per instance at injection; materialized
        runs batch it via :meth:`assign_deadlines` at session build.
        """
        if not self.spec.deadlines:
            return
        rel = self.spec.deadline_for(instance.app_name)
        if rel is not None:
            instance.deadline = instance.arrival_time + rel

    def assign_deadlines(self, instances) -> None:
        """Stamp each instance's absolute deadline (arrival + relative)."""
        if not self.spec.deadlines:
            return
        for instance in instances:
            self.assign_deadline(instance)


def make_qos(qos: "QoSController | QoSSpec | dict | None") -> QoSController | None:
    """Normalize a QoS input into a controller, or None when inert.

    A :class:`QoSController` passed explicitly is kept even when its spec
    is empty — callers that install signal handlers need the live
    interrupt flag — while an empty *spec* (or ``None``) resolves to None
    so the backends keep their original fast paths.
    """
    if qos is None:
        return None
    if isinstance(qos, QoSController):
        return qos
    if isinstance(qos, dict):
        qos = QoSSpec.from_dict(qos)
    if qos.is_empty:
        return None
    return QoSController(qos)


class EDFScheduler(Scheduler):
    """Earliest-deadline-first tie-break around any registered policy.

    The wrapped policy sees the ready list sorted by absolute application
    deadline (apps without a deadline sort last); the sort is stable, so
    tasks with equal deadlines keep their FIFO order and a run without
    deadlines behaves exactly like the bare policy.
    """

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.name = f"{inner.name}+edf"
        self.uses_reservation = inner.uses_reservation
        # Stateful inner policies (cprank/rollout) still see WM events
        # through the wrapper.
        self.wants_events = inner.wants_events

    # The oracle is attached by the backend after construction; the inner
    # policy is what actually consumes it.
    @property
    def oracle(self) -> ExecutionTimeOracle | None:
        return self.inner.oracle

    @oracle.setter
    def oracle(self, oracle: ExecutionTimeOracle | None) -> None:
        self.inner.oracle = oracle

    def notify_dispatch(self, assignments, now: float) -> None:
        self.inner.notify_dispatch(assignments, now)

    def notify_completion(self, task, now: float) -> None:
        self.inner.notify_completion(task, now)

    def notify_pe_failure(self, handler, now: float) -> None:
        self.inner.notify_pe_failure(handler, now)

    @staticmethod
    def _deadline_key(task) -> float:
        deadline = task.app.deadline
        return deadline if deadline is not None else math.inf

    def schedule(self, ready, handlers, now: float) -> list[Assignment]:
        ordered = sorted(ready, key=self._deadline_key)
        return self.inner.schedule(ordered, handlers, now)
