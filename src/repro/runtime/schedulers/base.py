"""Scheduler interface and shared helpers.

A policy receives the ready task list and the resource handlers, and
returns assignments of tasks onto **idle** PEs whose type appears in the
task's platform list.  The workload manager validates every assignment
(:func:`validate_assignments`), so a buggy custom policy fails loudly with
a :class:`~repro.common.errors.SchedulingError` rather than corrupting the
emulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro import core as core_select
from repro.appmodel.instance import TaskInstance
from repro.common.errors import SchedulingError
from repro.runtime.handler import PEStatus, ResourceHandler


@dataclass(frozen=True)
class Assignment:
    """One scheduling decision: run ``task`` on ``handler``'s PE."""

    task: TaskInstance
    handler: ResourceHandler


class ExecutionTimeOracle(Protocol):
    """Expected execution times, as schedulers would obtain from profiling.

    ``estimate(task, handler)`` returns the expected service time (µs) of
    the task on the handler's PE, or ``None`` when the task's platform list
    does not include that PE type.
    """

    def estimate(self, task: TaskInstance, handler: ResourceHandler) -> float | None:
        ...  # pragma: no cover - protocol


class Scheduler:
    """Base class for scheduling policies."""

    #: registry name; used for overhead modeling and reporting
    name = "base"
    #: reservation-capable policies may also target busy PEs (queued dispatch)
    uses_reservation = False
    #: policies that maintain incremental state (rank caches, in-flight
    #: tracking) set this True so the workload manager forwards dispatch/
    #: completion/PE-failure events to the notify_* hooks below.  The
    #: default False keeps the WM hot loops free of per-event calls for
    #: the stateless policies.
    wants_events = False

    def __init__(self, oracle: ExecutionTimeOracle | None = None) -> None:
        self.oracle = oracle
        # Per-archetype-node row caches over the current handler list (see
        # estimate_row/support_row).  Keyed by id(node); each entry pins the
        # node object so the id cannot be recycled.
        self._row_handlers: list[ResourceHandler] | None = None
        self._row_oracle: ExecutionTimeOracle | None = None
        self._est_rows: dict[int, tuple] = {}
        self._support_rows: dict[int, tuple] = {}
        self._est_fb = None
        self._support_fb = None
        # Compiled placement-loop kernels, bound at construction (None on
        # the pure core).  Subclass schedule() implementations branch on
        # this and hand the positional inner loop to C; results are
        # bit-identical by contract.
        self._kernels = core_select.native_kernels()

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        """Map ready tasks to PEs.  Must not mutate ``ready``."""
        raise NotImplementedError

    # -- incremental-state hooks (only called when wants_events is True) -----------

    def notify_dispatch(
        self, assignments: list[Assignment], now: float
    ) -> None:
        """Committed assignments left the ready list (after WM commit)."""

    def notify_completion(self, task: TaskInstance, now: float) -> None:
        """A task finished; called before a completed app is released, so
        ``task.app`` (and ``task.app.is_complete``) is still readable."""

    def notify_pe_failure(
        self, handler: ResourceHandler, now: float
    ) -> None:
        """A PE permanently failed; its in-flight work is about to be
        requeued by the WM."""

    # -- helpers for subclasses ----------------------------------------------------

    def _sync_row_cache(self, handlers: list[ResourceHandler]) -> None:
        if handlers is not self._row_handlers or self.oracle is not self._row_oracle:
            self._row_handlers = handlers
            self._row_oracle = self.oracle
            self._est_rows = {}
            self._support_rows = {}
            self._est_fb = None
            self._support_fb = None

    def estimate_row(
        self, task: TaskInstance, handlers: list[ResourceHandler]
    ) -> tuple:
        """Oracle estimates for ``task`` on every handler, positionally.

        All instances of an application share archetype ``TaskNode``
        objects and estimates depend only on the node, so the row is
        computed once per node and thereafter is a single dict lookup —
        this removes the oracle call from the O(ready × PEs) inner loops.
        """
        self._sync_row_cache(handlers)
        node = task.node
        hit = self._est_rows.get(id(node))
        if hit is not None:
            return hit[1]
        oracle = self.required_oracle()
        row = tuple(oracle.estimate(task, h) for h in handlers)
        self._est_rows[id(node)] = (node, row)
        return row

    def support_row(
        self, task, handlers: list[ResourceHandler]
    ) -> tuple:
        """Per-handler support flags for ``task``'s node, cached like
        :meth:`estimate_row` (no oracle required)."""
        self._sync_row_cache(handlers)
        node = task.node
        hit = self._support_rows.get(id(node))
        if hit is not None:
            return hit[1]
        row = tuple(node.supports_any(h.accepted_platforms) for h in handlers)
        self._support_rows[id(node)] = (node, row)
        return row

    def _est_fallback(self, handlers: list[ResourceHandler]):
        """Row-cache-miss closure handed to the compiled kernels.

        Cached alongside the row caches (callers must have run
        :meth:`_sync_row_cache` with the same ``handlers`` first, so the
        captured list is always the synced one)."""
        fb = self._est_fb
        if fb is None:
            fb = self._est_fb = (
                lambda task: self.estimate_row(task, handlers)
            )
        return fb

    def _support_fallback(self, handlers: list[ResourceHandler]):
        fb = self._support_fb
        if fb is None:
            fb = self._support_fb = (
                lambda task: self.support_row(task, handlers)
            )
        return fb

    @staticmethod
    def idle_handlers(handlers: list[ResourceHandler]) -> list[ResourceHandler]:
        """Snapshot of currently idle PEs (reads status under each lock,
        matching the paper's 'begin by checking availability' guidance).
        ``PEStatus.FAILED`` is terminal and distinct from IDLE, so failed
        PEs are excluded here automatically."""
        return [h for h in handlers if h.status is PEStatus.IDLE]

    @staticmethod
    def failed_mask(handlers: list[ResourceHandler]) -> list[bool] | None:
        """Positional failed-PE flags, or None when every PE is live.

        Custom policies that scan ``handlers`` directly (instead of using
        :meth:`idle_handlers`) should skip handlers flagged here under
        fault injection; the None fast path keeps the no-fault case free.
        Reads the lock-free ``failed`` mirror — the workload manager
        re-filters committed assignments, so a stale read is benign.
        """
        if not any(h.failed for h in handlers):
            return None
        return [h.failed for h in handlers]

    def required_oracle(self) -> ExecutionTimeOracle:
        if self.oracle is None:
            raise SchedulingError(
                f"policy {self.name!r} requires an execution-time oracle"
            )
        return self.oracle

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def validate_assignments(
    assignments: list[Assignment],
    ready,
    *,
    allow_busy: bool = False,
) -> None:
    """Reject structurally invalid policy output.

    ``ready`` is any container supporting membership by identity (the WM's
    ReadyList, or a plain list in tests).
    """
    seen_tasks: set[int] = set()
    seen_handlers: set[int] = set()
    for a in assignments:
        if id(a.task) in seen_tasks:
            raise SchedulingError(
                f"task {a.task.qualified_name()} assigned twice in one pass"
            )
        seen_tasks.add(id(a.task))
        if a.task not in ready:
            raise SchedulingError(
                f"task {a.task.qualified_name()} is not in the ready list"
            )
        if not a.task.supports_pe(a.handler):
            raise SchedulingError(
                f"task {a.task.qualified_name()} does not support PE type "
                f"{a.handler.type_name!r}"
            )
        if not allow_busy:
            if id(a.handler) in seen_handlers:
                raise SchedulingError(
                    f"PE {a.handler.name} assigned two tasks in one pass"
                )
            if a.handler.status is not PEStatus.IDLE:
                raise SchedulingError(
                    f"PE {a.handler.name} is not idle "
                    f"({a.handler.status.value})"
                )
        seen_handlers.add(id(a.handler))
