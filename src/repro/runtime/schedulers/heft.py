"""HEFT-style lookahead policy (framework extension, custom-policy demo).

Prioritizes ready tasks by *upward rank* — the longest expected path from
the task to its application's exit, using mean execution times across
supporting PE types — then places each, highest rank first, on the PE with
the earliest finish time.  This is the classic HEFT list heuristic adapted
to the framework's dynamic, idle-PE dispatch model, and doubles as the
documentation example for integrating a custom policy.
"""

from __future__ import annotations

from repro.appmodel.dag import TaskGraph
from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class HEFTScheduler(Scheduler):
    name = "heft"

    def __init__(self, oracle: ExecutionTimeOracle | None = None) -> None:
        super().__init__(oracle)
        self._rank_cache: dict[tuple[int, str], float] = {}

    # -- upward ranks ---------------------------------------------------------------

    def _mean_cost(self, graph: TaskGraph, node_name: str,
                   handlers: list[ResourceHandler]) -> float:
        oracle = self.required_oracle()
        node = graph.nodes[node_name]
        costs = []
        for h in handlers:
            if node.supports_any(h.accepted_platforms):
                # Build a probe estimate via any task of this node: the
                # oracle keys on (node, pe type) information only.
                costs.append(self._probe_estimate(node_name, graph, h))
        return sum(costs) / len(costs) if costs else 0.0

    def _probe_estimate(self, node_name: str, graph: TaskGraph,
                        handler: ResourceHandler) -> float:
        # The oracle accepts TaskInstance; create a transient probe bound to
        # the archetype node (no app state is touched).
        probe = _ProbeTask(graph, node_name)
        est = self.required_oracle().estimate(probe, handler)  # type: ignore[arg-type]
        return est if est is not None else 0.0

    def _ranks(self, graph: TaskGraph,
               handlers: list[ResourceHandler]) -> dict[str, float]:
        key = (id(graph), ",".join(sorted({h.type_name for h in handlers})))
        cached = self._rank_cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        ranks = graph.upward_rank_lengths(
            lambda n: self._mean_cost(graph, n, handlers)
        )
        self._rank_cache[key] = ranks  # type: ignore[assignment]
        return ranks

    # -- scheduling -------------------------------------------------------------------

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        prioritized = sorted(
            ready,
            key=lambda t: -self._ranks(t.app.graph, handlers)[t.name],
        )
        kern = self._kernels
        if kern is not None:
            # Priority sort above, prologue + placement loop in C (EFT's).
            self._sync_row_cache(handlers)
            pairs = kern.eft_pass(
                prioritized, self._est_rows, self._est_fallback(handlers),
                handlers, now,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        avail: list[float] = []
        idle_now: list[bool] = []
        idle_remaining = 0
        for h in handlers:
            if h.failed:
                # As in EFT: inf availability keeps failed PEs from ever
                # winning without touching the inner loop.
                idle_now.append(False)
                avail.append(float("inf"))
            elif h.status is PEStatus.IDLE:
                idle_now.append(True)
                avail.append(now)
                idle_remaining += 1
            else:
                idle_now.append(False)
                free = h.estimated_free_time
                avail.append(free if free > now else now)
        dispatched = [False] * len(handlers)
        assignments: list[Assignment] = []
        estimate_row = self.estimate_row
        inf = float("inf")
        for task in prioritized:
            # As in EFT: bookings after the last idle PE is taken have no
            # observable effect on this pass.
            if idle_remaining == 0:
                break
            row = estimate_row(task, handlers)
            best_i = -1
            best_finish = inf
            for i, est in enumerate(row):
                if est is None:
                    continue
                finish = avail[i] + est
                if finish < best_finish:
                    best_finish = finish
                    best_i = i
            if best_i < 0:
                continue
            avail[best_i] = best_finish
            if idle_now[best_i] and not dispatched[best_i]:
                dispatched[best_i] = True
                idle_remaining -= 1
                assignments.append(Assignment(task, handlers[best_i]))
        return assignments


class _ProbeTask:
    """Minimal TaskInstance stand-in for archetype-level rank estimates."""

    __slots__ = ("node", "name")

    def __init__(self, graph: TaskGraph, node_name: str) -> None:
        self.node = graph.nodes[node_name]
        self.name = node_name

    def supports(self, platform: str) -> bool:
        return self.node.supports(platform)
