"""Critical-path rank policy with an incrementally maintained rank cache.

``cprank`` prioritizes ready tasks by *upward rank* — the longest expected
path of remaining work from a task to its application's exit, using mean
execution times across the **live** (non-failed) PEs — then places them,
highest rank first, with the same earliest-finish-time loop as EFT/HEFT.

Unlike :class:`~repro.runtime.schedulers.heft.HEFTScheduler` (which keys a
static archetype-level rank table and recomputes nothing), the rank cache
here is keyed **per application instance** and maintained incrementally
through the workload-manager event hooks rather than recomputed per pass:

* **dispatch** prunes the dispatched node's entry (it left the ready list;
  no live node's rank depends on it — a node's rank only reads its
  *successors*, and every successor of a non-complete node is itself
  non-complete, hence never dispatched);
* **completion** prunes the node and evicts the whole instance entry when
  the app completes/degrades, which is what keeps memory O(in-flight
  apps) in open-loop streaming runs;
* **PE failure** seeds a dirty set with every node whose platform list
  intersects the dead PE (their live-mean costs changed — and any task
  orphaned on that PE, whose entry must be rebuilt for requeue), then
  propagates dirtiness along reverse edges: walking the reversed
  topological order, a node whose recomputed rank changed marks its
  predecessors dirty.  Only dirty nodes are recomputed.

Rank values are pure-Python floats computed with a fixed expression, so
the incremental cache is exactly (float-for-float) equal to a full
recomputation over the remaining DAG — ``tests`` enforce this with an
oracle comparison across dispatch/failure sequences — and the placement
loop reuses the compiled ``eft_pass`` kernel when available, so
``--core compiled`` works without any ``_coreext`` change.
"""

from __future__ import annotations

from repro.appmodel.dag import TaskGraph
from repro.appmodel.instance import ApplicationInstance, TaskInstance, TaskState
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler
from repro.runtime.schedulers.heft import _ProbeTask


class CPRankScheduler(Scheduler):
    name = "cprank"
    wants_events = True

    def __init__(self, oracle: ExecutionTimeOracle | None = None) -> None:
        super().__init__(oracle)
        #: id(app) -> (app, {node_name: upward rank}); the app reference
        #: pins the instance so the id cannot be recycled while cached
        self._ranks: dict[int, tuple[ApplicationInstance, dict[str, float]]] = {}
        #: (id(graph), id(handlers), failed-index signature) ->
        #: (graph, {node_name: mean live cost})
        self._costs: dict[tuple, tuple[TaskGraph, dict[str, float]]] = {}

    # -- live mean costs ------------------------------------------------------------

    def _live_costs(
        self, graph: TaskGraph, handlers: list[ResourceHandler]
    ) -> dict[str, float]:
        """Archetype-level mean execution cost over live PEs only.

        Keyed by the failed-PE signature so a failure lazily refreshes the
        table; a handful of archetypes x failure states keeps this tiny.
        """
        failed = self.failed_mask(handlers)
        sig = (id(graph), id(handlers)) + (
            () if failed is None
            else tuple(i for i, f in enumerate(failed) if f)
        )
        hit = self._costs.get(sig)
        if hit is not None:
            return hit[1]
        costs: dict[str, float] = {}
        for name in graph.topological_order():
            row = self.estimate_row(_ProbeTask(graph, name), handlers)
            total = 0.0
            n = 0
            for i, est in enumerate(row):
                if est is None or (failed is not None and failed[i]):
                    continue
                total += est
                n += 1
            costs[name] = total / n if n else 0.0
        self._costs[sig] = (graph, costs)
        return costs

    # -- the per-instance rank cache -------------------------------------------------

    @staticmethod
    def _node_rank(
        node, costs: dict[str, float], ranks: dict[str, float]
    ) -> float:
        # The one rank expression, shared by build/repair/lazy paths so
        # incremental values stay float-identical to a full recompute.
        return costs[node.name] + max(
            (ranks[s] for s in node.successors if s in ranks), default=0.0
        )

    def _build(
        self, app: ApplicationInstance, handlers: list[ResourceHandler]
    ) -> tuple[ApplicationInstance, dict[str, float]]:
        graph = app.graph
        costs = self._live_costs(graph, handlers)
        tasks = app.tasks
        ranks: dict[str, float] = {}
        for name in reversed(graph.topological_order()):
            if tasks[name].state is TaskState.COMPLETE:
                continue
            ranks[name] = self._node_rank(graph.nodes[name], costs, ranks)
        entry = (app, ranks)
        self._ranks[id(app)] = entry
        return entry

    def _rank_of(
        self, task: TaskInstance, handlers: list[ResourceHandler]
    ) -> float:
        app = task.app
        entry = self._ranks.get(id(app))
        if entry is None:
            entry = self._build(app, handlers)
        ranks = entry[1]
        rank = ranks.get(task.name)
        if rank is None:
            # Requeued after its entry was pruned at dispatch (transient
            # retries exhausted on a live PE): repair the single node.  Its
            # successors are all non-complete and never dispatched, so
            # their entries are present.
            costs = self._live_costs(app.graph, handlers)
            rank = ranks[task.name] = self._node_rank(
                app.graph.nodes[task.name], costs, ranks
            )
        return rank

    # -- WM event hooks ---------------------------------------------------------------

    def notify_dispatch(
        self, assignments: list[Assignment], now: float
    ) -> None:
        for a in assignments:
            entry = self._ranks.get(id(a.task.app))
            if entry is not None:
                entry[1].pop(a.task.name, None)

    def notify_completion(self, task: TaskInstance, now: float) -> None:
        app = task.app
        entry = self._ranks.get(id(app))
        if entry is None:
            return
        if app.is_complete or app.degraded or app.dropped:
            del self._ranks[id(app)]
            return
        entry[1].pop(task.name, None)

    def notify_pe_failure(
        self, handler: ResourceHandler, now: float
    ) -> None:
        dead = handler.accepted_platforms
        for key in list(self._ranks):
            app, ranks = self._ranks[key]
            if app.is_complete or app.degraded or app.dropped:
                del self._ranks[key]
                continue
            self._repair(app, ranks, dead)

    def _repair(
        self,
        app: ApplicationInstance,
        ranks: dict[str, float],
        dead_platforms: tuple[str, ...],
    ) -> None:
        """Dirty-set repair after a PE failure.

        Seeds: every non-complete node that could run on the dead PE —
        their live-mean costs changed, and any task orphaned there (which
        by construction supports its platforms) gets its pruned entry
        rebuilt for requeue.  Walking the reversed topological order keeps
        successors final before their predecessors are recomputed;
        predecessors of a *changed* node come later in that walk, so
        marking them dirty mid-iteration is sound.
        """
        graph = app.graph
        tasks = app.tasks
        dirty: set[str] = set()
        for name, node in graph.nodes.items():
            if tasks[name].state is TaskState.COMPLETE:
                continue
            if node.supports_any(dead_platforms):
                dirty.add(name)
        if not dirty:
            return
        costs = self._live_costs(graph, self._row_handlers or [])
        for name in reversed(graph.topological_order()):
            if name not in dirty:
                continue
            if tasks[name].state is TaskState.COMPLETE:
                continue
            node = graph.nodes[name]
            new = self._node_rank(node, costs, ranks)
            if ranks.get(name) != new:
                ranks[name] = new
                dirty.update(p for p in node.predecessors if p in ranks)

    # -- scheduling -------------------------------------------------------------------

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        self._sync_row_cache(handlers)
        prioritized = sorted(
            ready, key=lambda t: -self._rank_of(t, handlers)
        )
        kern = self._kernels
        if kern is not None:
            # Priority sort above, prologue + placement loop in C (EFT's).
            pairs = kern.eft_pass(
                prioritized, self._est_rows, self._est_fallback(handlers),
                handlers, now,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        avail: list[float] = []
        idle_now: list[bool] = []
        idle_remaining = 0
        for h in handlers:
            if h.failed:
                # As in EFT: inf availability keeps failed PEs from ever
                # winning without touching the inner loop.
                idle_now.append(False)
                avail.append(float("inf"))
            elif h.status is PEStatus.IDLE:
                idle_now.append(True)
                avail.append(now)
                idle_remaining += 1
            else:
                idle_now.append(False)
                free = h.estimated_free_time
                avail.append(free if free > now else now)
        dispatched = [False] * len(handlers)
        assignments: list[Assignment] = []
        estimate_row = self.estimate_row
        inf = float("inf")
        for task in prioritized:
            if idle_remaining == 0:
                break
            row = estimate_row(task, handlers)
            best_i = -1
            best_finish = inf
            for i, est in enumerate(row):
                if est is None:
                    continue
                finish = avail[i] + est
                if finish < best_finish:
                    best_finish = finish
                    best_i = i
            if best_i < 0:
                continue
            avail[best_i] = best_finish
            if idle_now[best_i] and not dispatched[best_i]:
                dispatched[best_i] = True
                idle_remaining -= 1
                assignments.append(Assignment(task, handlers[best_i]))
        return assignments
