"""RANDOM — uniform choice among idle supporting PEs (baseline policy)."""

from __future__ import annotations

import numpy as np

from repro.appmodel.instance import TaskInstance
from repro.common.rng import default_rng
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class RandomScheduler(Scheduler):
    name = "random"

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(oracle)
        self.rng = rng if rng is not None else default_rng()

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        # FAILED PEs are never IDLE, so they cannot be drawn.
        available = [
            (i, h) for i, h in enumerate(handlers) if h.status is PEStatus.IDLE
        ]
        assignments: list[Assignment] = []
        support_row = self.support_row
        kern = self._kernels
        if kern is not None:
            # Candidate scan in C; the RNG draw stays in Python so the
            # draw sequence is identical on both cores.
            indices = [i for i, _h in available]
            for task in ready:
                if not available:
                    break
                row = support_row(task, handlers)
                candidates = kern.supported_positions(row, indices)
                if not candidates:
                    continue
                pick = candidates[int(self.rng.integers(len(candidates)))]
                indices.pop(pick)
                assignments.append(Assignment(task, available.pop(pick)[1]))
            return assignments
        for task in ready:
            if not available:
                break
            row = support_row(task, handlers)
            # Candidate positions within ``available`` match the unoptimized
            # enumeration exactly, so the RNG draw sequence is unchanged.
            candidates = [
                pos for pos, (i, _h) in enumerate(available) if row[i]
            ]
            if not candidates:
                continue
            pick = candidates[int(self.rng.integers(len(candidates)))]
            assignments.append(Assignment(task, available.pop(pick)[1]))
        return assignments
