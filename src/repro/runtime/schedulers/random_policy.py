"""RANDOM — uniform choice among idle supporting PEs (baseline policy)."""

from __future__ import annotations

import numpy as np

from repro.appmodel.instance import TaskInstance
from repro.common.rng import default_rng
from repro.runtime.handler import ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class RandomScheduler(Scheduler):
    name = "random"

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(oracle)
        self.rng = rng if rng is not None else default_rng()

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        available = self.idle_handlers(handlers)
        assignments: list[Assignment] = []
        for task in ready:
            if not available:
                break
            candidates = [
                i for i, h in enumerate(available) if task.supports_pe(h)
            ]
            if not candidates:
                continue
            pick = candidates[int(self.rng.integers(len(candidates)))]
            assignments.append(Assignment(task, available.pop(pick)))
        return assignments
