"""Scheduling-policy library (paper Sec. II-C).

Built-in policies: minimum execution time (MET), first ready-first start
(FRFS), earliest finish time (EFT), and RANDOM, plus the paper's
future-work extensions — reservation-queue dispatch and a HEFT-style
lookahead policy — and a power-aware MET variant.

New policies integrate the way the paper describes for ``scheduler.cpp``:
implement the :class:`Scheduler` interface (it receives the ready task
queue and the resource-handler objects) and register a constructor with
:func:`register_policy`; the dispatch table in :func:`make_scheduler` is
the Python analog of adding a case to ``performScheduling``.
"""

from repro.runtime.schedulers.base import (
    Assignment,
    ExecutionTimeOracle,
    Scheduler,
)
from repro.runtime.schedulers.frfs import FRFSScheduler
from repro.runtime.schedulers.met import METScheduler, PowerAwareMETScheduler
from repro.runtime.schedulers.eft import EFTScheduler
from repro.runtime.schedulers.random_policy import RandomScheduler
from repro.runtime.schedulers.heft import HEFTScheduler
from repro.runtime.schedulers.registry import (
    available_policies,
    make_scheduler,
    register_policy,
)

__all__ = [
    "Assignment",
    "ExecutionTimeOracle",
    "Scheduler",
    "FRFSScheduler",
    "METScheduler",
    "PowerAwareMETScheduler",
    "EFTScheduler",
    "RandomScheduler",
    "HEFTScheduler",
    "available_policies",
    "make_scheduler",
    "register_policy",
]
