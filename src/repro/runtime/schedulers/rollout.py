"""Rollout policy: dispatch-now vs defer, decided by bounded lookahead.

Per dispatch decision the policy evaluates its top-k candidate
``(task, PE)`` assignments by running a short forward simulation of the
virtual engine's modeled future — in-flight tasks finish at their oracle
estimates and release successors, ready tasks are list-scheduled EFT-style
onto positional PE availability — and commits the candidate whose
simulated horizon makespan is best.  A *defer* rollout (dispatch nothing
until the next in-flight completion) competes against the candidates, so
the policy can deliberately hold a PE idle for a soon-to-be-released
critical task; ties go to dispatching, which keeps the policy
work-conserving.

The simulation is plain Python over oracle floats (no RNG, no engine
state), so results are deterministic and bit-identical under both DES
cores — ``--core compiled`` simply runs the same pure rollout loop, which
is the documented fallback for policies without a C port.  Failed PEs
carry ``inf`` availability (the ``failed_mask`` contract), so neither the
candidates nor the rollouts ever place work on them.

Knobs (constructor arguments; the registry entry uses the defaults,
custom values go through ``register_policy``):

* ``top_k`` — candidate assignments evaluated per committed dispatch;
* ``horizon_tasks`` — bound on simulated task completions per rollout;
* ``horizon_us`` — optional modeled-time bound: simulated work starting
  past ``now + horizon_us`` is not booked;
* ``scan_limit`` — ready-prefix scanned for candidates, so open-loop
  backlogs cannot make a pass O(ready x rollouts).

In-flight work is tracked through the WM event hooks (dispatch adds an
entry with its oracle finish estimate, completion removes it, PE failure
drops the dead PE's entries), which is what gives the defer rollout its
release-time information.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class RolloutScheduler(Scheduler):
    name = "rollout"
    wants_events = True

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        *,
        top_k: int = 3,
        horizon_tasks: int = 24,
        horizon_us: float | None = None,
        scan_limit: int = 64,
    ) -> None:
        super().__init__(oracle)
        self.top_k = max(1, int(top_k))
        self.horizon_tasks = max(1, int(horizon_tasks))
        self.horizon_us = horizon_us
        self.scan_limit = max(1, int(scan_limit))
        #: id(task) -> (task, handler, estimated finish time)
        self._inflight: dict[
            int, tuple[TaskInstance, ResourceHandler, float]
        ] = {}

    # -- WM event hooks ---------------------------------------------------------------

    def notify_dispatch(
        self, assignments: list[Assignment], now: float
    ) -> None:
        oracle = self.oracle
        if oracle is None:
            return
        for a in assignments:
            est = oracle.estimate(a.task, a.handler)
            if est is not None:
                self._inflight[id(a.task)] = (a.task, a.handler, now + est)

    def notify_completion(self, task: TaskInstance, now: float) -> None:
        self._inflight.pop(id(task), None)

    def notify_pe_failure(
        self, handler: ResourceHandler, now: float
    ) -> None:
        # Orphaned tasks are requeued by the WM; they re-enter via a
        # later dispatch, so their stale entries must go now.
        for key, (_t, h, _f) in list(self._inflight.items()):
            if h is handler:
                del self._inflight[key]

    # -- the forward simulation --------------------------------------------------------

    def _rollout(
        self,
        forced: tuple[TaskInstance, int] | None,
        pool: list[tuple[int, TaskInstance]],
        avail: list[float],
        handlers: list[ResourceHandler],
        now: float,
    ) -> tuple[float, float]:
        """Score one future: ``(horizon makespan, sum of finish times)``.

        ``forced`` books one assignment immediately; ``None`` is the defer
        rollout — every ready task's release is pushed past the earliest
        in-flight completion, modeling "leave the PEs idle one event".
        List scheduling then proceeds greedily by earliest finish, with
        successors released as simulated predecessors complete.
        """
        sim_avail = avail[:]
        estimate_row = self.estimate_row
        # Simulated release times and outstanding-predecessor counts.
        release: dict[int, float] = {}
        pred_left: dict[int, int] = {}
        sim_pool: list[tuple[int, TaskInstance]] = []
        makespan = now
        finish_sum = 0.0
        steps = 0
        limit = self.horizon_tasks
        deadline = (
            now + self.horizon_us if self.horizon_us is not None else None
        )

        def complete(task: TaskInstance, finish: float, order: int) -> None:
            # Release simulated successors of a (simulated) completion.
            app = task.app
            for succ_name in task.node.successors:
                succ = app.tasks.get(succ_name)
                if succ is None:
                    continue
                left = pred_left.get(id(succ))
                if left is None:
                    left = succ.unfinished_preds
                left -= 1
                pred_left[id(succ)] = left
                when = release.get(id(succ), now)
                if finish > when:
                    release[id(succ)] = when = finish
                if left == 0:
                    sim_pool.append((order, succ))

        # In-flight tasks complete at their oracle estimates and release
        # successors; the defer rollout additionally gates every ready
        # task behind the earliest such completion.
        next_event = None
        order = 1 << 20  # successors sort after the scanned ready prefix
        # Insertion order == dispatch order: deterministic across runs and
        # cores (never sort by id(), which is address-dependent).
        for task, handler, finish in list(self._inflight.values()):
            if handler.failed:
                continue
            finish = finish if finish > now else now
            if next_event is None or finish < next_event:
                next_event = finish
            complete(task, finish, order)
            order += 1

        for idx, task in pool:
            release[id(task)] = (
                next_event if forced is None and next_event is not None
                else now
            )
            sim_pool.append((idx, task))

        if forced is not None:
            task, i = forced
            row = estimate_row(task, handlers)
            start = sim_avail[i] if sim_avail[i] > now else now
            finish = start + row[i]
            sim_avail[i] = finish
            makespan = finish
            finish_sum += finish
            steps += 1
            complete(task, finish, order)
            order += 1

        inf = float("inf")
        while sim_pool and steps < limit:
            best = -1
            best_i = -1
            best_finish = inf
            best_key = None
            for j, (idx, task) in enumerate(sim_pool):
                row = estimate_row(task, handlers)
                rel = release.get(id(task), now)
                for i, est in enumerate(row):
                    if est is None:
                        continue
                    start = sim_avail[i] if sim_avail[i] > rel else rel
                    finish = start + est
                    key = (finish, idx, i)
                    if best_key is None or key < best_key:
                        best_key = key
                        best = j
                        best_i = i
                        best_finish = finish
            if best < 0:
                break
            idx, task = sim_pool.pop(best)
            if deadline is not None and best_finish - _row_est(
                estimate_row(task, handlers), best_i
            ) > deadline:
                # Starts beyond the horizon: the rollout stops caring.
                continue
            sim_avail[best_i] = best_finish
            if best_finish > makespan:
                makespan = best_finish
            finish_sum += best_finish
            steps += 1
            complete(task, best_finish, idx)
        return (makespan, finish_sum)

    # -- scheduling -------------------------------------------------------------------

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        self.required_oracle()
        self._sync_row_cache(handlers)
        idle: list[bool] = []
        avail: list[float] = []
        idle_remaining = 0
        for h in handlers:
            if h.failed:
                idle.append(False)
                avail.append(float("inf"))
            elif h.status is PEStatus.IDLE:
                idle.append(True)
                avail.append(now)
                idle_remaining += 1
            else:
                idle.append(False)
                free = h.estimated_free_time
                avail.append(free if free > now else now)
        if idle_remaining == 0:
            return []

        # Bounded FIFO prefix of the ready list (EDF composition pre-sorts
        # it, so the prefix is the deadline-critical head under +edf).
        scanned: list[tuple[int, TaskInstance]] = []
        for idx, task in enumerate(ready):
            if idx >= self.scan_limit:
                break
            scanned.append((idx, task))

        estimate_row = self.estimate_row
        assignments: list[Assignment] = []
        taken = [False] * len(handlers)
        remaining = scanned
        while idle_remaining > 0 and remaining:
            # Top-k candidates by immediate EFT finish (one best PE per
            # task), over idle not-yet-taken PEs only.
            cands: list[tuple[float, int, TaskInstance, int]] = []
            for idx, task in remaining:
                row = estimate_row(task, handlers)
                best_i = -1
                best_finish = float("inf")
                for i, est in enumerate(row):
                    if est is None or not idle[i] or taken[i]:
                        continue
                    finish = now + est
                    if finish < best_finish:
                        best_finish = finish
                        best_i = i
                if best_i >= 0:
                    cands.append((best_finish, idx, task, best_i))
            if not cands:
                break
            cands.sort(key=lambda c: (c[0], c[1]))
            cands = cands[: self.top_k]

            pool_base = remaining
            best_choice = None
            best_score = None
            for _finish, idx, task, i in cands:
                pool = [(j, t) for j, t in pool_base if t is not task]
                score = self._rollout((task, i), pool, avail, handlers, now)
                key = (score, idx, i)
                if best_score is None or key < best_score:
                    best_score = key
                    best_choice = (idx, task, i)
            if self._inflight:
                defer = self._rollout(
                    None, pool_base, avail, handlers, now
                )
                # Strictly better only: ties dispatch (work-conserving).
                if best_score is None or defer < best_score[0]:
                    break
            if best_choice is None:
                break
            idx, task, i = best_choice
            assignments.append(Assignment(task, handlers[i]))
            taken[i] = True
            idle_remaining -= 1
            row = estimate_row(task, handlers)
            start = avail[i] if avail[i] > now else now
            avail[i] = start + row[i]
            # Committed work is in flight for the remaining rollouts of
            # this pass: later candidates see its successor releases.
            self._inflight[id(task)] = (task, handlers[i], avail[i])
            remaining = [(j, t) for j, t in remaining if t is not task]
        # Entries added above are provisional; the WM commit re-adds the
        # real ones via notify_dispatch, and any the WM filtered out
        # (racing failure) must not linger.
        for a in assignments:
            self._inflight.pop(id(a.task), None)
        return assignments


def _row_est(row: tuple, i: int) -> float:
    est = row[i]
    return est if est is not None else 0.0
