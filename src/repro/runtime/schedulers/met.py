"""Minimum execution time (MET) — O(n) in ready-queue length.

Every ready task is examined (hence the linear complexity the paper
reports); each is placed on the idle supporting PE with the smallest
expected execution time.  Ties break toward the lower PE id for
determinism.

:class:`PowerAwareMETScheduler` is the framework-extension hook for the
paper's future-work "power aware heuristics": it minimizes expected energy
(time × active power) instead of time, steering work toward efficient PEs
such as LITTLE cores when their slowdown is smaller than their power
advantage.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class METScheduler(Scheduler):
    name = "met"

    def _cost(self, task: TaskInstance, handler: ResourceHandler, est: float) -> float:
        return est

    def _cost_multipliers(self, available) -> list[float] | None:
        """Per-pool cost multipliers for the compiled kernel (None = raw
        estimates, the plain-MET cost)."""
        return None

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        # (position-in-handlers, handler) pairs so cached estimate rows can
        # be indexed positionally as the idle pool shrinks.  FAILED PEs are
        # never IDLE, so the pool excludes them by construction.
        available = [
            (i, h) for i, h in enumerate(handlers) if h.status is PEStatus.IDLE
        ]
        if not available:
            return []
        kern = self._kernels
        if kern is not None:
            self._sync_row_cache(handlers)
            pairs = kern.met_pass(
                ready, self._est_rows, self._est_fallback(handlers),
                [i for i, _h in available],
                [h.pe_id for _i, h in available],
                self._cost_multipliers(available),
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        estimate_row = self.estimate_row
        cost = self._cost
        assignments: list[Assignment] = []
        for task in ready:
            if not available:
                break
            row = estimate_row(task, handlers)
            best: tuple[float, int] | None = None
            best_pos = -1
            for pos, (i, handler) in enumerate(available):
                est = row[i]
                if est is None:
                    continue
                key = (cost(task, handler, est), handler.pe_id)
                if best is None or key < best:
                    best = key
                    best_pos = pos
            if best_pos >= 0:
                _i, handler = available.pop(best_pos)
                assignments.append(Assignment(task, handler))
        return assignments


class PowerAwareMETScheduler(METScheduler):
    name = "met_power"

    def _cost(self, task: TaskInstance, handler: ResourceHandler, est: float) -> float:
        return est * handler.pe.pe_type.active_power_w

    def _cost_multipliers(self, available) -> list[float] | None:
        return [h.pe.pe_type.active_power_w for _i, h in available]
