"""Minimum execution time (MET) — O(n) in ready-queue length.

Every ready task is examined (hence the linear complexity the paper
reports); each is placed on the idle supporting PE with the smallest
expected execution time.  Ties break toward the lower PE id for
determinism.

:class:`PowerAwareMETScheduler` is the framework-extension hook for the
paper's future-work "power aware heuristics": it minimizes expected energy
(time × active power) instead of time, steering work toward efficient PEs
such as LITTLE cores when their slowdown is smaller than their power
advantage.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class METScheduler(Scheduler):
    name = "met"

    def _cost(self, task: TaskInstance, handler: ResourceHandler, est: float) -> float:
        return est

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        idle = self.idle_handlers(handlers)
        if not idle:
            return []
        oracle = self.required_oracle()
        available = list(idle)
        assignments: list[Assignment] = []
        for task in ready:
            if not available:
                break
            best: tuple[float, int] | None = None
            best_idx = -1
            for i, handler in enumerate(available):
                est = oracle.estimate(task, handler)
                if est is None:
                    continue
                key = (self._cost(task, handler, est), handler.pe_id)
                if best is None or key < best:
                    best = key
                    best_idx = i
            if best_idx >= 0:
                handler = available.pop(best_idx)
                assignments.append(Assignment(task, handler))
        return assignments


class PowerAwareMETScheduler(METScheduler):
    name = "met_power"

    def _cost(self, task: TaskInstance, handler: ResourceHandler, est: float) -> float:
        return est * handler.pe.pe_type.active_power_w
