"""Policy registry — the Python analog of ``performScheduling``'s dispatch.

Users select a built-in policy by name at run time or register a custom
constructor; :func:`make_scheduler` builds the policy with the emulation's
execution-time oracle, mirroring the paper's instruction to "define a new
policy in scheduler.cpp and add a dispatch call in performScheduling".
"""

from __future__ import annotations

from collections.abc import Callable

from repro.common.errors import SchedulingError
from repro.runtime.schedulers.base import ExecutionTimeOracle, Scheduler
from repro.runtime.schedulers.cprank import CPRankScheduler
from repro.runtime.schedulers.eft import EFTScheduler
from repro.runtime.schedulers.frfs import FRFSScheduler
from repro.runtime.schedulers.heft import HEFTScheduler
from repro.runtime.schedulers.met import METScheduler, PowerAwareMETScheduler
from repro.runtime.schedulers.random_policy import RandomScheduler
from repro.runtime.schedulers.reservation import (
    ReservationEFTScheduler,
    ReservationFRFSScheduler,
)
from repro.runtime.schedulers.rollout import RolloutScheduler

SchedulerFactory = Callable[[ExecutionTimeOracle | None], Scheduler]

_REGISTRY: dict[str, SchedulerFactory] = {
    "frfs": lambda oracle: FRFSScheduler(oracle),
    "met": lambda oracle: METScheduler(oracle),
    "eft": lambda oracle: EFTScheduler(oracle),
    "random": lambda oracle: RandomScheduler(oracle),
    "heft": lambda oracle: HEFTScheduler(oracle),
    "met_power": lambda oracle: PowerAwareMETScheduler(oracle),
    "frfs_reserve": lambda oracle: ReservationFRFSScheduler(oracle),
    "eft_reserve": lambda oracle: ReservationEFTScheduler(oracle),
    "cprank": lambda oracle: CPRankScheduler(oracle),
    "rollout": lambda oracle: RolloutScheduler(oracle),
}


def available_policies() -> list[str]:
    """Names accepted by :func:`make_scheduler`."""
    return sorted(_REGISTRY)


def register_policy(name: str, factory: SchedulerFactory,
                    replace: bool = False) -> None:
    """Add a user-defined policy to the dispatch table."""
    if name in _REGISTRY and not replace:
        raise SchedulingError(
            f"policy {name!r} already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = factory


def make_scheduler(
    name: str, oracle: ExecutionTimeOracle | None = None
) -> Scheduler:
    """Instantiate a policy by registry name.

    A ``+edf`` suffix (e.g. ``frfs+edf``) wraps the base policy in the
    deadline-aware EDF tie-break from :mod:`repro.runtime.qos`.
    """
    base_name, _, variant = name.partition("+")
    try:
        factory = _REGISTRY[base_name]
    except KeyError:
        raise SchedulingError(
            f"unknown scheduling policy {name!r} "
            f"(available: {available_policies()})"
        ) from None
    scheduler = factory(oracle)
    if not variant:
        return scheduler
    if variant == "edf":
        from repro.runtime.qos import EDFScheduler

        return EDFScheduler(scheduler)
    raise SchedulingError(
        f"unknown policy variant {variant!r} in {name!r} (only '+edf')"
    )
