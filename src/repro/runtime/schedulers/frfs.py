"""First ready-first start (FRFS) — the paper's reference simple policy.

Tasks are considered strictly in ready order; each is placed on the first
idle PE that supports it.  One pass over the idle-PE list per dispatched
task keeps the policy's complexity proportional to the number of PEs in
the emulated SoC (the paper measures a flat ≈2.5 µs at 5 PEs), independent
of ready-queue length — the property that makes FRFS win Fig. 10.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class FRFSScheduler(Scheduler):
    name = "frfs"

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        idle = self.idle_handlers(handlers)
        if not idle:
            return []
        assignments: list[Assignment] = []
        taken = [False] * len(idle)
        remaining = len(idle)
        for task in ready:
            if remaining == 0:
                break
            for i, handler in enumerate(idle):
                if taken[i]:
                    continue
                if task.supports_pe(handler):
                    assignments.append(Assignment(task, handler))
                    taken[i] = True
                    remaining -= 1
                    break
        return assignments
