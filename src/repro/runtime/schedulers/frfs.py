"""First ready-first start (FRFS) — the paper's reference simple policy.

Tasks are considered strictly in ready order; each is placed on the first
idle PE that supports it.  One pass over the idle-PE list per dispatched
task keeps the policy's complexity proportional to the number of PEs in
the emulated SoC (the paper measures a flat ≈2.5 µs at 5 PEs), independent
of ready-queue length — the property that makes FRFS win Fig. 10.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class FRFSScheduler(Scheduler):
    name = "frfs"

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        kern = self._kernels
        if kern is not None:
            # Idle-pool scan and placement both in C; reads handler.status
            # exactly as the pure pool construction below does.
            self._sync_row_cache(handlers)
            pairs = kern.frfs_pass(
                ready, self._support_rows, self._support_fallback(handlers),
                handlers,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        # (position-in-handlers, handler) pairs; removing a dispatched PE
        # keeps the remaining idle PEs in original order, so "first idle
        # supporting PE" is unchanged.  FAILED is terminal and never IDLE,
        # so failed PEs are excluded by construction.
        idle = [
            (i, h) for i, h in enumerate(handlers) if h.status is PEStatus.IDLE
        ]
        if not idle:
            return []
        assignments: list[Assignment] = []
        support_row = self.support_row
        for task in ready:
            if not idle:
                break
            row = support_row(task, handlers)
            for pos, (i, handler) in enumerate(idle):
                if row[i]:
                    assignments.append(Assignment(task, handler))
                    del idle[pos]
                    break
        return assignments
