"""Earliest finish time (EFT) — O(n²), the paper's heavyweight policy.

For each ready task the policy evaluates the finish time on *every* PE —
idle or busy — using per-PE availability estimates that it updates as it
tentatively books tasks within the pass (so the booking of earlier ready
tasks delays the estimates seen by later ones; this cross-task interaction
is what makes the policy quadratic in ready-queue length).  Only decisions
that landed on an actually-idle PE turn into dispatches; bookings onto
busy PEs merely shape subsequent estimates, as in list-scheduling EFT.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class EFTScheduler(Scheduler):
    name = "eft"

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        kern = self._kernels
        if kern is not None:
            # The availability prologue and placement loop both run in C;
            # the kernel reads handler.failed/.status/.estimated_free_time
            # exactly as the pure loop below does.
            self._sync_row_cache(handlers)
            pairs = kern.eft_pass(
                ready, self._est_rows, self._est_fallback(handlers),
                handlers, now,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        # Availability estimates, positional over ``handlers``: idle PEs are
        # free now; busy PEs free at their tracked estimate (never in the
        # past).  Positional arrays + cached estimate rows keep the
        # quadratic inner loop allocation- and lookup-free.
        avail: list[float] = []
        idle_now: list[bool] = []
        idle_remaining = 0
        for h in handlers:
            if h.failed:
                # Failed PEs never win the finish-time comparison (inf + est
                # is never < best), so the inner loop needs no extra branch.
                idle_now.append(False)
                avail.append(float("inf"))
            elif h.status is PEStatus.IDLE:
                idle_now.append(True)
                avail.append(now)
                idle_remaining += 1
            else:
                idle_now.append(False)
                free = h.estimated_free_time
                avail.append(free if free > now else now)
        dispatched = [False] * len(handlers)
        assignments: list[Assignment] = []
        estimate_row = self.estimate_row
        inf = float("inf")
        for task in ready:
            # Once every idle PE has been dispatched, later bookings cannot
            # change any observable outcome of this pass — skip them.  (The
            # *modeled* overhead still charges the full O(n^2) scan.)
            if idle_remaining == 0:
                break
            row = estimate_row(task, handlers)
            best_i = -1
            best_finish = inf
            for i, est in enumerate(row):
                if est is None:
                    continue
                finish = avail[i] + est
                if finish < best_finish:
                    best_finish = finish
                    best_i = i
            if best_i < 0:
                continue
            # Book the task on the chosen PE either way; dispatch only if
            # the PE is genuinely idle and not already taken this pass.
            avail[best_i] = best_finish
            if idle_now[best_i] and not dispatched[best_i]:
                dispatched[best_i] = True
                idle_remaining -= 1
                assignments.append(Assignment(task, handlers[best_i]))
        return assignments
