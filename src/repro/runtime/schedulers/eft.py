"""Earliest finish time (EFT) — O(n²), the paper's heavyweight policy.

For each ready task the policy evaluates the finish time on *every* PE —
idle or busy — using per-PE availability estimates that it updates as it
tentatively books tasks within the pass (so the booking of earlier ready
tasks delays the estimates seen by later ones; this cross-task interaction
is what makes the policy quadratic in ready-queue length).  Only decisions
that landed on an actually-idle PE turn into dispatches; bookings onto
busy PEs merely shape subsequent estimates, as in list-scheduling EFT.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, Scheduler


class EFTScheduler(Scheduler):
    name = "eft"

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        oracle = self.required_oracle()
        # Availability estimates: idle PEs are free now; busy PEs free at
        # their tracked estimate (never in the past).
        avail: dict[int, float] = {}
        idle_now: dict[int, bool] = {}
        for h in handlers:
            is_idle = h.status is PEStatus.IDLE
            idle_now[h.pe_id] = is_idle
            avail[h.pe_id] = now if is_idle else max(h.estimated_free_time, now)
        dispatched: dict[int, bool] = {h.pe_id: False for h in handlers}
        idle_remaining = sum(1 for v in idle_now.values() if v)
        assignments: list[Assignment] = []
        for task in ready:
            # Once every idle PE has been dispatched, later bookings cannot
            # change any observable outcome of this pass — skip them.  (The
            # *modeled* overhead still charges the full O(n^2) scan.)
            if idle_remaining == 0:
                break
            best_handler: ResourceHandler | None = None
            best_finish = float("inf")
            for h in handlers:
                est = oracle.estimate(task, h)
                if est is None:
                    continue
                finish = avail[h.pe_id] + est
                if finish < best_finish:
                    best_finish = finish
                    best_handler = h
            if best_handler is None:
                continue
            # Book the task on the chosen PE either way; dispatch only if
            # the PE is genuinely idle and not already taken this pass.
            avail[best_handler.pe_id] = best_finish
            if idle_now[best_handler.pe_id] and not dispatched[best_handler.pe_id]:
                dispatched[best_handler.pe_id] = True
                idle_remaining -= 1
                assignments.append(Assignment(task, best_handler))
        return assignments
