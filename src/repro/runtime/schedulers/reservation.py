"""Reservation-queue scheduling — the paper's future-work extension.

"In the future, we will incorporate task reservation queues on each PE to
reduce the impact of the scheduling overhead" (Sec. III-C) and "expand our
framework to support abstractions like PE-level work queues to enable
lower-overhead task dispatch" (Sec. V).

With reservation enabled, the policy may book a ready task onto a *busy*
PE (up to ``queue_depth`` outstanding per PE); the resource manager pulls
its next task directly from its local queue on completion, so the PE never
idles across the workload manager's scheduling pass.  Placement follows
earliest-estimated-finish across each PE's existing bookings.

The ablation benchmark (benchmarks/test_ablation_reservation.py) compares
this against plain FRFS/EFT dispatch on the Fig. 10 workloads.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class ReservationEFTScheduler(Scheduler):
    name = "eft_reserve"
    uses_reservation = True

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        queue_depth: int = 4,
    ) -> None:
        super().__init__(oracle)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        avail: list[float] = []
        slots: list[int] = []
        open_slots = 0
        depth = self.queue_depth
        for h in handlers:
            if h.failed:
                # A failed PE accepts neither dispatch nor bookings.
                avail.append(float("inf"))
                free_slots = 0
            elif h.status is PEStatus.IDLE:
                avail.append(now)
                free_slots = depth
            else:
                free = h.estimated_free_time
                avail.append(free if free > now else now)
                free_slots = depth - 1 - len(h.reservation_queue)
                if free_slots < 0:
                    free_slots = 0
            slots.append(free_slots)
            open_slots += free_slots
        kern = self._kernels
        if kern is not None:
            self._sync_row_cache(handlers)
            pairs = kern.eft_reserve_pass(
                ready, self._est_rows, self._est_fallback(handlers),
                avail, slots, open_slots,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        assignments: list[Assignment] = []
        estimate_row = self.estimate_row
        inf = float("inf")
        for task in ready:
            if open_slots == 0:
                break
            row = estimate_row(task, handlers)
            best_i = -1
            best_finish = inf
            for i, est in enumerate(row):
                if est is None or slots[i] <= 0:
                    continue
                finish = avail[i] + est
                if finish < best_finish:
                    best_finish = finish
                    best_i = i
            if best_i < 0:
                continue
            avail[best_i] = best_finish
            slots[best_i] -= 1
            open_slots -= 1
            assignments.append(Assignment(task, handlers[best_i]))
        return assignments


class ReservationFRFSScheduler(Scheduler):
    """FRFS with reservation: FIFO tasks onto the least-loaded supporting PE."""

    name = "frfs_reserve"
    uses_reservation = True

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        queue_depth: int = 4,
    ) -> None:
        super().__init__(oracle)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        depth = self.queue_depth
        # ``depth`` is the exclusive load bound below, so a failed PE pinned
        # at ``depth`` can never be selected.
        load = [
            depth if h.failed
            else 0 if h.status is PEStatus.IDLE
            else 1 + len(h.reservation_queue)
            for h in handlers
        ]
        kern = self._kernels
        if kern is not None:
            self._sync_row_cache(handlers)
            pairs = kern.frfs_reserve_pass(
                ready, self._support_rows, self._support_fallback(handlers),
                load, depth,
            )
            return [Assignment(task, handlers[i]) for task, i in pairs]
        assignments: list[Assignment] = []
        support_row = self.support_row
        for task in ready:
            row = support_row(task, handlers)
            best_i = -1
            best_load = depth  # exclusive bound
            for i, pe_load in enumerate(load):
                if pe_load >= best_load:
                    continue
                if row[i]:
                    best_i = i
                    best_load = pe_load
                    if pe_load == 0:
                        break
            if best_i < 0:
                continue
            load[best_i] += 1
            assignments.append(Assignment(task, handlers[best_i]))
        return assignments
