"""Reservation-queue scheduling — the paper's future-work extension.

"In the future, we will incorporate task reservation queues on each PE to
reduce the impact of the scheduling overhead" (Sec. III-C) and "expand our
framework to support abstractions like PE-level work queues to enable
lower-overhead task dispatch" (Sec. V).

With reservation enabled, the policy may book a ready task onto a *busy*
PE (up to ``queue_depth`` outstanding per PE); the resource manager pulls
its next task directly from its local queue on completion, so the PE never
idles across the workload manager's scheduling pass.  Placement follows
earliest-estimated-finish across each PE's existing bookings.

The ablation benchmark (benchmarks/test_ablation_reservation.py) compares
this against plain FRFS/EFT dispatch on the Fig. 10 workloads.
"""

from __future__ import annotations

from repro.appmodel.instance import TaskInstance
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.schedulers.base import Assignment, ExecutionTimeOracle, Scheduler


class ReservationEFTScheduler(Scheduler):
    name = "eft_reserve"
    uses_reservation = True

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        queue_depth: int = 4,
    ) -> None:
        super().__init__(oracle)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        oracle = self.required_oracle()
        avail: dict[int, float] = {}
        slots: dict[int, int] = {}
        for h in handlers:
            if h.status is PEStatus.IDLE:
                avail[h.pe_id] = now
                slots[h.pe_id] = self.queue_depth
            else:
                avail[h.pe_id] = max(h.estimated_free_time, now)
                slots[h.pe_id] = max(
                    0, self.queue_depth - 1 - len(h.reservation_queue)
                )
        open_slots = sum(slots.values())
        assignments: list[Assignment] = []
        for task in ready:
            if open_slots == 0:
                break
            best_handler = None
            best_finish = float("inf")
            for h in handlers:
                if slots[h.pe_id] <= 0:
                    continue
                est = oracle.estimate(task, h)
                if est is None:
                    continue
                finish = avail[h.pe_id] + est
                if finish < best_finish:
                    best_finish = finish
                    best_handler = h
            if best_handler is None:
                continue
            avail[best_handler.pe_id] = best_finish
            slots[best_handler.pe_id] -= 1
            open_slots -= 1
            assignments.append(Assignment(task, best_handler))
        return assignments


class ReservationFRFSScheduler(Scheduler):
    """FRFS with reservation: FIFO tasks onto the least-loaded supporting PE."""

    name = "frfs_reserve"
    uses_reservation = True

    def __init__(
        self,
        oracle: ExecutionTimeOracle | None = None,
        queue_depth: int = 4,
    ) -> None:
        super().__init__(oracle)
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.queue_depth = queue_depth

    def schedule(
        self,
        ready: list[TaskInstance],
        handlers: list[ResourceHandler],
        now: float,
    ) -> list[Assignment]:
        load: dict[int, int] = {}
        for h in handlers:
            if h.status is PEStatus.IDLE:
                load[h.pe_id] = 0
            else:
                load[h.pe_id] = 1 + len(h.reservation_queue)
        assignments: list[Assignment] = []
        for task in ready:
            best_handler = None
            best_load = self.queue_depth  # exclusive bound
            for h in handlers:
                if load[h.pe_id] >= best_load:
                    continue
                if task.supports_pe(h):
                    best_handler = h
                    best_load = load[h.pe_id]
                    if best_load == 0:
                        break
            if best_handler is None:
                continue
            load[best_handler.pe_id] += 1
            assignments.append(Assignment(task, best_handler))
        return assignments
