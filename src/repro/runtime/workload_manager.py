"""Workload-manager core logic (paper Sec. II-C, Fig. 3).

Backend-independent state machine shared by the virtual and threaded
backends: injection of arrived applications, completion monitoring and
ready-list maintenance, policy invocation with assignment validation, and
dispatch bookkeeping.  The backends own *time* (virtual clock vs. wall
clock) and the mechanics of waiting; this core owns *what happens* in each
workload-manager pass.
"""

from __future__ import annotations

from collections import deque
from itertools import islice

from repro import core as core_select
from repro.appmodel.instance import ApplicationInstance, TaskInstance, TaskState
from repro.common.errors import EmulationError
from repro.runtime.faults import FaultInjector
from repro.runtime.handler import PEStatus, ResourceHandler
from repro.runtime.qos import QoSController
from repro.runtime.schedulers.base import Assignment, Scheduler, validate_assignments
from repro.runtime.stats import EmulationStats


class ReadyList:
    """The ready task list, tuned for the WM's access pattern.

    Policies iterate it in FIFO order and read its length; the WM removes
    the dispatched tasks each pass.  FIFO policies dispatch from the front,
    so removals are consumed two ways: a ``_start`` offset swallows the
    contiguous dead prefix immediately (the common case), and the rare
    mid-list removal sits in a tombstone set compacted lazily once the
    tombstones outnumber live entries.  Iteration is therefore a plain
    slice walk — no per-item id() filtering — while each pass stays
    O(live + dispatched) amortized instead of O(queue length).
    """

    __slots__ = ("_items", "_start", "_dead", "_ids")

    def __init__(self) -> None:
        self._items: list[TaskInstance] = []
        self._start = 0
        self._dead: set[int] = set()
        self._ids: set[int] = set()

    def extend(self, tasks: list[TaskInstance]) -> None:
        dead = self._dead
        if dead and any(id(t) in dead for t in tasks):
            # A task re-entering while its mid-list tombstone is still
            # pending (fault requeue of a dispatched task, or an id()
            # recycled onto a tombstoned address): without compaction the
            # stale tombstone would make the new entry invisible to
            # iteration while len() still counts it, silently losing the
            # task.  Compact now so the dead occurrence is physically gone
            # before the id goes live again.
            self._compact()
        self._items.extend(tasks)
        self._ids.update(map(id, tasks))

    def remove_ids(self, ids: set[int]) -> None:
        self._dead |= ids
        self._ids -= ids
        items, dead = self._items, self._dead
        start, n = self._start, len(items)
        while start < n and id(items[start]) in dead:
            dead.remove(id(items[start]))
            start += 1
        self._start = start
        if start > 64 and start * 2 > n:
            del items[:start]
            self._start = 0
        if len(dead) > max(64, len(self._ids)):
            self._compact()

    def _compact(self) -> None:
        items = self._items
        if self._start:
            items = items[self._start:]
            self._start = 0
        dead = self._dead
        if dead:
            items = [t for t in items if id(t) not in dead]
            dead.clear()
        self._items = items

    def __iter__(self):
        start = self._start
        dead = self._dead
        if not dead:
            if start == 0:
                return iter(self._items)
            return islice(self._items, start, None)
        return (
            t for t in islice(self._items, start, None) if id(t) not in dead
        )

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __contains__(self, task: object) -> bool:
        return id(task) in self._ids

    def snapshot(self) -> list[TaskInstance]:
        return list(iter(self))


class MaterializedSource:
    """Finite instance queue over a prebuilt, arrival-ordered list.

    The closed-loop path: every :class:`ApplicationInstance` exists before
    the emulation starts (the application handler built the list in
    arrival order).  Injection is an index walk, so results through this
    source are bit-identical to the historical list-indexing WM.
    """

    __slots__ = ("instances", "_idx")

    #: lazy sources set this False when instances carry no emulated memory
    materialize = True

    def __init__(self, instances: list[ApplicationInstance]) -> None:
        self.instances = instances
        self._idx = 0

    @property
    def total(self) -> int:
        return len(self.instances)

    @property
    def produced(self) -> int:
        return self._idx

    @property
    def exhausted(self) -> bool:
        return self._idx >= len(self.instances)

    def peek_time(self) -> float | None:
        if self._idx >= len(self.instances):
            return None
        return self.instances[self._idx].arrival_time

    def pop(self) -> ApplicationInstance:
        instance = self.instances[self._idx]
        self._idx += 1
        return instance


class WorkloadManagerCore:
    """One emulation's WM state: workload queue, ready list, dispatch."""

    def __init__(
        self,
        workload: list[ApplicationInstance] | MaterializedSource,
        handlers: list[ResourceHandler],
        scheduler: Scheduler,
        stats: EmulationStats,
        *,
        validate: bool = True,
        faults: FaultInjector | None = None,
        qos: QoSController | None = None,
    ) -> None:
        # Workload queue, ordered by arrival.  A plain list (the historical
        # signature, kept for direct constructions in tests) is wrapped in a
        # MaterializedSource; anything else must quack like one — streaming
        # runs pass a LazyInstanceSource that builds instances at pop time.
        if isinstance(workload, list):
            self.source = MaterializedSource(workload)
        else:
            self.source = workload
        #: prebuilt instances when the source has them (empty for lazy sources)
        self.instances = getattr(self.source, "instances", [])
        self.handlers = handlers
        self.scheduler = scheduler
        #: event sink for stateful policies (rank caches, in-flight
        #: tracking); None keeps the per-completion hot path branch-cheap
        self._events_to = scheduler if scheduler.wants_events else None
        self.stats = stats
        self.validate = validate
        self.faults = faults
        self.qos = qos
        # Same structure twice: the compiled ReadyList walks its members
        # in C (which is what keeps the scheduler kernels' iteration off
        # the Python generator path); semantics are identical.
        kernels = core_select.native_kernels()
        self.ready = kernels.ReadyList() if kernels is not None else ReadyList()
        self.apps_completed = 0
        self.apps_degraded = 0
        #: set once any PE has permanently failed (enables recheck paths)
        self.any_failed = False
        #: tasks injected but not yet finished/discarded — counted up at
        #: injection so unbounded streams never need a full-workload sum
        self.tasks_outstanding = 0
        # -- admission control (see runtime.qos) ----------------------------
        self.apps_dropped = 0
        #: admitted but not yet completed/degraded/dropped
        self.apps_in_flight = 0
        admission = qos.admission if qos is not None else None
        #: admission order, for the drop-oldest victim scan (lazy-pruned)
        self._admitted: deque[ApplicationInstance] | None = (
            deque()
            if admission is not None and admission.policy == "drop-oldest"
            else None
        )

    # -- queries ---------------------------------------------------------------

    @property
    def n_apps(self) -> int:
        """Workload size: the total when known, else apps produced so far."""
        total = self.source.total
        return self.source.produced if total is None else total

    def all_complete(self) -> bool:
        """Every app is accounted for: completed, degraded, or dropped."""
        done = self.apps_completed + self.apps_degraded + self.apps_dropped
        total = self.source.total
        if total is not None:
            return done == total
        return self.source.exhausted and done == self.source.produced

    def admission_open(self) -> bool:
        """False only while a ``defer``-policy arrival must wait for capacity.

        Backends gate their "a due arrival needs a WM pass" wake-up on
        this, so a deferred arrival does not spin the WM; the completion
        that frees capacity triggers the pass that admits it.  The drop
        policies always resolve an arrival immediately, so admission is
        always "open" for them.
        """
        admission = self.qos.admission if self.qos is not None else None
        if admission is None or admission.policy != "defer":
            return True
        return self.apps_in_flight < admission.max_pending

    def next_arrival(self) -> float | None:
        """Arrival time of the workload queue's head, or None when drained."""
        return self.source.peek_time()

    def has_due_arrival(self, now: float) -> bool:
        nxt = self.next_arrival()
        return nxt is not None and nxt <= now

    # -- the three steps of a WM pass -----------------------------------------------

    def process_completions(self, completions, now: float) -> int:
        """Monitor step: bookkeep finished tasks, release PEs, grow ready list.

        ``completions`` is any iterable of ``(handler, task)`` pairs; it is
        consumed synchronously, so backends can pass their live buffer and
        clear it afterwards instead of copying.
        """
        n = 0
        for handler, task in completions:
            n += 1
            # Plain-dispatch PEs park in COMPLETE until acknowledged here;
            # self-serving (reservation) PEs manage their own status.
            if handler.status is PEStatus.COMPLETE:
                handler.acknowledge_complete()
            # The backends deliver completions through their own queues; the
            # handler-side buffer exists for the monitoring protocol and is
            # cleared here so it cannot grow without bound.
            if handler.finished_tasks:
                handler.drain_finished()
            newly_ready = task.app.on_task_complete(task, now)
            # Successors of a degraded app will never run; they were removed
            # from the outstanding count when the app was degraded.
            if not task.app.degraded:
                self.ready.extend(newly_ready)
            self.stats.record_task(task, handler.pe)
            self.tasks_outstanding -= 1
            if self._events_to is not None:
                self._events_to.notify_completion(task, now)
            if task.app.is_complete:
                self.apps_completed += 1
                self.stats.record_app_completion(task.app)
                if self.qos is not None:
                    self.apps_in_flight -= 1
                if self.stats.streaming:
                    # Open-loop runs: stats have everything they need, so
                    # the DAG/memory bookkeeping can go.  Degraded apps are
                    # never released — their in-flight tasks still complete
                    # through on_task_complete.
                    task.app.release()
        return n

    def inject_due(self, now: float) -> int:
        """Injection step: move arrived applications into the emulation.

        With bounded admission (see :class:`~repro.runtime.qos.AdmissionConfig`)
        an arrival that comes due at the in-flight bound is deferred (left at
        the queue head for a later pass) or shed — either the arrival itself
        (``drop-newest``) or the oldest admitted app that has made no progress
        yet (``drop-oldest``).  Shed arrivals still count as injected, which
        is what keeps ``completed + degraded + dropped == injected``.
        """
        admission = self.qos.admission if self.qos is not None else None
        queue = self._admitted
        if (
            queue is not None
            and len(queue) > 64
            and len(queue) > 4 * (self.apps_in_flight + 1)
        ):
            # Settled apps are normally pruned from the front by the victim
            # scan, but out-of-order completions can strand them mid-deque;
            # compact so streaming runs do not retain every admitted app.
            self._admitted = queue = deque(
                app
                for app in queue
                if not (
                    app.started or app.is_complete or app.degraded or app.dropped
                )
            )
        injected = 0
        source = self.source
        while True:
            arrival = source.peek_time()
            if arrival is None or arrival > now:
                break
            if (
                admission is not None
                and self.apps_in_flight >= admission.max_pending
            ):
                if admission.policy == "defer":
                    # leave the arrival at the stream head for a later pass
                    break
                if admission.policy == "drop-newest":
                    instance = source.pop()
                    self.tasks_outstanding += instance.task_count
                    injected += 1
                    self._drop_app(instance, now, "drop-newest", admitted=False)
                    continue
                victim = self._oldest_unstarted()
                if victim is None:
                    # every admitted app has made progress: shed the
                    # arrival instead of wasting work already done
                    instance = source.pop()
                    self.tasks_outstanding += instance.task_count
                    injected += 1
                    self._drop_app(instance, now, "drop-oldest", admitted=False)
                    continue
                self._drop_app(victim, now, "drop-oldest", admitted=True)
            instance = source.pop()
            self.tasks_outstanding += instance.task_count
            instance.inject_time = now
            heads = instance.head_tasks()
            for task in heads:
                task.mark_ready(now)
            self.ready.extend(heads)
            injected += 1
            if self.qos is not None:
                self.apps_in_flight += 1
                if self._admitted is not None:
                    self._admitted.append(instance)
        if injected:
            self.stats.record_injection(injected)
        return injected

    def _oldest_unstarted(self) -> ApplicationInstance | None:
        """Oldest admitted app with no progress, pruning settled entries."""
        queue = self._admitted
        while queue:
            app = queue[0]
            if app.started or app.is_complete or app.degraded or app.dropped:
                queue.popleft()
                continue
            return app
        return None

    def _drop_app(
        self,
        app: ApplicationInstance,
        now: float,
        reason: str,
        *,
        admitted: bool,
    ) -> None:
        """Shed one application under overload (terminal, like degradation).

        ``admitted=False`` sheds an arrival that never entered the
        emulation; ``admitted=True`` sheds an in-flight app, which by the
        drop-oldest victim rule has dispatched nothing — only its head
        tasks can be in the ready list.
        """
        app.dropped = True
        self.apps_dropped += 1
        if admitted:
            self.apps_in_flight -= 1
            in_ready = {id(t) for t in self.ready if t.app is app}
            if in_ready:
                self.ready.remove_ids(in_ready)
        self.tasks_outstanding -= app.task_count
        self.stats.record_app_drop(app, now, reason)
        if self.stats.streaming:
            # Never-started by the victim rule (or never admitted at all):
            # nothing in flight references its tasks.
            app.release()

    def run_policy(self, now: float) -> list[Assignment]:
        """Apply the user-selected policy to the ready list (no side effects)."""
        if not self.ready:
            return []
        assignments = self.scheduler.schedule(self.ready, self.handlers, now)
        # Under fault injection a PE can fail between the policy reading its
        # status and this pass committing (threaded backend); drop such
        # assignments here rather than tripping validation on them.
        if self.any_failed and assignments:
            assignments = [a for a in assignments if not a.handler.failed]
        if self.validate and assignments:
            validate_assignments(
                assignments, self.ready,
                allow_busy=self.scheduler.uses_reservation,
            )
        return assignments

    def commit(self, assignments: list[Assignment], now: float) -> None:
        """Dispatch step: remove selected tasks from the ready list, stamp
        them, update per-PE availability estimates, and hand them to PEs."""
        if not assignments:
            return
        chosen = {id(a.task) for a in assignments}
        self.ready.remove_ids(chosen)
        if self._admitted is not None:
            for a in assignments:
                a.task.app.started = True
        for a in assignments:
            binding = a.task.node.binding_for_any(a.handler.accepted_platforms)
            if binding is None:
                raise EmulationError(
                    f"task {a.task.qualified_name()} has no binding for PE "
                    f"{a.handler.name}"
                )
            a.task.mark_dispatched(now, a.handler, binding)
        # availability estimates for lookahead policies
        oracle = self.scheduler.oracle
        if oracle is not None:
            for a in assignments:
                est = oracle.estimate(a.task, a.handler)
                if est is None:
                    continue
                base = max(a.handler.estimated_free_time, now)
                if a.handler.status is PEStatus.IDLE:
                    base = now
                a.handler.estimated_free_time = base + est
        if self._events_to is not None:
            self._events_to.notify_dispatch(assignments, now)

    # -- fault handling ---------------------------------------------------------

    def absorb_pe_failure(
        self,
        handler: ResourceHandler,
        orphans: list[TaskInstance],
        now: float,
        *,
        kind: str = "pe_failure",
    ) -> None:
        """A PE permanently failed: requeue its surrendered work.

        ``orphans`` is what :meth:`ResourceHandler.mark_failed` returned —
        the in-flight task plus any reservation-queue bookings.  Orphaning
        does not count against a task's requeue budget (``charge=False``).
        Afterwards any application left without a live capable PE is
        terminally degraded.  ``kind`` distinguishes injected failures from
        watchdog fail-stops in the timeline.
        """
        self.any_failed = True
        if self._events_to is not None:
            self._events_to.notify_pe_failure(handler, now)
        self.stats.record_pe_failure(handler.name, handler.failed_at, kind=kind)
        requeued: list[TaskInstance] = []
        for task in orphans:
            if task.state in (TaskState.DISPATCHED, TaskState.RUNNING):
                task.mark_requeued(now, charge=False)
            if task.app.degraded:
                self.tasks_outstanding -= 1
                continue
            requeued.append(task)
            self.stats.record_requeue(task, handler.name, now, "pe_failure_requeue")
        if requeued:
            self.ready.extend(requeued)
        self.degrade_unrunnable(now)

    def absorb_requeues(
        self, items: list[tuple[ResourceHandler, TaskInstance]], now: float
    ) -> None:
        """Tasks whose PE exhausted in-place retries come back for rescheduling.

        A task over its requeue budget terminally degrades its application;
        tasks of already-degraded applications are dropped.
        """
        max_rq = self.faults.max_requeues if self.faults is not None else 0
        requeued: list[TaskInstance] = []
        for handler, task in items:
            if task.app.degraded:
                self.tasks_outstanding -= 1
                continue
            if task.fault_requeues > max_rq:
                self._degrade_app(task.app, now)
                continue
            requeued.append(task)
            self.stats.record_requeue(task, handler.name, now, "retry_exhausted")
        if requeued:
            self.ready.extend(requeued)

    def recover_failed_dispatch(self, task: TaskInstance, now: float) -> None:
        """Dispatch raced a concurrent PE failure: put the task back."""
        task.mark_requeued(now, charge=False)
        if task.app.degraded:
            self.tasks_outstanding -= 1
            return
        self.ready.extend([task])

    def degrade_unrunnable(self, now: float) -> None:
        """Degrade apps whose ready tasks have no live supporting PE left."""
        live_platforms: set[str] = set()
        for h in self.handlers:
            if not h.failed:
                live_platforms.update(h.accepted_platforms)
        doomed: list[ApplicationInstance] = []
        for t in self.ready:
            if t.app.degraded or t.app in doomed:
                continue
            if not (set(t.node.platform_names()) & live_platforms):
                doomed.append(t.app)
        for app in doomed:
            self._degrade_app(app, now)

    def _degrade_app(self, app: ApplicationInstance, now: float) -> None:
        """Terminal degradation: the app can never finish on the live PEs.

        Its queued work is discarded; tasks still in flight on live PEs run
        to completion (their stats remain valid) but unlock nothing.
        """
        if app.degraded or app.is_complete or app.dropped:
            return
        app.degraded = True
        self.apps_degraded += 1
        if self.qos is not None:
            self.apps_in_flight -= 1
        in_ready = {id(t) for t in self.ready if t.app is app}
        if in_ready:
            self.ready.remove_ids(in_ready)
        # Tasks that can no longer run: queued ones just removed, plus every
        # not-yet-ready task.  Requeued tasks still in a backend channel are
        # decremented by the absorb path that drops them.
        pending = sum(
            1 for t in app.tasks.values() if t.state is TaskState.PENDING
        )
        self.tasks_outstanding -= pending + len(in_ready)
        self.stats.record_app_degradation(app, now)

    def check_liveness(self, now: float, pending_completions: int = 0) -> None:
        """Deadlock guard: work remains but nothing can ever progress.

        ``pending_completions`` is the backend's count of finished tasks
        (or fault events) not yet run through the absorb/monitor steps;
        those still unlock work, so they defer the verdict to the next
        pass.
        """
        if self.all_complete() or pending_completions:
            return
        # FAILED is terminal, not "busy": only RUN/COMPLETE PEs make progress.
        any_running = any(
            h.status in (PEStatus.RUN, PEStatus.COMPLETE) for h in self.handlers
        )
        if any_running or self.next_arrival() is not None:
            return
        if self.ready:
            supported: set[str] = set()
            for h in self.handlers:
                if not h.failed:
                    supported.update(h.accepted_platforms)
            stuck = [
                t
                for t in self.ready
                if not (set(t.node.platform_names()) & supported)
            ]
            if stuck and self.any_failed:
                # PEs died under us: degrade instead of crashing the run.
                self.degrade_unrunnable(now)
                if not self.all_complete() and self.ready:
                    return  # runnable work remains for the next pass
                return
            if stuck:
                details = [
                    f"{t.qualified_name()} needs "
                    f"{sorted(t.node.platform_names())}"
                    for t in stuck[:5]
                ]
                more = f" (+{len(stuck) - 5} more)" if len(stuck) > 5 else ""
                raise EmulationError(
                    f"deadlock at t={now:.1f}us: {len(stuck)} ready task(s) "
                    f"have no supporting PE in this configuration: "
                    f"{'; '.join(details)}{more}; live PE platforms: "
                    f"{sorted(supported)}"
                )
        else:
            live = sorted(
                {h.type_name for h in self.handlers if not h.failed}
            )
            raise EmulationError(
                f"deadlock at t={now:.1f}us: {self.tasks_outstanding} tasks "
                f"outstanding but none ready, none running, none arriving "
                f"(live PE types: {live})"
            )
