"""Runtime core — the paper's primary contribution.

The workload manager drives emulation on a dedicated management core:
injecting applications from the workload queue, maintaining the ready task
list, applying the selected scheduling policy, and coordinating with per-PE
resource managers through resource-handler objects.  Two execution backends
implement the same runtime state machine:

* ``threaded`` — real POSIX-style threads and real kernels (functional
  verification, wall-clock timing);
* ``virtual`` — discrete-event simulation with calibrated timing models
  (deterministic figure reproduction).
"""

from repro.runtime.handler import ResourceHandler, PEStatus
from repro.runtime.workload import (
    WorkloadItem,
    WorkloadSpec,
    validation_workload,
    performance_workload,
    periodic_arrivals,
)
from repro.runtime.application_handler import ApplicationHandler, ResolvedApplication
from repro.runtime.stats import EmulationStats, TaskRecord
from repro.runtime.emulation import Emulation, EmulationResult
from repro.runtime.schedulers import (
    Scheduler,
    Assignment,
    FRFSScheduler,
    METScheduler,
    EFTScheduler,
    RandomScheduler,
    make_scheduler,
    available_policies,
    register_policy,
)

__all__ = [
    "ResourceHandler",
    "PEStatus",
    "WorkloadItem",
    "WorkloadSpec",
    "validation_workload",
    "performance_workload",
    "periodic_arrivals",
    "ApplicationHandler",
    "ResolvedApplication",
    "EmulationStats",
    "TaskRecord",
    "Emulation",
    "EmulationResult",
    "Scheduler",
    "Assignment",
    "FRFSScheduler",
    "METScheduler",
    "EFTScheduler",
    "RandomScheduler",
    "make_scheduler",
    "available_policies",
    "register_policy",
]
