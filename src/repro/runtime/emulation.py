"""Emulation façade: the framework's top-level entry point.

Ties together a platform, a DSSoC test configuration, the application
repository, a scheduling policy, and an execution backend::

    from repro import Emulation, validation_workload, VirtualBackend

    emu = Emulation(config="3C+2F", policy="frfs")
    result = emu.run(validation_workload({"range_detection": 3}))
    print(result.stats.summary())

Each :meth:`Emulation.run` performs the paper's initialization phase —
parse applications (resolving every runfunc), instantiate the workload
(allocating/initializing instance memory), build the DSSoC configuration
from the platform's resource pool — then hands the session to the backend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.dag import TaskGraph
from repro.appmodel.instance import ApplicationInstance
from repro.appmodel.library import KernelLibrary
from repro.apps import registry as app_registry
from repro.common.rng import SeedSequenceFactory
from repro.hardware.config import AffinityPlan, DSSoCConfig, parse_config
from repro.hardware.perfmodel import PerformanceModel, SchedulerCostModel
from repro.hardware.platform import SoCPlatform, zcu102
from repro.runtime.application_handler import ApplicationHandler, LazyInstanceSource
from repro.runtime.backends.base import EmulationSession, ExecutionBackend
from repro.runtime.backends.virtual import VirtualBackend
from repro.runtime.faults import FaultSpec, make_injector
from repro.runtime.handler import ResourceHandler
from repro.runtime.qos import QoSController, QoSSpec, make_qos
from repro.runtime.schedulers import Scheduler, make_scheduler
from repro.runtime.stats import EmulationStats
from repro.runtime.workload import ArrivalStream, WorkloadSpec


@dataclass
class EmulationResult:
    """Outcome of one emulation run."""

    stats: EmulationStats
    instances: list[ApplicationInstance]
    workload: WorkloadSpec | ArrivalStream
    config_label: str
    policy: str

    @property
    def makespan_us(self) -> float:
        return self.stats.makespan

    @property
    def makespan_ms(self) -> float:
        return self.stats.makespan / 1000.0

    def verify_outputs(self) -> dict[str, bool]:
        """Functional verification of every instance's application output
        (threaded backend only — virtual instances carry no data)."""
        results: dict[str, bool] = {}
        for instance in self.instances:
            if instance.variables is None:
                continue
            ok = app_registry.verify_instance(instance)
            key = instance.app_name
            results[key] = results.get(key, True) and ok
        return results

    def all_outputs_correct(self) -> bool:
        checks = self.verify_outputs()
        return bool(checks) and all(checks.values())


class Emulation:
    """Reusable emulation configuration (each ``run`` is independent)."""

    def __init__(
        self,
        *,
        platform: SoCPlatform | None = None,
        config: DSSoCConfig | str = "3C+2F",
        policy: str | Scheduler = "frfs",
        applications: dict[str, TaskGraph] | None = None,
        library: KernelLibrary | None = None,
        perf_model: PerformanceModel | None = None,
        cost_model: SchedulerCostModel | None = None,
        seed: int | None = None,
        jitter: bool = True,
        materialize_memory: bool = True,
        validate_assignments: bool = True,
        faults: FaultSpec | dict | None = None,
        qos: QoSController | QoSSpec | dict | None = None,
    ) -> None:
        self.platform = platform if platform is not None else zcu102()
        self.config = (
            parse_config(config) if isinstance(config, str) else config
        )
        self.policy = policy
        self.applications = (
            applications
            if applications is not None
            else app_registry.default_applications()
        )
        self.library = (
            library if library is not None else app_registry.default_kernel_library()
        )
        self.perf_model = perf_model if perf_model is not None else PerformanceModel()
        self.cost_model = cost_model if cost_model is not None else SchedulerCostModel()
        self.seed = seed
        self.jitter = jitter
        self.materialize_memory = materialize_memory
        self.validate_assignments = validate_assignments
        #: fault plan (FaultSpec, its dict form, or None); an empty spec is
        #: equivalent to None — the run stays bit-identical to fault-free
        self.faults = faults
        #: QoS plan (QoSController, QoSSpec, its dict form, or None); an
        #: empty spec is equivalent to None, same bit-identity guarantee
        self.qos = qos

    # -- the initialization phase + emulation ---------------------------------------------

    def build_session(
        self, workload: WorkloadSpec | ArrivalStream, *, run_index: int = 0
    ) -> EmulationSession:
        """Everything up to (but excluding) backend execution.

        A :class:`WorkloadSpec` is materialized up front (the paper's
        closed-loop path, bit-identical to the historical behavior); an
        :class:`ArrivalStream` builds instances lazily at injection and
        switches stats into streaming mode so memory stays O(in flight).
        """
        plan = AffinityPlan.build(self.platform, self.config)
        handlers = [ResourceHandler(pe) for pe in plan.pes]

        app_handler = ApplicationHandler(self.library)
        app_handler.register_all(self.applications)
        accepted: set[str] = set()
        for handler in handlers:
            accepted.update(handler.accepted_platforms)
        app_handler.check_platform_coverage(accepted)

        streaming = isinstance(workload, ArrivalStream)
        instances: list[ApplicationInstance] = []
        if not streaming:
            instances = app_handler.instantiate(
                workload, materialize_memory=self.materialize_memory
            )

        scheduler = (
            make_scheduler(self.policy)
            if isinstance(self.policy, str)
            else self.policy
        )
        stats = EmulationStats(label=workload.description, streaming=streaming)
        stats.policy_name = scheduler.name
        stats.config_label = self.config.describe()
        for pe in plan.pes:
            stats.register_pe(pe)

        seeds = SeedSequenceFactory(self.seed)
        if run_index:
            seeds = seeds.spawn("run", run_index)
        injector = make_injector(self.faults, seeds)
        stats.faults_enabled = injector is not None
        qos = make_qos(self.qos)
        if qos is not None:
            # An empty-spec controller only carries the interrupt flag for
            # signal handling; it must not grow the stats summary.
            stats.qos_enabled = not qos.spec.is_empty
            qos.assign_deadlines(instances)
        source = None
        if streaming:
            # Built after QoS so deadlines are stamped at pop time.
            source = LazyInstanceSource(
                app_handler,
                workload,
                materialize_memory=self.materialize_memory,
                qos=qos,
            )
        return EmulationSession(
            platform=self.platform,
            plan=plan,
            handlers=handlers,
            app_handler=app_handler,
            instances=instances,
            scheduler=scheduler,
            perf_model=self.perf_model,
            cost_model=self.cost_model,
            stats=stats,
            seeds=seeds,
            jitter=self.jitter,
            validate_assignments=self.validate_assignments,
            faults=injector,
            qos=qos,
            source=source,
        )

    def run(
        self,
        workload: WorkloadSpec | ArrivalStream,
        backend: ExecutionBackend | None = None,
        *,
        run_index: int = 0,
    ) -> EmulationResult:
        """Execute one emulation; ``run_index`` varies the jitter stream
        across repeated iterations of the same workload (Fig. 9a's boxes)."""
        if backend is None:
            backend = VirtualBackend()
        session = self.build_session(workload, run_index=run_index)
        stats = backend.run(session)
        return EmulationResult(
            stats=stats,
            instances=session.instances,
            workload=workload,
            config_label=self.config.describe(),
            policy=session.scheduler.name,
        )
