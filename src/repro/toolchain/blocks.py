"""Statement blocks: the toolchain's unit of tracing and outlining.

The LLVM toolchain works on IR basic blocks; the Python analog splits a
monolithic function's body into its *top-level statements* — a loop nest is
one block, matching the paper's notion of a kernel as "a set of highly
correlated IR-level blocks" (a hot loop traces as one very hot block here).

The target function must be a linear sequence of top-level statements
(loops/ifs are fine *inside* a statement); top-level control flow that
would make the block sequence diverge between runs is rejected, mirroring
the first-pass scope of the paper's flow.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.common.errors import ToolchainError


@dataclass
class StatementBlock:
    """One top-level statement of the monolithic function body."""

    index: int
    first_line: int          # within the extracted source (1-based)
    last_line: int
    node: ast.stmt
    source: str

    @property
    def static_lines(self) -> int:
        return self.last_line - self.first_line + 1

    def summary(self) -> str:
        head = self.source.strip().splitlines()[0]
        return head if len(head) <= 60 else head[:57] + "..."


@dataclass
class FunctionBlocks:
    """The parsed function: its blocks plus source bookkeeping."""

    name: str
    source: str              # dedented full source of the function
    body_offset: int         # line of the first body statement
    blocks: list[StatementBlock]
    arg_names: tuple[str, ...]
    line_to_block: dict[int, int] = field(default_factory=dict)

    def block_of_line(self, line: int) -> int | None:
        return self.line_to_block.get(line)


def _line_span(node: ast.stmt) -> tuple[int, int]:
    last = node.end_lineno if node.end_lineno is not None else node.lineno
    return node.lineno, last


def split_into_blocks(func: Callable) -> FunctionBlocks:
    """Parse a function into top-level statement blocks."""
    try:
        raw = inspect.getsource(func)
    except (OSError, TypeError) as exc:
        raise ToolchainError(
            f"cannot retrieve source of {func!r}: {exc}"
        ) from exc
    source = textwrap.dedent(raw)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:  # pragma: no cover - inspect gave us valid code
        raise ToolchainError(f"cannot parse source of {func!r}: {exc}") from exc
    funcs = [n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    if len(funcs) != 1:
        raise ToolchainError(
            f"expected exactly one function definition, found {len(funcs)}"
        )
    fn = funcs[0]
    if isinstance(fn, ast.AsyncFunctionDef):
        raise ToolchainError("async functions are not supported")
    body = list(fn.body)
    # Skip a leading docstring: it is not an executable block.
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        raise ToolchainError(f"function {fn.name!r} has an empty body")
    for stmt in body:
        if isinstance(stmt, (ast.Return, ast.Global, ast.Nonlocal)):
            continue
        # ``for`` and ``with`` statements execute linearly at the top level
        # (one block each); genuinely divergent control flow is rejected.
        if isinstance(stmt, (ast.If, ast.While, ast.Try, ast.Match)):
            raise ToolchainError(
                f"function {fn.name!r}: top-level "
                f"{type(stmt).__name__} at line {stmt.lineno} is outside the "
                "toolchain's linear-flow scope (hoist it into a single "
                "statement or inside a loop body)"
            )
    source_lines = source.splitlines()
    blocks: list[StatementBlock] = []
    line_map: dict[int, int] = {}
    for index, stmt in enumerate(body):
        if isinstance(stmt, ast.Return):
            # The trailing return is handled by DAG generation, not a block.
            if index != len(body) - 1:
                raise ToolchainError(
                    f"function {fn.name!r}: return before the end of the body"
                )
            continue
        first, last = _line_span(stmt)
        text = "\n".join(source_lines[first - 1 : last])
        block = StatementBlock(
            index=len(blocks),
            first_line=first,
            last_line=last,
            node=stmt,
            source=textwrap.dedent(text),
        )
        for line in range(first, last + 1):
            line_map[line] = block.index
        blocks.append(block)
    return FunctionBlocks(
        name=fn.name,
        source=source,
        body_offset=body[0].lineno,
        blocks=blocks,
        arg_names=tuple(a.arg for a in fn.args.args),
        line_to_block=line_map,
    )
