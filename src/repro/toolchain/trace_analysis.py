"""Kernel detection over the dynamic trace.

A block is labeled a **kernel** when its dynamic behaviour dominates the
trace — "a set of highly correlated IR-level blocks ... that execute
frequently in the base program", i.e. labeling the hot sections.  Two
signals combine:

* *hotness* — the block's share of all dynamic line events, and
* *amplification* — dynamic events per static line (loop iteration count),
  which separates a 3-line loop running 10⁵ iterations from 30 straight-
  line statements that each ran once.

Contiguous runs of same-label blocks merge into :class:`Segment` objects —
the alternating "kernel"/"non-kernel" groups the paper partitions the
original file into.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ToolchainError
from repro.toolchain.tracing import DynamicTrace


@dataclass
class Segment:
    """A contiguous group of blocks with one label."""

    index: int
    kind: str                     # "kernel" | "non_kernel"
    block_indices: tuple[int, ...]
    dynamic_events: int
    name: str = ""

    @property
    def is_kernel(self) -> bool:
        return self.kind == "kernel"


def detect_kernels(
    trace: DynamicTrace,
    *,
    hotness_threshold: float = 0.005,
    amplification_threshold: float = 8.0,
    strong_amplification: float = 32.0,
    merge_adjacent_kernels: bool = False,
) -> list[Segment]:
    """Partition the traced blocks into kernel / non-kernel segments.

    A block is a kernel when it is loop-amplified (≥
    ``amplification_threshold`` events per static line) and either hot
    (≥ ``hotness_threshold`` of all dynamic events) or *strongly*
    amplified (≥ ``strong_amplification``) — the latter keeps long I/O
    loops labeled as kernels even when a quadratic compute loop dominates
    the relative event share.  ``merge_adjacent_kernels=False`` keeps each
    hot loop as its own kernel node (two back-to-back DFT loops become two
    kernels, as in the paper's range-detection conversion).
    """
    blocks = trace.blocks.blocks
    if not blocks:
        raise ToolchainError("no blocks to analyze")
    labels: list[str] = []
    for block in blocks:
        hot = trace.hotness(block.index) >= hotness_threshold
        amp = trace.amplification(block.index)
        is_kernel = amp >= amplification_threshold and (
            hot or amp >= strong_amplification
        )
        labels.append("kernel" if is_kernel else "non_kernel")

    segments: list[Segment] = []
    run: list[int] = []
    run_kind = labels[0]

    def flush() -> None:
        if not run:
            return
        events = sum(trace.events_of(b) for b in run)
        segments.append(
            Segment(
                index=len(segments),
                kind=run_kind,
                block_indices=tuple(run),
                dynamic_events=events,
            )
        )

    for block, label in zip(blocks, labels):
        same = label == run_kind
        # Kernels stay one-block-per-segment unless merging is requested,
        # so each hot loop outlines to its own DAG node.
        if run and same and (label == "non_kernel" or merge_adjacent_kernels):
            run.append(block.index)
        else:
            flush()
            run = [block.index]
            run_kind = label
    flush()

    kernel_counter = 0
    other_counter = 0
    for seg in segments:
        if seg.is_kernel:
            seg.name = f"KERNEL_{kernel_counter}"
            kernel_counter += 1
        else:
            seg.name = f"NODE_{other_counter}"
            other_counter += 1
    return segments


def kernel_report(trace: DynamicTrace, segments: list[Segment]) -> list[dict]:
    """Human-readable detection summary (one row per segment)."""
    rows = []
    for seg in segments:
        first = trace.blocks.blocks[seg.block_indices[0]]
        rows.append(
            {
                "segment": seg.name,
                "kind": seg.kind,
                "blocks": len(seg.block_indices),
                "events": seg.dynamic_events,
                "share": round(seg.dynamic_events / trace.total_events, 4),
                "source": first.summary(),
            }
        )
    return rows
