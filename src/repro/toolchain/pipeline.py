"""The end-to-end conversion pipeline (Fig. 5).

``convert(func, example_args)`` runs trace instrumentation → trace
collection → kernel detection → memory analysis → outlining → recognition,
and returns a :class:`ConversionResult` that can generate the framework
application under any substitution mode without re-tracing.
"""

from __future__ import annotations

import builtins
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import ToolchainError
from repro.toolchain.blocks import FunctionBlocks, split_into_blocks
from repro.toolchain.dag_generation import GeneratedApplication, generate_dag
from repro.toolchain.memory_analysis import (
    SegmentLiveness,
    VariableObservation,
    analyze_liveness,
    observe_segments,
    observe_value,
)
from repro.toolchain.outline import OutlinedSegment, outline_segments
from repro.toolchain.recognition import RecognitionResult, recognize_kernels
from repro.toolchain.trace_analysis import (
    Segment,
    detect_kernels,
    kernel_report,
)
from repro.toolchain.tracing import DynamicTrace, trace_function

import ast


def _result_names(blocks: FunctionBlocks) -> frozenset[str]:
    """Names read by the function's trailing ``return`` expression."""
    tree = ast.parse(blocks.source)
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    names.add(sub.id)
    return frozenset(names)


@dataclass
class ConversionResult:
    """Everything the pipeline learned about the monolithic application."""

    func_name: str
    blocks: FunctionBlocks
    trace: DynamicTrace
    segments: list[Segment]
    liveness: list[SegmentLiveness]
    observations: dict[str, VariableObservation]
    outlined: list[OutlinedSegment]
    recognition: list[RecognitionResult]
    initial_values: dict[str, object]

    @property
    def kernel_count(self) -> int:
        return sum(1 for s in self.segments if s.is_kernel)

    @property
    def recognized_kernels(self) -> list[RecognitionResult]:
        return [r for r in self.recognition if r.recognized_as is not None]

    def detection_report(self) -> list[dict]:
        return kernel_report(self.trace, self.segments)

    def generate(self, substitute: str = "both") -> GeneratedApplication:
        """Emit the framework application under a substitution mode."""
        return generate_dag(
            self.func_name,
            self.outlined,
            self.observations,
            self.initial_values,
            self.recognition,
            substitute=substitute,
        )


def convert(
    func: Callable,
    example_args: tuple = (),
    *,
    hotness_threshold: float = 0.005,
    amplification_threshold: float = 8.0,
    recognize: bool = True,
    hash_cache: dict[str, str] | None = None,
) -> ConversionResult:
    """Convert a monolithic function into a DAG application.

    ``example_args`` plays the role of the representative input the dynamic
    trace is collected on; its values are also baked into the generated
    application's variable initializers.
    """
    blocks = split_into_blocks(func)
    if len(example_args) != len(blocks.arg_names):
        raise ToolchainError(
            f"{func.__name__} takes {len(blocks.arg_names)} arguments "
            f"({blocks.arg_names}); got {len(example_args)} example values"
        )
    trace = trace_function(func, example_args, blocks=blocks)
    segments = detect_kernels(
        trace,
        hotness_threshold=hotness_threshold,
        amplification_threshold=amplification_threshold,
    )

    # Externals: anything resolvable in the function's globals or builtins
    # is a library reference, not a program variable.
    global_ns = dict(func.__globals__)
    external = frozenset(
        name
        for name in _collect_names(blocks)
        if name in global_ns or hasattr(builtins, name)
    ) - frozenset(blocks.arg_names)

    liveness = analyze_liveness(
        blocks,
        segments,
        external_names=external,
        result_names=_result_names(blocks),
        initial_names=frozenset(blocks.arg_names),
    )
    initial_locals = dict(zip(blocks.arg_names, example_args))
    observations = observe_segments(
        blocks, segments, liveness, global_ns, initial_locals
    )
    for name, value in initial_locals.items():
        observations.setdefault(name, observe_value(name, value))

    outlined = outline_segments(
        blocks, segments, liveness, observations, global_ns,
        func_name=func.__name__,
    )
    recognition: list[RecognitionResult] = []
    if recognize:
        recognition = recognize_kernels(outlined, hash_cache=hash_cache)
    return ConversionResult(
        func_name=func.__name__,
        blocks=blocks,
        trace=trace,
        segments=segments,
        liveness=liveness,
        observations=observations,
        outlined=outlined,
        recognition=recognition,
        initial_values=initial_locals,
    )


def _collect_names(blocks: FunctionBlocks) -> set[str]:
    names: set[str] = set()
    for block in blocks.blocks:
        for node in ast.walk(block.node):
            if isinstance(node, ast.Name):
                names.add(node.id)
    return names
