"""JSON-compatible DAG generation from outlined segments.

Builds the Listing-1 task graph for a converted application: one node per
segment, variables from the memory analysis (with the monolithic
function's argument values baked in as byte initializers), data-flow
dependencies from the live sets — independent kernels with disjoint memory
footprints become parallel DAG branches (the paper's Sec. III-F future-work
item) — and, for recognized kernels, substituted platform bindings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.appmodel.builder import GraphBuilder
from repro.appmodel.dag import PlatformBinding, TaskGraph
from repro.appmodel.library import KernelLibrary
from repro.common.errors import ToolchainError
from repro.toolchain.memory_analysis import VariableObservation
from repro.toolchain.outline import OutlinedSegment, variable_spec_for
from repro.toolchain.recognition import (
    ACCEL_SHARED_OBJECT,
    OPTIMIZED_SHARED_OBJECT,
    RecognitionResult,
    make_accelerator_kernel,
    make_optimized_kernel,
)

#: substitution modes for recognized kernels
SUBSTITUTIONS = ("none", "optimized", "accelerator", "both")


def _dataflow_edges(outlined: list[OutlinedSegment]) -> list[tuple[int, int]]:
    """Edges from true/anti/output dependencies over boundary variables,
    transitively reduced."""
    n = len(outlined)
    reads = [
        set(o.liveness.live_in) | set(o.liveness.resource_uses) for o in outlined
    ]
    writes = [
        set(o.liveness.live_out) | set(o.liveness.resource_defs) for o in outlined
    ]
    dep = [[False] * n for _ in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            if writes[i] & reads[j] or writes[i] & writes[j] or reads[i] & writes[j]:
                dep[i][j] = True
    # transitive closure then reduction (segment counts are small)
    reach = [row[:] for row in dep]
    for k in range(n):
        for i in range(n):
            if reach[i][k]:
                for j in range(n):
                    if reach[k][j]:
                        reach[i][j] = True
    edges: list[tuple[int, int]] = []
    for i in range(n):
        for j in range(i + 1, n):
            if not dep[i][j]:
                continue
            redundant = any(
                dep[i][k] and reach[k][j] for k in range(i + 1, j)
            )
            if not redundant:
                edges.append((i, j))
    return edges


@dataclass
class GeneratedApplication:
    """A converted application ready for the runtime."""

    graph: TaskGraph
    library: KernelLibrary
    substitute: str
    recognized: dict[str, RecognitionResult]  # segment name -> result
    accel_job_sizes: dict[str, int]           # accel runfunc -> FFT points


def generate_dag(
    func_name: str,
    outlined: list[OutlinedSegment],
    observations: dict[str, VariableObservation],
    initial_values: dict[str, object],
    recognition: list[RecognitionResult] | None = None,
    *,
    substitute: str = "both",
    app_name: str | None = None,
) -> GeneratedApplication:
    """Emit the task graph + kernel library for one substitution mode."""
    if substitute not in SUBSTITUTIONS:
        raise ToolchainError(
            f"unknown substitution mode {substitute!r} (use {SUBSTITUTIONS})"
        )
    recognized = {
        r.segment_name: r
        for r in (recognition or [])
        if r.recognized_as is not None
    }
    shared_object = f"{func_name}_auto.so"
    app = app_name or f"{func_name}_auto_{substitute}"
    builder = GraphBuilder(app, shared_object)

    # Variables: every boundary-crossing observation; argument values are
    # baked in as byte initializers (Listing 1's ``val`` vectors).
    for name in sorted(observations):
        builder.variable(
            variable_spec_for(observations[name], initial_values.get(name))
        )

    library = KernelLibrary()
    base_symbols = {o.runfunc: o.kernel for o in outlined}
    library.register_shared_object(shared_object, base_symbols)
    optimized_symbols: dict[str, object] = {}
    accel_symbols: dict[str, object] = {}
    accel_job_sizes: dict[str, int] = {}

    node_platforms: dict[str, list[PlatformBinding]] = {}
    for seg in outlined:
        platforms = [PlatformBinding(name="cpu", runfunc=seg.runfunc)]
        rec = recognized.get(seg.name)
        if rec is not None and substitute != "none":
            in_obs = observations[rec.in_var]
            out_obs = observations[rec.out_var]
            if substitute in ("optimized", "both"):
                opt_name = f"{seg.runfunc}_optimized"
                optimized_symbols[opt_name] = make_optimized_kernel(
                    rec.recognized_as, in_obs, out_obs
                )
                platforms[0] = PlatformBinding(
                    name="cpu",
                    runfunc=opt_name,
                    shared_object=OPTIMIZED_SHARED_OBJECT,
                )
            if substitute in ("accelerator", "both"):
                accel_name = f"{seg.runfunc}_accel"
                accel_symbols[accel_name] = make_accelerator_kernel(
                    rec.recognized_as, in_obs, out_obs
                )
                binding = PlatformBinding(
                    name="fft",
                    runfunc=accel_name,
                    shared_object=ACCEL_SHARED_OBJECT,
                )
                accel_job_sizes[accel_name] = rec.length
                if substitute == "accelerator":
                    # force accelerator execution for the measurement variant
                    platforms = [binding]
                else:
                    platforms.append(binding)
        node_platforms[seg.name] = platforms

    if optimized_symbols:
        library.register_shared_object(OPTIMIZED_SHARED_OBJECT, optimized_symbols)
    if accel_symbols:
        library.register_shared_object(ACCEL_SHARED_OBJECT, accel_symbols)

    for seg in outlined:
        builder.node(
            seg.name,
            args=seg.argument_names(),
            platforms=node_platforms[seg.name],
        )
    for i, j in _dataflow_edges(outlined):
        builder.edge(outlined[i].name, outlined[j].name)

    return GeneratedApplication(
        graph=builder.build(),
        library=library,
        substitute=substitute,
        recognized=recognized,
        accel_job_sizes=accel_job_sizes,
    )
