"""Automatic application conversion (paper Sec. II-E, Fig. 5).

Converts a monolithic, unlabeled Python function into a framework-
compatible DAG application through the paper's pipeline, stage for stage:

1. **Trace instrumentation** (:mod:`repro.toolchain.tracing`) — a
   ``sys.settrace`` line tracer (the TraceAtlas analog) records the dynamic
   execution trace of the program over its top-level statement blocks.
2. **Kernel detection** (:mod:`repro.toolchain.trace_analysis`) — blocks
   whose dynamic work dominates the trace are labeled *kernels*; the
   remaining contiguous runs of blocks become *non-kernels*.
3. **Memory analysis** (:mod:`repro.toolchain.memory_analysis`) — static
   liveness over the AST plus dynamic type/size observation at segment
   boundaries determine each variable's storage requirements.
4. **Code outlining** (:mod:`repro.toolchain.outline`) — the LLVM
   CodeExtractor analog refactors each segment into a standalone function
   reading/writing framework variables.
5. **Kernel recognition** (:mod:`repro.toolchain.recognition`) — detected
   kernels are matched (normalized-AST hash + operational probe) against a
   library of known computations; a recognized naive DFT/IDFT is rebound to
   an optimized FFT runfunc and given an accelerator platform entry.
6. **DAG generation** (:mod:`repro.toolchain.dag_generation`) — emits the
   Listing-1-compatible task graph and the generated kernel shared object.

:func:`repro.toolchain.pipeline.convert` runs all stages.
"""

from repro.toolchain.blocks import StatementBlock, split_into_blocks
from repro.toolchain.tracing import DynamicTrace, trace_function
from repro.toolchain.trace_analysis import Segment, detect_kernels
from repro.toolchain.memory_analysis import (
    VariableObservation,
    analyze_liveness,
    observe_segments,
)
from repro.toolchain.outline import OutlinedSegment, outline_segments
from repro.toolchain.recognition import RecognitionResult, recognize_kernels
from repro.toolchain.pipeline import ConversionResult, convert

__all__ = [
    "StatementBlock",
    "split_into_blocks",
    "DynamicTrace",
    "trace_function",
    "Segment",
    "detect_kernels",
    "VariableObservation",
    "analyze_liveness",
    "observe_segments",
    "OutlinedSegment",
    "outline_segments",
    "RecognitionResult",
    "recognize_kernels",
    "ConversionResult",
    "convert",
]
