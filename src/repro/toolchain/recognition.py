"""Kernel recognition and optimized substitution (paper Sec. II-E, III-F).

Recognizing "a naive for loop-based DFT would allow this compilation
process to substitute in a call to an FFT library or add support for an
FFT accelerator".  Recognition combines:

* a **normalized-AST hash** — variable names canonicalized by first
  appearance, constants kept — which fingerprints the kernel's shape and
  caches prior decisions, and
* an **operational probe** — the outlined kernel is run on synthesized
  inputs and its output compared against each known reference computation
  (forward/inverse DFT).  Only semantically verified kernels are rebound,
  so the substitution can never change program output.

A recognized kernel's DAG node gets its ``cpu`` runfunc redirected to an
optimized implementation in ``fft_optimized.so`` (the FFTW-analog: NumPy's
compiled FFT) and gains an ``fft`` accelerator platform entry in
``fft_accel_auto.so`` that drives the device through the DMA protocol —
via the per-platform ``shared_object`` key, exactly like Listing 1.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.appmodel.library import KernelContext
from repro.common.errors import ToolchainError
from repro.toolchain.memory_analysis import VariableObservation
from repro.toolchain.outline import (
    OutlinedSegment,
    decode_variable,
    encode_variable,
)

OPTIMIZED_SHARED_OBJECT = "fft_optimized.so"
ACCEL_SHARED_OBJECT = "fft_accel_auto.so"


# -- normalized AST hashing -----------------------------------------------------------


class _Normalizer(ast.NodeTransformer):
    """Rename variables to canonical v0, v1, ... by first appearance."""

    def __init__(self) -> None:
        self.mapping: dict[str, str] = {}

    def visit_Name(self, node: ast.Name):
        canon = self.mapping.setdefault(node.id, f"v{len(self.mapping)}")
        return ast.copy_location(ast.Name(id=canon, ctx=node.ctx), node)


def normalized_hash(source: str) -> str:
    """Structure hash of a code fragment, stable under variable renaming."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ToolchainError(f"cannot hash unparsable source: {exc}") from exc
    normalized = _Normalizer().visit(tree)
    dump = ast.dump(normalized, annotate_fields=False, include_attributes=False)
    return hashlib.sha256(dump.encode("utf-8")).hexdigest()[:16]


# -- operational probing ---------------------------------------------------------------


def _probe_signature(
    outlined: OutlinedSegment,
) -> tuple[VariableObservation, VariableObservation] | None:
    """Identify (input-array, output-array) for a transform-shaped kernel:
    exactly one complex live-out array (the result — it may also appear as
    a live-in when the loop fills a pre-allocated buffer in place) and
    exactly one *other* complex live-in array of the same length (scalar
    live-ins like ``n`` are tolerated)."""
    complex_out = [
        o for o in outlined.live_out_obs
        if o.kind == "ndarray" and np.dtype(o.dtype).kind == "c"
    ]
    if len(complex_out) != 1:
        return None
    out = complex_out[0]
    complex_in = [
        o for o in outlined.live_in_obs
        if o.kind == "ndarray" and np.dtype(o.dtype).kind == "c"
        and o.name != out.name
    ]
    if len(complex_in) != 1:
        return None
    if complex_in[0].length != out.length:
        return None
    return complex_in[0], out


def _run_probe(
    outlined: OutlinedSegment,
    in_obs: VariableObservation,
    out_obs: VariableObservation,
    probe_input: np.ndarray,
) -> np.ndarray | None:
    """Execute the outlined kernel on a probe input via a scratch instance."""
    from repro.appmodel.builder import GraphBuilder
    from repro.appmodel.instance import ApplicationInstance
    from repro.toolchain.outline import variable_spec_for

    b = GraphBuilder("probe", "probe.so")
    for obs in {o.name: o for o in
                (*outlined.live_in_obs, *outlined.live_out_obs)}.values():
        init = probe_input if obs.name == in_obs.name else None
        if obs.kind == "int" and obs.name != in_obs.name:
            # scalars like n_samples: seed with the probe length
            b.variable(variable_spec_for(obs, initial=probe_input.size))
            continue
        b.variable(variable_spec_for(obs, initial=init))
    b.node("PROBE", args=outlined.argument_names(), cpu=outlined.runfunc)
    graph = b.build()
    instance = ApplicationInstance(graph, instance_id=0, arrival_time=0.0)
    ctx = KernelContext(
        instance.variables,
        arg_names=outlined.argument_names(),
        platform="cpu",
        node_name="PROBE",
        app_name="probe",
    )
    try:
        outlined.kernel(ctx)
    except Exception:
        return None
    result = decode_variable(ctx, out_obs)
    return np.asarray(result, dtype=np.complex128).copy()


_REFERENCES: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "dft": lambda x: np.fft.fft(x),
    "idft": lambda x: np.fft.ifft(x),
}


@dataclass
class RecognitionResult:
    """Outcome for one kernel segment."""

    segment_name: str
    ast_hash: str
    recognized_as: str | None          # "dft" | "idft" | None
    in_var: str = ""
    out_var: str = ""
    length: int = 0


def recognize_kernels(
    outlined: list[OutlinedSegment],
    *,
    probe_lengths: tuple[int, ...] = (16, 32),
    rtol: float = 1e-6,
    atol: float = 1e-8,
    hash_cache: dict[str, str] | None = None,
) -> list[RecognitionResult]:
    """Classify every kernel segment against the reference library.

    ``hash_cache`` (hash → reference name) lets repeated conversions skip
    the probe for kernels already recognized — but a cache hit is still
    probe-verified once per conversion, keeping substitution sound.
    """
    results: list[RecognitionResult] = []
    for seg in outlined:
        if not seg.is_kernel:
            continue
        ast_hash = normalized_hash(seg.source)
        result = RecognitionResult(segment_name=seg.name, ast_hash=ast_hash,
                                   recognized_as=None)
        sig = _probe_signature(seg)
        if sig is not None:
            in_obs, out_obs = sig
            candidates = list(_REFERENCES)
            if hash_cache and ast_hash in hash_cache:
                cached = hash_cache[ast_hash]
                candidates = [cached] + [c for c in candidates if c != cached]
            for ref_name in candidates:
                ref = _REFERENCES[ref_name]
                ok = True
                for n in probe_lengths:
                    if in_obs.length and n > in_obs.length:
                        n = in_obs.length
                    rng = np.random.default_rng(0xBEEF + n)
                    probe = (
                        rng.standard_normal(in_obs.length)
                        + 1j * rng.standard_normal(in_obs.length)
                    ).astype(np.dtype(in_obs.dtype))
                    got = _run_probe(seg, in_obs, out_obs, probe)
                    if got is None or not np.allclose(
                        got, ref(probe.astype(np.complex128)),
                        rtol=rtol, atol=atol,
                    ):
                        ok = False
                        break
                if ok:
                    result.recognized_as = ref_name
                    result.in_var = in_obs.name
                    result.out_var = out_obs.name
                    result.length = in_obs.length
                    if hash_cache is not None:
                        hash_cache[ast_hash] = ref_name
                    break
        results.append(result)
    return results


# -- optimized replacement kernels --------------------------------------------------------


def make_optimized_kernel(
    kind: str,
    in_obs: VariableObservation,
    out_obs: VariableObservation,
    extra_outs: tuple[VariableObservation, ...] = (),
):
    """The FFTW-analog invocation with the recognized kernel's signature."""
    ref = _REFERENCES[kind]

    def kernel(ctx: KernelContext) -> None:
        data = np.asarray(decode_variable(ctx, in_obs), dtype=np.complex128)
        encode_variable(ctx, out_obs, ref(data))
        # Live-outs the original loop also produced (indices, accumulators)
        # keep their framework defaults; transform output is what matters.

    kernel.__name__ = f"optimized_{kind}"
    return kernel


def make_accelerator_kernel(
    kind: str,
    in_obs: VariableObservation,
    out_obs: VariableObservation,
):
    """An accelerator invocation driving the device's DMA protocol."""
    inverse = kind == "idft"

    def kernel(ctx: KernelContext) -> None:
        device = ctx.device
        if device is None:
            raise ToolchainError(
                f"accelerator kernel for {ctx.node_name!r} invoked without "
                "a device"
            )
        data = np.asarray(decode_variable(ctx, in_obs), dtype=np.complex64)
        device.load(data, inverse=inverse)
        device.start()
        device.step()
        result = device.read_result()
        encode_variable(ctx, out_obs, result.astype(np.complex128))

    kernel.__name__ = f"accel_{kind}"
    return kernel
