"""Dynamic trace instrumentation and collection (the TraceAtlas analog).

The LLVM flow compiles the application with tracing hooks and dumps a
runtime trace to disk.  Here, a ``sys.settrace`` line tracer records every
executed line of the target function; per-block dynamic event counts are
the hotness signal (a loop's block accumulates one event per executed line
per iteration), and the block-visit sequence is the control-flow trace.
"""

from __future__ import annotations

import sys
from collections.abc import Callable
from dataclasses import dataclass

from repro.common.errors import ToolchainError
from repro.toolchain.blocks import FunctionBlocks, split_into_blocks


@dataclass
class DynamicTrace:
    """Collected trace: dynamic event counts and block visit order."""

    blocks: FunctionBlocks
    line_events: dict[int, int]          # block index -> dynamic line events
    visit_sequence: list[int]            # deduped consecutive block visits
    total_events: int
    return_value: object = None

    def events_of(self, block_index: int) -> int:
        return self.line_events.get(block_index, 0)

    def hotness(self, block_index: int) -> float:
        """Share of all dynamic events spent in this block."""
        if self.total_events == 0:
            return 0.0
        return self.events_of(block_index) / self.total_events

    def amplification(self, block_index: int) -> float:
        """Dynamic events per static line — loop-iteration amplification."""
        block = self.blocks.blocks[block_index]
        return self.events_of(block_index) / max(1, block.static_lines)


def trace_function(
    func: Callable,
    args: tuple = (),
    kwargs: dict | None = None,
    *,
    blocks: FunctionBlocks | None = None,
) -> DynamicTrace:
    """Execute ``func(*args, **kwargs)`` under line tracing.

    Only frames whose code object belongs to ``func`` are instrumented, so
    library calls inside a block (e.g. ``np.fft.fft``) count as a single
    event — analogous to an IR call instruction — while interpreted loops
    accumulate per-iteration events.
    """
    if blocks is None:
        blocks = split_into_blocks(func)
    kwargs = kwargs or {}
    target_code = func.__code__
    counts: dict[int, int] = {}
    sequence: list[int] = []
    total = 0
    # The function's reported line numbers are absolute in its source file;
    # our blocks are numbered within the dedented extract.  Align them.
    offset = target_code.co_firstlineno - 1

    def tracer(frame, event, arg):
        nonlocal total
        if frame.f_code is not target_code:
            return None  # do not descend into callees
        if event == "line":
            rel = frame.f_lineno - offset
            block_idx = blocks.block_of_line(rel)
            if block_idx is not None:
                counts[block_idx] = counts.get(block_idx, 0) + 1
                total += 1
                if not sequence or sequence[-1] != block_idx:
                    sequence.append(block_idx)
        return tracer

    old = sys.gettrace()
    sys.settrace(tracer)
    try:
        result = func(*args, **kwargs)
    except Exception as exc:
        raise ToolchainError(
            f"traced execution of {func.__name__!r} failed: {exc}"
        ) from exc
    finally:
        sys.settrace(old)
    if total == 0:
        raise ToolchainError(
            f"trace of {func.__name__!r} recorded no events (empty function?)"
        )
    return DynamicTrace(
        blocks=blocks,
        line_events=counts,
        visit_sequence=sequence,
        total_events=total,
        return_value=result,
    )
