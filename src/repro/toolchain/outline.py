"""Code outlining — the LLVM CodeExtractor analog.

Each kernel / non-kernel segment is refactored into a standalone function
with the framework's kernel calling convention: read live-in variables out
of the instance's emulated memory, execute the original statements
unchanged, write live-out variables back.  The original application
becomes "a sequence of function calls, where each function call invokes the
proper group of blocks necessary to recreate the original application
behavior".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.appmodel.library import KernelContext
from repro.appmodel.variables import VariableSpec, buffer_spec, scalar_spec
from repro.common.errors import ToolchainError
from repro.toolchain.blocks import FunctionBlocks
from repro.toolchain.memory_analysis import SegmentLiveness, VariableObservation
from repro.toolchain.trace_analysis import Segment


# -- value <-> framework-variable codecs --------------------------------------------


def variable_spec_for(
    obs: VariableObservation, initial: object = None
) -> VariableSpec:
    """A Listing-1 variable declaration for an observed variable.

    When ``initial`` is given its byte image becomes the JSON ``val``
    initializer (how the toolchain bakes the monolithic function's argument
    values into the generated application).
    """
    if obs.kind == "int":
        return scalar_spec(obs.name, int(initial) if initial is not None else 0,
                           nbytes=8)
    if obs.kind == "float":
        init = np.float64(initial if initial is not None else 0.0)
        return buffer_spec(obs.name, 8, init=np.atleast_1d(init),
                           dtype_hint="float64")
    if obs.kind == "complex":
        init = np.complex128(initial if initial is not None else 0.0)
        return buffer_spec(obs.name, 16, init=np.atleast_1d(init),
                           dtype_hint="complex128")
    if obs.kind == "ndarray":
        init_arr = None
        if initial is not None:
            init_arr = np.asarray(initial, dtype=np.dtype(obs.dtype)).reshape(-1)
        return buffer_spec(obs.name, obs.nbytes, init=init_arr,
                           dtype_hint=obs.dtype)
    if obs.kind == "str":
        raw = b""
        if initial is not None:
            raw = str(initial).encode("utf-8")
            if len(raw) > obs.length:
                raise ToolchainError(
                    f"string {obs.name!r} initializer exceeds observed capacity"
                )
        return buffer_spec(obs.name, obs.length, init=raw, dtype_hint="uint8")
    raise ToolchainError(f"unsupported variable kind {obs.kind!r}")


def decode_variable(ctx: KernelContext, obs: VariableObservation) -> object:
    """Materialize a framework variable as the Python value the original
    code expects."""
    if obs.kind == "int":
        return ctx.int(obs.name)
    if obs.kind == "float":
        return float(ctx.array(obs.name, np.float64)[0])
    if obs.kind == "complex":
        return complex(ctx.array(obs.name, np.complex128)[0])
    if obs.kind == "ndarray":
        # A view into emulated memory: in-place writes are shared-memory
        # communication, exactly as for the handcrafted applications.
        return ctx.array(obs.name, np.dtype(obs.dtype), obs.length)
    if obs.kind == "str":
        raw = bytes(ctx.array(obs.name, np.uint8))
        return raw.rstrip(b"\x00").decode("utf-8")
    raise ToolchainError(f"unsupported variable kind {obs.kind!r}")


def encode_variable(ctx: KernelContext, obs: VariableObservation,
                    value: object) -> None:
    """Write a Python value back into its framework variable."""
    if obs.kind == "int":
        ctx.set_int(obs.name, int(value))
        return
    if obs.kind == "float":
        ctx.array(obs.name, np.float64)[0] = np.float64(value)
        return
    if obs.kind == "complex":
        ctx.array(obs.name, np.complex128)[0] = np.complex128(value)
        return
    if obs.kind == "ndarray":
        target = ctx.array(obs.name, np.dtype(obs.dtype), obs.length)
        arr = np.asarray(value, dtype=np.dtype(obs.dtype)).reshape(-1)
        if arr.size != obs.length:
            raise ToolchainError(
                f"variable {obs.name!r}: runtime length {arr.size} != "
                f"declared {obs.length}"
            )
        # May alias `target` when the kernel mutated the view in place.
        target[:] = arr
        return
    if obs.kind == "str":
        raw = str(value).encode("utf-8")
        buf = ctx.array(obs.name, np.uint8)
        if len(raw) > buf.size:
            raise ToolchainError(
                f"string {obs.name!r} grew past its declared capacity"
            )
        buf[:] = 0
        buf[: len(raw)] = np.frombuffer(raw, dtype=np.uint8)
        return
    raise ToolchainError(f"unsupported variable kind {obs.kind!r}")


# -- outlined segments ---------------------------------------------------------------


@dataclass
class OutlinedSegment:
    """One segment refactored into a framework kernel."""

    segment: Segment
    liveness: SegmentLiveness
    runfunc: str
    kernel: object                      # Kernel callable
    source: str
    live_in_obs: tuple[VariableObservation, ...]
    live_out_obs: tuple[VariableObservation, ...]

    @property
    def name(self) -> str:
        return self.segment.name

    @property
    def is_kernel(self) -> bool:
        return self.segment.is_kernel

    def argument_names(self) -> tuple[str, ...]:
        seen: list[str] = []
        for obs in (*self.live_in_obs, *self.live_out_obs):
            if obs.name not in seen:
                seen.append(obs.name)
        return tuple(seen)


def _make_kernel(
    code,
    global_ns: dict,
    live_in: tuple[VariableObservation, ...],
    live_out: tuple[VariableObservation, ...],
):
    def kernel(ctx: KernelContext) -> None:
        env = {obs.name: decode_variable(ctx, obs) for obs in live_in}
        exec(code, global_ns, env)  # noqa: S102 - outlined user code
        for obs in live_out:
            if obs.name not in env:
                raise ToolchainError(
                    f"outlined segment did not produce live-out {obs.name!r}"
                )
            encode_variable(ctx, obs, env[obs.name])

    return kernel


def outline_segments(
    blocks: FunctionBlocks,
    segments: list[Segment],
    liveness: list[SegmentLiveness],
    observations: dict[str, VariableObservation],
    global_ns: dict,
    *,
    func_name: str = "app",
) -> list[OutlinedSegment]:
    """Refactor every segment into a standalone framework kernel."""
    outlined: list[OutlinedSegment] = []
    for seg, info in zip(segments, liveness):
        source = "\n".join(blocks.blocks[bi].source for bi in seg.block_indices)
        try:
            code = compile(source, f"<outlined {func_name}.{seg.name}>", "exec")
        except SyntaxError as exc:  # pragma: no cover - source came from ast
            raise ToolchainError(
                f"cannot compile outlined segment {seg.name}: {exc}"
            ) from exc

        def obs_for(names: tuple[str, ...]) -> tuple[VariableObservation, ...]:
            missing = [n for n in names if n not in observations]
            if missing:
                raise ToolchainError(
                    f"segment {seg.name}: no observation for {missing}"
                )
            return tuple(observations[n] for n in names)

        live_in_obs = obs_for(info.live_in)
        live_out_obs = obs_for(info.live_out)
        runfunc = f"auto_{func_name}_{seg.name.lower()}"
        outlined.append(
            OutlinedSegment(
                segment=seg,
                liveness=info,
                runfunc=runfunc,
                kernel=_make_kernel(code, global_ns, live_in_obs, live_out_obs),
                source=source,
                live_in_obs=live_in_obs,
                live_out_obs=live_out_obs,
            )
        )
    return outlined
