"""Memory-requirement analysis for outlined segments.

Static part: per-segment def/use sets from the AST give each segment's
live-in and live-out variables (what the outlined function must read from
and write back to the framework's memory).

Dynamic part: the segments are executed once, in order, in a controlled
namespace; at every segment boundary the types and sizes of the live
variables are observed.  This is the analog of the paper's analysis of
"static memory allocation in terms of variable declarations as well as
dynamic memory allocation by attempting to statically determine the
parameters passed into initial malloc/calloc calls" — in Python the
observation *is* the allocation record.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ToolchainError
from repro.toolchain.blocks import FunctionBlocks
from repro.toolchain.trace_analysis import Segment

_SUPPORTED_KINDS = ("int", "float", "complex", "ndarray", "str")


@dataclass(frozen=True)
class VariableObservation:
    """Observed runtime storage requirements of one variable."""

    name: str
    kind: str                 # one of _SUPPORTED_KINDS
    dtype: str = ""           # ndarray only
    length: int = 0           # ndarray: element count; str: max bytes
    nbytes: int = 8

    def describe(self) -> str:
        if self.kind == "ndarray":
            return f"{self.name}: {self.dtype}[{self.length}] ({self.nbytes} B)"
        return f"{self.name}: {self.kind} ({self.nbytes} B)"


def observe_value(name: str, value: object) -> VariableObservation:
    """Classify a runtime value into a storable observation."""
    if isinstance(value, (bool, int, np.integer)):
        return VariableObservation(name=name, kind="int", nbytes=8)
    if isinstance(value, (float, np.floating)):
        return VariableObservation(name=name, kind="float", nbytes=8)
    if isinstance(value, (complex, np.complexfloating)):
        return VariableObservation(name=name, kind="complex", nbytes=16)
    if isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise ToolchainError(
                f"variable {name!r}: only 1-D arrays cross segment "
                f"boundaries (got shape {value.shape}); flatten it"
            )
        return VariableObservation(
            name=name,
            kind="ndarray",
            dtype=value.dtype.str,
            length=int(value.size),
            nbytes=int(value.nbytes),
        )
    if isinstance(value, str):
        raw = value.encode("utf-8")
        # Headroom for paths/labels that vary slightly between runs.
        cap = max(64, 2 * len(raw))
        return VariableObservation(name=name, kind="str", length=cap, nbytes=cap)
    if isinstance(value, list) and value and all(
        isinstance(v, (int, float, complex, np.number)) for v in value
    ):
        arr = np.asarray(value)
        return VariableObservation(
            name=name,
            kind="ndarray",
            dtype=arr.dtype.str,
            length=int(arr.size),
            nbytes=int(arr.nbytes),
        )
    raise ToolchainError(
        f"variable {name!r} of type {type(value).__name__} cannot cross a "
        f"segment boundary (supported: {_SUPPORTED_KINDS}, numeric lists)"
    )


# -- static liveness ----------------------------------------------------------------


class _DefUse(ast.NodeVisitor):
    """Defs and uses of simple names within one statement block.

    ``open(path, "w"/"a")`` and ``open(path)`` calls are additionally
    tracked as writes/reads of a *file pseudo-resource* keyed by the path
    expression, so file side effects order segments in the generated DAG
    even though no program variable flows between them.
    """

    def __init__(self) -> None:
        self.defs: set[str] = set()
        self.uses: set[str] = set()
        self.resource_defs: set[str] = set()
        self.resource_uses: set[str] = set()

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "open" and node.args:
            key = f"file:{ast.unparse(node.args[0])}"
            mode = ""
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            if any(m in mode for m in ("w", "a", "x", "+")):
                self.resource_defs.add(key)
            else:
                self.resource_uses.add(key)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.defs.add(node.id)
        else:
            # A name that is both read and later written counts as a use if
            # the read could precede the local def; conservatively treat any
            # load as a use unless already defined in this block.
            if node.id not in self.defs:
                self.uses.add(node.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # x += ... both uses and defines x.
        if isinstance(node.target, ast.Name):
            if node.target.id not in self.defs:
                self.uses.add(node.target.id)
            self.defs.add(node.target.id)
        self.visit(node.value)
        if not isinstance(node.target, ast.Name):
            self.visit(node.target)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # x[i] = ... mutates x in place: x is used *and* (re)defined.
        if isinstance(node.ctx, ast.Store) and isinstance(node.value, ast.Name):
            if node.value.id not in self.defs:
                self.uses.add(node.value.id)
            self.defs.add(node.value.id)
        self.generic_visit(node)


@dataclass
class SegmentLiveness:
    segment: Segment
    uses: frozenset[str]
    defs: frozenset[str]
    live_in: tuple[str, ...] = ()
    live_out: tuple[str, ...] = ()
    resource_uses: frozenset[str] = frozenset()
    resource_defs: frozenset[str] = frozenset()


def analyze_liveness(
    blocks: FunctionBlocks,
    segments: list[Segment],
    *,
    external_names: frozenset[str] = frozenset(),
    result_names: frozenset[str] = frozenset(),
    initial_names: frozenset[str] = frozenset(),
) -> list[SegmentLiveness]:
    """Per-segment live-in/live-out over the linear segment sequence.

    ``external_names`` (modules and builtins) are excluded from the
    variable table; ``initial_names`` (the function's arguments) are
    defined before the first segment; ``result_names`` are treated as used
    after the last segment (the application's outputs).
    """
    infos: list[SegmentLiveness] = []
    for seg in segments:
        du = _DefUse()
        for bi in seg.block_indices:
            du.visit(blocks.blocks[bi].node)
        infos.append(
            SegmentLiveness(
                segment=seg,
                uses=frozenset(du.uses - external_names),
                defs=frozenset(du.defs - external_names),
                resource_uses=frozenset(du.resource_uses),
                resource_defs=frozenset(du.resource_defs),
            )
        )
    defined_before: set[str] = set(initial_names)
    for info in infos:
        info.live_in = tuple(sorted(info.uses & defined_before))
        defined_before |= info.defs
    used_after: set[str] = set(result_names)
    for info in reversed(infos):
        info.live_out = tuple(sorted(info.defs & used_after))
        used_after |= info.uses
    return infos


# -- dynamic observation ----------------------------------------------------------------


def observe_segments(
    blocks: FunctionBlocks,
    segments: list[Segment],
    liveness: list[SegmentLiveness],
    global_ns: dict,
    initial_locals: dict | None = None,
) -> dict[str, VariableObservation]:
    """Execute segments in order, observing boundary-crossing variables.

    Returns the final observation per variable name; a variable whose array
    length changed between boundaries is rejected (the framework allocates
    fixed storage at instance initialization, like the JSON ``Variables``).
    """
    env = dict(initial_locals or {})
    observations: dict[str, VariableObservation] = {}
    for name, value in env.items():
        observations[name] = observe_value(name, value)
    for seg, info in zip(segments, liveness):
        source = "\n".join(blocks.blocks[bi].source for bi in seg.block_indices)
        try:
            code = compile(source, f"<segment {seg.name}>", "exec")
            exec(code, global_ns, env)  # noqa: S102 - controlled toolchain input
        except Exception as exc:
            raise ToolchainError(
                f"segment {seg.name} failed during observation run: {exc}"
            ) from exc
        for name in info.live_out:
            if name not in env:
                raise ToolchainError(
                    f"segment {seg.name}: live-out {name!r} was not defined "
                    "at runtime"
                )
            obs = observe_value(name, env[name])
            prev = observations.get(name)
            if prev is not None and prev.kind == obs.kind == "ndarray":
                if prev.nbytes != obs.nbytes or prev.dtype != obs.dtype:
                    raise ToolchainError(
                        f"variable {name!r} changed storage between segments "
                        f"({prev.describe()} -> {obs.describe()}); the "
                        "framework requires fixed allocations"
                    )
            observations[name] = obs
    return observations
