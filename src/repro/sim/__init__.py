"""Discrete-event simulation engine.

A compact generator-coroutine DES in the style of SimPy, purpose-built for
the virtual-time execution backend: an event heap with a virtual clock
(microseconds), processes written as generators that ``yield`` events, and a
host-core resource model with round-robin time slicing and context-switch
overhead (needed to reproduce the paper's resource-manager core-sharing
effects).
"""

from repro.sim.engine import Engine, Event, Timeout, Interrupt, AllOf, AnyOf
from repro.sim.process import Process
from repro.sim.resources import FifoResource, HostCore, Mailbox

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "Process",
    "FifoResource",
    "HostCore",
    "Mailbox",
]
