"""Generator-coroutine processes for the DES engine.

A process is a generator that yields :class:`~repro.sim.engine.Event`
objects; the process suspends until the yielded event fires, and the event's
value becomes the result of the ``yield`` expression.  A process is itself
an event that fires (with the generator's return value) when the generator
finishes, so processes can wait on each other.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import Any

from repro.common.errors import EmulationError
from repro.sim.engine import Engine, Event, Interrupt


class Process(Event):
    """Drives a generator; usable as an event that fires on completion."""

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, engine: Engine, generator: Generator, name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Kick off on the next engine step at the current time so that
        # process creation order, not generator body order, decides ties.
        engine.call_at(engine.now, self._start)

    def _start(self) -> None:
        self._advance(None, None)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._advance(event.value, None)
        else:
            self._advance(None, event.value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise EmulationError(f"cannot interrupt finished process {self.name!r}")
        waiting, self._waiting_on = self._waiting_on, None
        if waiting is not None:
            # Detach from the event we were waiting on; it may still fire
            # later but must no longer resume us.
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.engine.call_at(
            self.engine.now, lambda: self._advance(None, Interrupt(cause))
        )

    def _advance(self, value: Any, exc: BaseException | None) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle the interrupt: treat as clean exit.
            if not self.triggered:
                self.succeed(None)
            return
        if not isinstance(target, Event):
            raise EmulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes must yield Event instances"
            )
        if target.processed:
            # Already fired: resume immediately (same timestamp, new step).
            self.engine.call_at(self.engine.now, lambda: self._resume(target))
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)
