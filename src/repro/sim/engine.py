"""Event heap and virtual clock.

Design notes
------------
* Time is a float in canonical microseconds (see :mod:`repro.common.units`).
* Events are scheduled onto a binary heap keyed ``(time, seq)``; ``seq`` is a
  monotone tiebreaker so same-time events fire in schedule order, which makes
  runs deterministic.
* Callbacks attached to an event run when the heap pops it.  A
  :class:`~repro.sim.process.Process` is itself driven by registering its
  ``_resume`` bound method as a callback on whatever event it yielded.
* The engine is single-threaded by construction; the virtual backend uses it
  to model the multi-threaded C runtime without any host-thread
  nondeterminism (profiling the C runtime's behaviour, not its host).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

from repro.common.errors import EmulationError

# Event lifecycle states.
_PENDING = 0
_SCHEDULED = 1
_FIRED = 2


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    Events are created against an :class:`Engine` and fire at most once,
    carrying an optional ``value``.  ``succeed()`` schedules the event for
    the current instant; ``schedule_at``/``schedule_in`` place it in the
    future.
    """

    __slots__ = ("engine", "callbacks", "value", "_state", "ok")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: list[Callable[[Event], None]] = []
        self.value: Any = None
        self.ok: bool = True
        self._state = _PENDING

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled or has fired."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _FIRED

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event now (at the current virtual time)."""
        if self._state != _PENDING:
            raise EmulationError("event already triggered")
        self.value = value
        self._state = _SCHEDULED
        self.engine._push(self.engine.now, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event now, delivering an exception to waiters."""
        if self._state != _PENDING:
            raise EmulationError("event already triggered")
        self.value = exc
        self.ok = False
        self._state = _SCHEDULED
        self.engine._push(self.engine.now, self)
        return self

    # internal --------------------------------------------------------------

    def _fire(self) -> None:
        self._state = _FIRED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation."""

    __slots__ = ()

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise EmulationError(f"negative timeout delay: {delay}")
        super().__init__(engine)
        self.value = value
        self._state = _SCHEDULED
        engine._push(engine.now + delay, self)


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class _Composite(Event):
    """Base for AllOf/AnyOf condition events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, engine: "Engine", events: list[Event]) -> None:
        super().__init__(engine)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            if ev.processed:
                self._child_fired(ev)
            else:
                ev.callbacks.append(self._child_fired)

    def _child_fired(self, ev: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Composite):
    """Fires when every constituent event has fired; value = list of values.

    An empty ``AllOf`` is vacuously satisfied and fires immediately with
    ``[]``.
    """

    __slots__ = ()

    def _child_fired(self, ev: Event) -> None:
        self._remaining -= 1
        if self._remaining == 0 and self._state == _PENDING:
            self.succeed([e.value for e in self.events])


class AnyOf(_Composite):
    """Fires when the first constituent event fires; value = (event, value).

    An empty ``AnyOf`` is rejected: no constituent can ever fire, and the
    documented ``(event, value)`` contract has no honest empty-case value.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine", events: list[Event]) -> None:
        if not events:
            raise EmulationError(
                "AnyOf requires at least one event (an empty AnyOf can "
                "never fire)"
            )
        super().__init__(engine, events)

    def _child_fired(self, ev: Event) -> None:
        if self._state == _PENDING:
            self.succeed((ev, ev.value))


class _Callback(Event):
    """An already-scheduled event that invokes a stored function on firing.

    Backs :meth:`Engine.call_at`: one object instead of the
    Event + closure pair, with the function invoked before any externally
    attached callbacks — the same order the closure-based implementation
    produced.
    """

    __slots__ = ("fn",)

    def __init__(self, engine: "Engine", fn: Callable[[], None]) -> None:
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.ok = True
        self._state = _SCHEDULED
        self.fn = fn

    def _fire(self) -> None:
        self._state = _FIRED
        self.fn()
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)


class Engine:
    """The event loop: a heap of ``(time, seq, event)`` and a clock."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        #: cumulative count of events fired by run()/step() (perf metric)
        self.events_fired = 0

    # scheduling ------------------------------------------------------------

    def _push(self, at: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, event))

    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` µs from now."""
        return Timeout(self, delay, value)

    def schedule_at(self, at: float, value: Any = None) -> Event:
        """An event firing at absolute virtual time ``at`` (µs)."""
        if at < self.now:
            raise EmulationError(f"cannot schedule in the past: {at} < {self.now}")
        ev = Event(self)
        ev.value = value
        ev._state = _SCHEDULED
        self._push(at, ev)
        return ev

    def call_at(self, at: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute time ``at``."""
        if at < self.now:
            raise EmulationError(f"cannot schedule in the past: {at} < {self.now}")
        ev = _Callback(self, fn)
        self._push(at, ev)
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` µs."""
        return self.call_at(self.now + delay, fn)

    def process(self, generator) -> "Process":
        """Start a generator as a simulation process."""
        from repro.sim.process import Process

        return Process(self, generator)

    # execution -------------------------------------------------------------

    def step(self) -> None:
        """Pop and fire the next event."""
        at, _seq, event = heapq.heappop(self._heap)
        self.now = at
        self.events_fired += 1
        event._fire()

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Drain the heap; returns the final clock value.

        ``until`` stops the clock at a horizon (events beyond it stay
        queued); ``max_events`` is a runaway guard for tests.
        """
        if self._running:
            raise EmulationError("engine is already running (re-entrant run())")
        self._running = True
        fired = 0
        # Local bindings: the inner loop runs once per event for millions of
        # events, so every attribute lookup shaved here is measurable.
        heap = self._heap
        pop = heapq.heappop
        try:
            if until is None and max_events is None:
                # Hot path: no horizon, no guard, minimal per-event work.
                while heap:
                    at, _seq, event = pop(heap)
                    self.now = at
                    event._fire()
                    fired += 1
            else:
                while heap:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        break
                    at, _seq, event = pop(heap)
                    self.now = at
                    event._fire()
                    fired += 1
                    if max_events is not None and fired >= max_events:
                        raise EmulationError(
                            f"exceeded max_events={max_events}; possible livelock"
                        )
        finally:
            self.events_fired += fired
            self._running = False
        return self.now

    def peek(self) -> float | None:
        """Time of the next queued event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now:.3f}us, queued={len(self._heap)})"
