"""Engine variant backed by the compiled core extension.

Same observable behaviour as :class:`repro.sim.engine.Engine` — events,
processes, resources, and error messages are shared with the pure
implementation — but the event heap and the ``run()`` dispatch loop live
in C (``repro._native._coreext``).  The heap owns the monotone ``seq``
counter, so ``_push`` is a single C call and ``_seq`` is a read-only
mirror of it.
"""

from __future__ import annotations

from repro import _native
from repro.common.errors import EmulationError
from repro.sim.engine import Engine, Event


class CompiledEngine(Engine):
    """Drop-in Engine with the C heap + C run loop."""

    def __init__(self) -> None:
        ext = _native.load()
        if ext is None:  # pragma: no cover - guarded by repro.core
            raise EmulationError(
                "compiled core extension is not importable; "
                "use the pure Engine instead"
            )
        self._ext = ext
        self.now: float = 0.0
        self._heap = ext.EventHeap()
        self._running = False
        self.events_fired = 0

    # The heap assigns seq on push; expose the counter under the pure
    # engine's attribute name for callers that report events_scheduled.
    @property
    def _seq(self) -> int:
        return self._heap.seq

    def _push(self, at: float, event: Event) -> None:
        self._heap.push(at, event)

    def step(self) -> None:
        at, _seq, event = self._heap.pop()
        self.now = at
        self.events_fired += 1
        event._fire()

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        if self._running:
            raise EmulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            return self._ext.run_loop(self, self._heap, until, max_events)
        finally:
            self._running = False

    def peek(self) -> float | None:
        return self._heap.peek_at()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CompiledEngine(now={self.now:.3f}us, queued={len(self._heap)})"
