"""Shared-resource models for the DES engine.

Three primitives:

* :class:`FifoResource` — classic counted resource with FIFO grant order.
* :class:`HostCore` — a physical CPU core shared by emulated runtime
  threads, modeled with round-robin time slicing and a per-preemption
  context-switch cost.  This is the mechanism behind the paper's Fig. 9
  observation that two FFT-accelerator resource-manager threads sharing one
  A53 core "keep cyclically preempting each other" until preemption overhead
  cancels the second accelerator's benefit.
* :class:`Mailbox` — an unbounded FIFO channel between processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import EmulationError
from repro.sim.engine import Engine, Event


class FifoResource:
    """A counted resource; ``request()`` returns an event granting a slot."""

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise EmulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Event that fires when a slot is granted to the caller."""
        ev = self.engine.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise EmulationError("release() without matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class HostCore:
    """A host CPU core time-shared by emulated runtime threads.

    ``consume(owner, duration)`` is a sub-generator (use ``yield from``)
    that charges ``duration`` µs of CPU work to the core on behalf of
    ``owner``.  When multiple owners contend, work proceeds in round-robin
    quanta; every switch to a different owner costs ``switch_cost`` µs of
    core time (charged to the incoming owner's wait, as in OS preemption).

    ``speed`` scales durations: a core with speed 0.5 takes twice as long
    for the same nominal work (used for LITTLE overlay cores on Odroid).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        quantum: float = 100.0,
        switch_cost: float = 8.0,
        speed: float = 1.0,
    ) -> None:
        if quantum <= 0 or switch_cost < 0 or speed <= 0:
            raise EmulationError("invalid HostCore parameters")
        self.engine = engine
        self.name = name
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.speed = speed
        self._token = FifoResource(engine, 1)
        self._last_owner: object | None = None
        self.busy_time: float = 0.0
        self.switch_count: int = 0

    def occupied(self) -> bool:
        return self._token.in_use > 0

    @property
    def contention(self) -> int:
        """Number of threads currently holding or waiting for the core."""
        return self._token.in_use + self._token.queue_length

    def consume(self, owner: object, duration: float):
        """Sub-generator: charge ``duration`` µs of work (pre-speed-scaling).

        The nominal ``duration`` is divided by the core's ``speed`` to get
        core time, then executed in quanta with preemption modeling.
        """
        remaining = duration / self.speed
        engine = self.engine
        while remaining > 0.0:
            yield self._token.request()
            if self._last_owner is not owner and self._last_owner is not None:
                # Context switch: the core spends switch_cost before the
                # incoming thread makes progress.
                self.switch_count += 1
                self.busy_time += self.switch_cost
                yield engine.timeout(self.switch_cost)
            self._last_owner = owner
            # Fast path: nobody else wants the core — run to completion.
            if self._token.queue_length == 0:
                slice_len = remaining
            else:
                slice_len = min(self.quantum, remaining)
            self.busy_time += slice_len
            yield engine.timeout(slice_len)
            remaining -= slice_len
            self._token.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HostCore({self.name!r}, speed={self.speed})"


class Mailbox:
    """Unbounded FIFO channel: ``put`` values, ``get`` returns an event."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        ev = self.engine.event()
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
