"""Shared-resource models for the DES engine.

Three primitives:

* :class:`FifoResource` — classic counted resource with FIFO grant order.
* :class:`HostCore` — a physical CPU core shared by emulated runtime
  threads, modeled with round-robin time slicing and a per-preemption
  context-switch cost.  This is the mechanism behind the paper's Fig. 9
  observation that two FFT-accelerator resource-manager threads sharing one
  A53 core "keep cyclically preempting each other" until preemption overhead
  cancels the second accelerator's benefit.
* :class:`Mailbox` — an unbounded FIFO channel between processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.common.errors import EmulationError
from repro.sim.engine import _FIRED, _SCHEDULED, Engine, Event


class FifoResource:
    """A counted resource; ``request()`` returns an event granting a slot."""

    def __init__(self, engine: Engine, capacity: int = 1) -> None:
        if capacity < 1:
            raise EmulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[Event] = deque()

    def request(self) -> Event:
        """Event that fires when a slot is granted to the caller."""
        ev = self.engine.event()
        if self.in_use < self.capacity:
            self.in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return a slot; hands it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise EmulationError("release() without matching request()")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiters)


class HostCore:
    """A host CPU core time-shared by emulated runtime threads.

    ``consume(owner, duration)`` is a sub-generator (use ``yield from``)
    that charges ``duration`` µs of CPU work to the core on behalf of
    ``owner``.  When multiple owners contend, work proceeds in round-robin
    quanta; every switch to a different owner costs ``switch_cost`` µs of
    core time (charged to the incoming owner's wait, as in OS preemption).

    ``speed`` scales durations: a core with speed 0.5 takes twice as long
    for the same nominal work (used for LITTLE overlay cores on Odroid).
    """

    def __init__(
        self,
        engine: Engine,
        name: str,
        *,
        quantum: float = 100.0,
        switch_cost: float = 8.0,
        speed: float = 1.0,
    ) -> None:
        if quantum <= 0 or switch_cost < 0 or speed <= 0:
            raise EmulationError("invalid HostCore parameters")
        self.engine = engine
        self.name = name
        self.quantum = quantum
        self.switch_cost = switch_cost
        self.speed = speed
        self._token = FifoResource(engine, 1)
        self._last_owner: object | None = None
        self.busy_time: float = 0.0
        self.switch_count: int = 0

    def occupied(self) -> bool:
        return self._token.in_use > 0

    @property
    def contention(self) -> int:
        """Number of threads currently holding or waiting for the core."""
        return self._token.in_use + self._token.queue_length

    def consume(self, owner: object, duration: float):
        """Sub-generator: charge ``duration`` µs of work (pre-speed-scaling).

        The nominal ``duration`` is divided by the core's ``speed`` to get
        core time, then executed in quanta with preemption modeling.  The
        actual charging is driven by a single :class:`_Consume` event that
        re-pushes itself through the grant/switch/slice states, so the
        owning process suspends and resumes exactly once per ``consume``
        regardless of how many quanta the work spans.
        """
        remaining = duration / self.speed
        if remaining > 0.0:
            yield _Consume(self, owner, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HostCore({self.name!r}, speed={self.speed})"


# _Consume phases: what the next heap pop of the event means.
_GRANTED = 0   # core slot acquired; decide context switch / slice length
_SWITCHED = 1  # context-switch charge elapsed; start the slice
_RAN = 2       # slice elapsed; release and either re-acquire or finish


class _Consume(Event):
    """Single-event fast path behind :meth:`HostCore.consume`.

    The straightforward implementation charges each quantum with a
    request-event → timeout → release sequence: two generator resumes and
    two heap entries per quantum even when nobody contends for the core.
    This event collapses that machinery — it stands in for its own grant
    notification and its own timer by re-pushing itself onto the heap, and
    fires (resuming the owning process) only when the full duration has
    been charged.

    Bit-identical by construction: every decision point (grant, switch
    charge, slice-length choice, release) happens at the same virtual
    instant and the same heap position as the unoptimized sequence, so
    same-time contenders enroll in the FIFO queue in the same order and
    round-robin slicing degrades identically under contention (the Fig. 9
    preemption anomaly depends on this).
    """

    __slots__ = ("core", "owner", "remaining", "_phase", "_slice")

    def __init__(self, core: HostCore, owner: object, remaining: float) -> None:
        engine = core.engine
        self.engine = engine
        self.callbacks = []
        self.value = None
        self.ok = True
        self._state = _SCHEDULED
        self.core = core
        self.owner = owner
        self.remaining = remaining
        self._slice = 0.0
        self._acquire()

    def _acquire(self) -> None:
        token = self.core._token
        if token.in_use < token.capacity:
            # Uncontended: claim the slot synchronously (exactly what
            # request() would do) and stand in for the grant event by
            # scheduling ourselves at the current instant — same heap
            # position, one less Event allocation, one less resume.
            token.in_use += 1
            self._phase = _GRANTED
            engine = self.engine
            engine._push(engine.now, self)
        else:
            # Contended: enqueue a real waiter event so FifoResource's
            # FIFO grant order is preserved; its firing is our grant.
            ev = token.request()
            ev.callbacks.append(self._granted)

    def _granted(self, _ev: Event | None) -> None:
        core = self.core
        if core._last_owner is not self.owner and core._last_owner is not None:
            # Context switch: the core spends switch_cost before the
            # incoming thread makes progress.
            core.switch_count += 1
            core.busy_time += core.switch_cost
            self._phase = _SWITCHED
            engine = self.engine
            engine._push(engine.now + core.switch_cost, self)
            return
        self._start_slice()

    def _start_slice(self) -> None:
        core = self.core
        core._last_owner = self.owner
        remaining = self.remaining
        # Nobody else wants the core — run to completion in one slice.
        if core._token.queue_length == 0:
            slice_len = remaining
        else:
            slice_len = remaining if core.quantum > remaining else core.quantum
        core.busy_time += slice_len
        self._slice = slice_len
        self._phase = _RAN
        engine = self.engine
        engine._push(engine.now + slice_len, self)

    def _fire(self) -> None:
        phase = self._phase
        if phase == _RAN:
            self.remaining -= self._slice
            self.core._token.release()
            if self.remaining > 0.0:
                self._acquire()
            else:
                self._state = _FIRED
                callbacks, self.callbacks = self.callbacks, []
                for cb in callbacks:
                    cb(self)
        elif phase == _GRANTED:
            self._granted(None)
        else:  # _SWITCHED
            self._start_slice()


class Mailbox:
    """Unbounded FIFO channel: ``put`` values, ``get`` returns an event."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item."""
        engine = self.engine
        ev = Event(engine)
        if self._items:
            # Fast path: the item is already buffered, so build the event
            # pre-scheduled instead of going through succeed()'s state
            # checks — same heap position, less per-call work.
            ev.value = self._items.popleft()
            ev._state = _SCHEDULED
            engine._push(engine.now, ev)
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)
