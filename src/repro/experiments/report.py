"""Regenerate every paper artifact into ``artifacts/``.

Usage::

    python -m repro.experiments.report [--quick] [--outdir artifacts]

``--quick`` runs reduced sweeps (fewer iterations/rates/configs) so the
whole report finishes in a few minutes; the default reproduces the paper's
resolution where practical.  Each artifact file holds the regenerated
table/series plus the shape-check verdict against the paper's qualitative
claims; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path


def _write(outdir: Path, name: str, content: str) -> None:
    path = outdir / name
    path.write_text(content + "\n", encoding="utf-8")
    print(f"  wrote {path}")


def generate_table_i(outdir: Path) -> None:
    from repro.experiments.case_study_2 import render_table_i, run_table_i

    _write(outdir, "table_i.txt", render_table_i(run_table_i()))


def generate_table_ii(outdir: Path) -> None:
    from repro.analysis.tables import format_table
    from repro.experiments.workloads import TABLE_II_COUNTS, table_ii_workload

    rows = []
    for rate in sorted(TABLE_II_COUNTS):
        counts = table_ii_workload(rate).counts()
        rows.append([rate, counts["pulse_doppler"], counts["range_detection"],
                     counts["wifi_tx"], counts["wifi_rx"]])
    _write(
        outdir,
        "table_ii.txt",
        format_table(
            ["rate", "pulse_doppler", "range_detection", "wifi_tx", "wifi_rx"],
            rows,
            title="Table II: instance counts per injection rate",
        ),
    )


def generate_fig9(outdir: Path, quick: bool) -> None:
    from repro.experiments.case_study_1 import (
        check_fig9_shape, render_fig9, run_fig9,
    )

    rows = run_fig9(iterations=10 if quick else 50)
    content = render_fig9(rows)
    content += f"\nshape violations: {check_fig9_shape(rows)!r}"
    _write(outdir, "fig9.txt", content)


def generate_fig10(outdir: Path, quick: bool) -> None:
    from repro.analysis.figures import fig10_chart
    from repro.experiments.case_study_2 import (
        check_fig10_shape, render_fig10, run_fig10,
    )
    from repro.experiments.workloads import TABLE_II_RATES

    rates = TABLE_II_RATES[:3] if quick else TABLE_II_RATES
    points = run_fig10(rates=rates)
    content = render_fig10(points)
    content += "\n\n" + fig10_chart(points)
    content += f"\nshape violations: {check_fig10_shape(points)!r}"
    _write(outdir, "fig10.txt", content)


def generate_fig11(outdir: Path, quick: bool) -> None:
    from repro.analysis.figures import fig11_chart
    from repro.experiments.case_study_3 import (
        check_fig11_shape, render_fig11, run_fig11,
    )
    from repro.experiments.workloads import FIG11_CONFIGS

    if quick:
        configs = ("0BIG+3LTL", "2BIG+2LTL", "3BIG+2LTL",
                   "4BIG+1LTL", "4BIG+2LTL", "4BIG+3LTL")
        rates: tuple[float, ...] = (4.0, 10.0, 18.0)
    else:
        configs = FIG11_CONFIGS
        rates = (4.0, 8.0, 12.0, 18.0)
    points = run_fig11(configs=configs, rates=rates)
    content = render_fig11(points)
    content += "\n\n" + fig11_chart(
        points, configs=("0BIG+3LTL", "3BIG+2LTL", "4BIG+1LTL", "4BIG+3LTL")
    )
    content += f"\nshape violations: {check_fig11_shape(points)!r}"
    _write(outdir, "fig11.txt", content)


def generate_cs4(outdir: Path, quick: bool) -> None:
    from repro.experiments.case_study_4 import (
        check_cs4_shape, render_case_study_4, run_case_study_4,
    )

    result = run_case_study_4(n_samples=96 if quick else 256)
    content = render_case_study_4(result)
    content += f"\nshape violations: {check_cs4_shape(result)!r}"
    _write(outdir, "case_study_4.txt", content)


GENERATORS = {
    "table_i": lambda outdir, quick: generate_table_i(outdir),
    "table_ii": lambda outdir, quick: generate_table_ii(outdir),
    "fig9": generate_fig9,
    "fig10": generate_fig10,
    "fig11": generate_fig11,
    "cs4": generate_cs4,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweeps (minutes instead of tens)")
    parser.add_argument("--outdir", default="artifacts")
    parser.add_argument("--only", nargs="*", choices=sorted(GENERATORS),
                        help="generate only the named artifacts")
    args = parser.parse_args(argv)
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    names = args.only or list(GENERATORS)
    for name in names:
        t0 = time.time()
        print(f"generating {name} ...")
        GENERATORS[name](outdir, args.quick)
        print(f"  {name} done in {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
