"""Case Study 4 — automatic application conversion (paper Sec. III-F).

Converts the monolithic range-detection program with the toolchain, then
executes the generated application on the threaded backend (ZCU102 model,
3 cores + 1 FFT accelerator, FRFS) under three substitution modes:

* ``none`` — the outlined naive loop kernels run as-is;
* ``optimized`` — recognized DFT/IDFT kernels rebound to the optimized FFT
  library invocation (the paper's FFTW substitution, 102× there);
* ``accelerator`` — recognized kernels rebound to the FFT device through
  the full DMA protocol (the paper's fabric substitution, 94× there).

Reported speedups are measured per-kernel service times (naive / variant),
averaged across the DFT kernel executions exactly as the paper reports;
output correctness is checked for every variant.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import monolithic
from repro.runtime.backends.threaded import ThreadedBackend
from repro.runtime.emulation import Emulation
from repro.runtime.workload import validation_workload
from repro.toolchain import ConversionResult, convert

#: Paper-reported speedups for EXPERIMENTS.md comparison.
PAPER_SPEEDUPS = {"optimized": 102.0, "accelerator": 94.0}


@dataclass
class CS4Variant:
    substitute: str
    kernel_times_us: dict[str, float]      # node name -> service time
    dft_mean_us: float
    idft_mean_us: float
    lag: int
    lag_correct: bool


@dataclass
class CS4Result:
    n_samples: int
    kernel_count: int
    io_kernel_count: int
    recognized: list[tuple[str, str]]      # (segment, reference name)
    detection_report: list[dict]
    variants: dict[str, CS4Variant]

    def speedup(self, variant: str) -> float:
        """Average speedup across the DFT kernel executions (paper metric)."""
        base = self.variants["none"]
        other = self.variants[variant]
        dft = base.dft_mean_us / other.dft_mean_us
        return float(dft)

    def idft_speedup(self, variant: str) -> float:
        base = self.variants["none"]
        other = self.variants[variant]
        return float(base.idft_mean_us / other.idft_mean_us)


def _run_variant(
    conversion: ConversionResult,
    substitute: str,
    n_samples: int,
    *,
    config: str = "3C+1F",
    policy: str = "frfs",
) -> CS4Variant:
    gen = conversion.generate(substitute)
    # Register the recognized kernels' transform sizes so accelerator
    # bindings have a timing/oracle model (virtual backend + schedulers).
    from repro.hardware.perfmodel import PerformanceModel

    perf = PerformanceModel()
    for runfunc, points in gen.accel_job_sizes.items():
        perf.set_accel_job(runfunc, points)
    emu = Emulation(
        config=config,
        policy=policy,
        applications={gen.graph.app_name: gen.graph},
        library=gen.library,
        perf_model=perf,
    )
    result = emu.run(
        validation_workload({gen.graph.app_name: 1}), ThreadedBackend()
    )
    kernel_times = {
        rec.task_name: rec.service_time for rec in result.stats.task_records
    }
    recognized_by_kind: dict[str, list[str]] = {"dft": [], "idft": []}
    for r in conversion.recognized_kernels:
        recognized_by_kind[r.recognized_as].append(r.segment_name)
    dft_times = [kernel_times[n] for n in recognized_by_kind["dft"]]
    idft_times = [kernel_times[n] for n in recognized_by_kind["idft"]]
    instance = result.instances[0]
    lag = instance.variables["lag"].as_int()
    return CS4Variant(
        substitute=substitute,
        kernel_times_us=kernel_times,
        dft_mean_us=float(np.mean(dft_times)) if dft_times else 0.0,
        idft_mean_us=float(np.mean(idft_times)) if idft_times else 0.0,
        lag=lag,
        lag_correct=lag == monolithic.expected_lag(n_samples),
    )


def run_case_study_4(
    *,
    n_samples: int = 256,
    workdir: str | None = None,
    config: str = "3C+1F",
) -> CS4Result:
    """The full conversion + three-variant measurement."""
    cleanup = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="cs4_")
        workdir = tmp.name
        cleanup = tmp
    try:
        conversion = convert(
            monolithic.monolithic_range_detection, (n_samples, workdir)
        )
        variants = {
            mode: _run_variant(conversion, mode, n_samples, config=config)
            for mode in ("none", "optimized", "accelerator")
        }
        io_kernels = sum(
            1
            for seg, out in zip(conversion.segments, conversion.outlined)
            if seg.is_kernel and (out.liveness.resource_defs
                                  or out.liveness.resource_uses)
        )
        return CS4Result(
            n_samples=n_samples,
            kernel_count=conversion.kernel_count,
            io_kernel_count=io_kernels,
            recognized=[
                (r.segment_name, r.recognized_as)
                for r in conversion.recognized_kernels
            ],
            detection_report=conversion.detection_report(),
            variants=variants,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def render_case_study_4(result: CS4Result) -> str:
    det = format_table(
        ["segment", "kind", "events", "share", "source"],
        [[r["segment"], r["kind"], r["events"], r["share"], r["source"]]
         for r in result.detection_report],
        title="Case study 4: kernel detection",
    )
    rows = []
    for mode in ("optimized", "accelerator"):
        rows.append(
            [
                mode,
                round(result.speedup(mode), 1),
                round(result.idft_speedup(mode), 1),
                PAPER_SPEEDUPS[mode],
                result.variants[mode].lag_correct,
            ]
        )
    sp = format_table(
        ["substitution", "dft_speedup_x", "idft_speedup_x", "paper_x",
         "output_correct"],
        rows,
        title="Case study 4: recognized-kernel substitution speedups",
    )
    return det + "\n\n" + sp


def check_cs4_shape(result: CS4Result) -> list[str]:
    """The paper's qualitative claims; returns a list of violations."""
    problems: list[str] = []
    if result.kernel_count != 6:
        problems.append(f"expected 6 detected kernels, got {result.kernel_count}")
    if result.io_kernel_count != 3:
        problems.append(
            f"expected 3 file-I/O kernels, got {result.io_kernel_count}"
        )
    kinds = sorted(kind for _seg, kind in result.recognized)
    if kinds != ["dft", "dft", "idft"]:
        problems.append(f"expected 2 DFT + 1 IDFT recognized, got {kinds}")
    for mode in ("optimized", "accelerator"):
        if result.speedup(mode) < 20.0:
            problems.append(f"{mode} substitution should speed DFTs up >=20x")
        if not result.variants[mode].lag_correct:
            problems.append(f"{mode} variant output is incorrect")
    if not result.variants["none"].lag_correct:
        problems.append("baseline variant output is incorrect")
    if result.speedup("optimized") < result.speedup("accelerator"):
        problems.append(
            "optimized (FFTW-analog) should beat the accelerator path "
            "(DMA overhead), as in the paper (102x vs 94x)"
        )
    return problems
