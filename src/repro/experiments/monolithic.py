"""The monolithic, unlabeled range-detection program of Case Study 4.

A single flat function, written the way a domain engineer would prototype
it: synthesize and store the radar capture to disk, read it back, and
process it with simple for-loop DFTs — no kernel annotations, no DAG, no
framework types.  The toolchain must discover its structure on its own.

The paper's conversion detects six kernels here: three of heavy file I/O,
two forward DFTs, and one inverse DFT; the vectorized correlation-spectrum
multiply and the peak search stay non-kernels.
"""

from __future__ import annotations

import cmath
import math
import os

import numpy as np


def monolithic_range_detection(n_samples: int, data_dir: str):
    """Flat range-detection: file round trip + loop DFT processing.

    Returns the detected lag (range gate) of the synthesized echo.
    """
    # -- capture synthesis (cold, vectorized): chirp + delayed echo ---------
    t = np.arange(n_samples) / float(n_samples)
    ref = np.exp(1j * math.pi * n_samples * t * t)
    delay = n_samples // 6
    rx = np.concatenate(
        [np.zeros(delay), 0.6 * ref[: n_samples - delay]]
    ) + 0.01 * np.exp(2j * math.pi * 3.0 * t)

    ref_path = os.path.join(data_dir, "reference.txt")
    rx_path = os.path.join(data_dir, "capture.txt")

    # -- KERNEL (file I/O): store the capture line by line ------------------
    with open(rx_path, "w") as fout:
        for k in range(n_samples):
            fout.write(f"{rx[k].real:.12e} {rx[k].imag:.12e}\n")
            fout.flush()

    # -- KERNEL (file I/O): store the reference waveform ---------------------
    with open(ref_path, "w") as fout:
        for k in range(n_samples):
            fout.write(f"{ref[k].real:.12e} {ref[k].imag:.12e}\n")
            fout.flush()

    # -- KERNEL (file I/O): parse the capture back from disk -----------------
    with open(rx_path) as fin:
        rx_sig = []
        for line in fin:
            re_part, im_part = line.split()
            rx_sig.append(complex(float(re_part), float(im_part)))
        ref_sig = []
        for line in open(ref_path):
            re_part, im_part = line.split()
            ref_sig.append(complex(float(re_part), float(im_part)))

    # -- KERNEL (naive DFT of the capture) ------------------------------------
    X1 = [0j] * n_samples
    for k in range(n_samples):
        acc = 0j
        for i in range(n_samples):
            acc += rx_sig[i] * cmath.exp(-2j * cmath.pi * k * i / n_samples)
        X1[k] = acc

    # -- KERNEL (naive DFT of the reference) ----------------------------------
    X2 = [0j] * n_samples
    for k in range(n_samples):
        acc = 0j
        for i in range(n_samples):
            acc += ref_sig[i] * cmath.exp(-2j * cmath.pi * k * i / n_samples)
        X2[k] = acc

    # -- non-kernel: correlation spectrum (vectorized) -------------------------
    corr_spec = np.asarray(X1) * np.conj(np.asarray(X2))

    # -- KERNEL (naive inverse DFT back to the lag domain) ---------------------
    corr = [0j] * n_samples
    for k in range(n_samples):
        acc = 0j
        for i in range(n_samples):
            acc += corr_spec[i] * cmath.exp(2j * cmath.pi * k * i / n_samples)
        corr[k] = acc / n_samples

    # -- non-kernel: peak search (vectorized) ------------------------------------
    lag = int(np.argmax(np.abs(np.asarray(corr))))
    return lag


def expected_lag(n_samples: int) -> int:
    """The delay baked into the synthesized capture."""
    return n_samples // 6
