"""Case Study 3 — portability: Odroid XU3 sweep (paper Sec. III-E, Fig. 11).

Execution time versus job injection rate for combinations of big and
LITTLE cores on the Exynos 5422, performance mode, FRFS.  The management
(overlay) processor is a LITTLE core, so scheduling overhead — which grows
with the PE count under FRFS — is inflated by its lower speed; this is
what makes 4BIG+3LTL and 4BIG+2LTL lose to 4BIG+1LTL at high rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.common.errors import EmulationError
from repro.dse import SweepGrid, rate_sweep, run_campaign
from repro.experiments.workloads import FIG11_CONFIGS, FIG11_RATES


@dataclass
class Fig11Point:
    config: str
    rate: float
    execution_time_s: float
    avg_sched_overhead_us: float


def fig11_grid(
    *,
    configs: tuple[str, ...] = FIG11_CONFIGS,
    rates: tuple[float, ...] = FIG11_RATES,
    policy: str = "frfs",
    iterations: int = 1,
) -> SweepGrid:
    """The Fig. 11 sweep as a campaign grid (rates x Odroid configs)."""
    return SweepGrid(
        platforms=("odroid_xu3",),
        configs=tuple(configs),
        policies=(policy,),
        workloads=tuple(rate_sweep(rate) for rate in rates),
        iterations=iterations,
        jitter=iterations > 1,
    )


def run_fig11(
    *,
    configs: tuple[str, ...] = FIG11_CONFIGS,
    rates: tuple[float, ...] = FIG11_RATES,
    policy: str = "frfs",
    iterations: int = 1,
    jobs: int = 1,
    out_dir: str | None = None,
) -> list[Fig11Point]:
    """Sweep Odroid configurations against injection rates.

    The paper averages multiple iterations per point; with jitter disabled
    the virtual backend is deterministic, so ``iterations=1`` reproduces
    the mean directly (pass more to exercise the averaging path).  The
    12-config x 8-rate product runs through the DSE campaign engine;
    ``jobs`` parallelizes it and ``out_dir`` makes it cached/resumable.
    """
    grid = fig11_grid(
        configs=configs, rates=rates, policy=policy, iterations=iterations
    )
    campaign = run_campaign(grid, jobs=jobs, out_dir=out_dir)
    points: list[Fig11Point] = []
    for res in campaign:
        if not res.ok or res.metrics is None:
            raise EmulationError(
                f"fig11 cell {res.cell.label} failed: {res.error}"
            )
        points.append(
            Fig11Point(
                config=res.cell.config,
                rate=res.cell.workload["rate"],
                execution_time_s=float(
                    np.mean([us / 1e6 for us in res.metrics["makespan_us_runs"]])
                ),
                avg_sched_overhead_us=float(
                    np.mean(res.metrics["sched_overhead_us_runs"])
                ),
            )
        )
    return points


def render_fig11(points: list[Fig11Point]) -> str:
    body = [
        [p.config, p.rate, round(p.execution_time_s, 4),
         round(p.avg_sched_overhead_us, 2)]
        for p in sorted(points, key=lambda p: (p.rate, p.config))
    ]
    return format_table(
        ["config", "rate_jobs_per_ms", "exec_time_s", "avg_overhead_us"],
        body,
        title="Fig 11: Odroid XU3 execution time vs injection rate (FRFS)",
    )


def check_fig11_shape(points: list[Fig11Point]) -> list[str]:
    """The paper's qualitative claims; returns a list of violations."""
    problems: list[str] = []
    top_rate = max(p.rate for p in points)
    at_top = {p.config: p.execution_time_s for p in points if p.rate == top_rate}

    def has(*configs: str) -> bool:
        return all(c in at_top for c in configs)

    if has("3BIG+2LTL"):
        best = min(at_top.values())
        if at_top["3BIG+2LTL"] > 1.10 * best:
            problems.append(
                "3BIG+2LTL should be within ~10% of the best configuration"
            )
    if has("4BIG+3LTL", "4BIG+1LTL") and not (
        at_top["4BIG+3LTL"] > at_top["4BIG+1LTL"]
    ):
        problems.append("4BIG+3LTL should be slower than 4BIG+1LTL (overhead)")
    if has("4BIG+2LTL", "4BIG+1LTL") and not (
        at_top["4BIG+2LTL"] > at_top["4BIG+1LTL"]
    ):
        problems.append("4BIG+2LTL should be slower than 4BIG+1LTL (overhead)")
    if has("0BIG+3LTL") and at_top["0BIG+3LTL"] <= np.median(list(at_top.values())):
        problems.append("0BIG+3LTL (LITTLE-only) should be among the slowest")
    # execution time should grow with rate for every configuration
    by_config: dict[str, list[Fig11Point]] = {}
    for p in points:
        by_config.setdefault(p.config, []).append(p)
    for config, series in by_config.items():
        series.sort(key=lambda p: p.rate)
        times = [p.execution_time_s for p in series]
        if len(times) >= 2 and times[-1] <= times[0]:
            problems.append(f"{config}: execution time should grow with rate")
    return problems
