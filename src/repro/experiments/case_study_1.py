"""Case Study 1 — validation mode (paper Sec. III-C, Fig. 9).

Execution time (box statistics over repeated iterations) and per-PE
utilization of the four-application validation workload across the seven
ZCU102 DSSoC configurations under FRFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boxstats import BoxStats, box_stats
from repro.analysis.tables import format_table
from repro.common.errors import EmulationError
from repro.dse import SweepGrid, run_campaign, validation_sweep
from repro.experiments.workloads import FIG9_CONFIGS

#: Case study 1's validation workload: one instance of each application.
FIG9_APPS = {"pulse_doppler": 1, "range_detection": 1, "wifi_tx": 1, "wifi_rx": 1}


@dataclass
class Fig9Row:
    config: str
    execution_time: BoxStats          # milliseconds
    pe_utilization: dict[str, float]  # per PE name


def fig9_grid(
    *,
    iterations: int = 50,
    configs: tuple[str, ...] = FIG9_CONFIGS,
    policy: str = "frfs",
    seed: int = 0,
) -> SweepGrid:
    """The Fig. 9 sweep as a campaign grid (configs x one workload)."""
    return SweepGrid(
        configs=tuple(configs),
        policies=(policy,),
        workloads=(validation_sweep(FIG9_APPS),),
        seeds=(seed,),
        iterations=iterations,
        jitter=True,
    )


def run_fig9(
    *,
    iterations: int = 50,
    configs: tuple[str, ...] = FIG9_CONFIGS,
    policy: str = "frfs",
    seed: int = 0,
    jobs: int = 1,
    out_dir: str | None = None,
) -> list[Fig9Row]:
    """Reproduce Fig. 9: ``iterations`` runs per configuration.

    The paper generates its box plot from 50 iterations; per-run variation
    comes from the calibrated execution-time jitter model.  The sweep runs
    through the DSE campaign engine: pass ``jobs`` to parallelize across
    configurations and ``out_dir`` to cache/journal the campaign.
    """
    grid = fig9_grid(
        iterations=iterations, configs=configs, policy=policy, seed=seed
    )
    campaign = run_campaign(grid, jobs=jobs, out_dir=out_dir)
    rows: list[Fig9Row] = []
    for res in campaign:
        if not res.ok or res.metrics is None:
            raise EmulationError(f"fig9 cell {res.cell.label} failed: {res.error}")
        times_ms = [us / 1000.0 for us in res.metrics["makespan_us_runs"]]
        rows.append(
            Fig9Row(
                config=res.cell.config,
                execution_time=box_stats(times_ms),
                pe_utilization=dict(res.metrics["pe_utilization"]),
            )
        )
    return rows


def render_fig9(rows: list[Fig9Row]) -> str:
    """Fig. 9a (execution-time boxes) and 9b (PE utilization) as text."""
    time_rows = []
    for row in rows:
        b = row.execution_time
        time_rows.append(
            [row.config, b.minimum, b.q1, b.median, b.q3, b.maximum, b.n]
        )
    part_a = format_table(
        ["config", "min_ms", "q1_ms", "median_ms", "q3_ms", "max_ms", "iters"],
        time_rows,
        title="Fig 9a: workload execution time per DSSoC configuration (FRFS)",
    )
    util_rows = []
    for row in rows:
        for pe_name, util in sorted(row.pe_utilization.items()):
            util_rows.append([row.config, pe_name, round(100 * util, 1)])
    part_b = format_table(
        ["config", "pe", "utilization_%"],
        util_rows,
        title="Fig 9b: PE utilization per DSSoC configuration",
    )
    return part_a + "\n\n" + part_b


def check_fig9_shape(rows: list[Fig9Row]) -> list[str]:
    """The paper's qualitative claims; returns a list of violations."""
    med = {r.config: r.execution_time.median for r in rows}
    problems: list[str] = []
    if not med["3C+0F"] <= min(med.values()) * 1.05:
        problems.append("3C+0F should be the best configuration")
    core_gain = med["1C+1F"] - med["2C+1F"]
    fft_gain = med["1C+1F"] - med["1C+2F"]
    if core_gain <= fft_gain:
        problems.append(
            "adding a core (1C+1F->2C+1F) should beat adding an FFT "
            "(1C+1F->1C+2F)"
        )
    if abs(med["2C+2F"] - med["2C+1F"]) > 0.15 * med["2C+1F"]:
        problems.append("2C+2F should be within ~15% of 2C+1F (shared RM core)")
    if med["1C+0F"] <= med["3C+0F"]:
        problems.append("1C+0F should be the slowest all-CPU configuration")
    for row in rows:
        util = row.pe_utilization
        cpu = [u for pe, u in util.items() if pe.startswith("cpu")]
        fft = [u for pe, u in util.items() if pe.startswith("fft")]
        if fft and cpu and max(fft) > max(cpu):
            problems.append(
                f"{row.config}: CPU utilization should exceed FFT utilization"
            )
    return problems
