"""Case Study 1 — validation mode (paper Sec. III-C, Fig. 9).

Execution time (box statistics over repeated iterations) and per-PE
utilization of the four-application validation workload across the seven
ZCU102 DSSoC configurations under FRFS.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.boxstats import BoxStats, box_stats
from repro.analysis.tables import format_table
from repro.experiments.workloads import FIG9_CONFIGS, fig9_workload
from repro.runtime.backends.virtual import VirtualBackend
from repro.runtime.emulation import Emulation


@dataclass
class Fig9Row:
    config: str
    execution_time: BoxStats          # milliseconds
    pe_utilization: dict[str, float]  # per PE name


def run_fig9(
    *,
    iterations: int = 50,
    configs: tuple[str, ...] = FIG9_CONFIGS,
    policy: str = "frfs",
    seed: int = 0,
) -> list[Fig9Row]:
    """Reproduce Fig. 9: ``iterations`` runs per configuration.

    The paper generates its box plot from 50 iterations; per-run variation
    comes from the calibrated execution-time jitter model.
    """
    rows: list[Fig9Row] = []
    workload = fig9_workload()
    backend = VirtualBackend()
    for config in configs:
        times_ms: list[float] = []
        last_util: dict[str, float] = {}
        for it in range(iterations):
            emu = Emulation(
                config=config,
                policy=policy,
                materialize_memory=False,
                jitter=True,
                seed=seed,
            )
            result = emu.run(workload, backend, run_index=it)
            times_ms.append(result.makespan_ms)
            last_util = result.stats.pe_utilization()
        rows.append(
            Fig9Row(
                config=config,
                execution_time=box_stats(times_ms),
                pe_utilization=last_util,
            )
        )
    return rows


def render_fig9(rows: list[Fig9Row]) -> str:
    """Fig. 9a (execution-time boxes) and 9b (PE utilization) as text."""
    time_rows = []
    for row in rows:
        b = row.execution_time
        time_rows.append(
            [row.config, b.minimum, b.q1, b.median, b.q3, b.maximum, b.n]
        )
    part_a = format_table(
        ["config", "min_ms", "q1_ms", "median_ms", "q3_ms", "max_ms", "iters"],
        time_rows,
        title="Fig 9a: workload execution time per DSSoC configuration (FRFS)",
    )
    util_rows = []
    for row in rows:
        for pe_name, util in sorted(row.pe_utilization.items()):
            util_rows.append([row.config, pe_name, round(100 * util, 1)])
    part_b = format_table(
        ["config", "pe", "utilization_%"],
        util_rows,
        title="Fig 9b: PE utilization per DSSoC configuration",
    )
    return part_a + "\n\n" + part_b


def check_fig9_shape(rows: list[Fig9Row]) -> list[str]:
    """The paper's qualitative claims; returns a list of violations."""
    med = {r.config: r.execution_time.median for r in rows}
    problems: list[str] = []
    if not med["3C+0F"] <= min(med.values()) * 1.05:
        problems.append("3C+0F should be the best configuration")
    core_gain = med["1C+1F"] - med["2C+1F"]
    fft_gain = med["1C+1F"] - med["1C+2F"]
    if core_gain <= fft_gain:
        problems.append(
            "adding a core (1C+1F->2C+1F) should beat adding an FFT "
            "(1C+1F->1C+2F)"
        )
    if abs(med["2C+2F"] - med["2C+1F"]) > 0.15 * med["2C+1F"]:
        problems.append("2C+2F should be within ~15% of 2C+1F (shared RM core)")
    if med["1C+0F"] <= med["3C+0F"]:
        problems.append("1C+0F should be the slowest all-CPU configuration")
    for row in rows:
        util = row.pe_utilization
        cpu = [u for pe, u in util.items() if pe.startswith("cpu")]
        fft = [u for pe, u in util.items() if pe.startswith("fft")]
        if fft and cpu and max(fft) > max(cpu):
            problems.append(
                f"{row.config}: CPU utilization should exceed FFT utilization"
            )
    return problems
