"""Canonical workload definitions for the paper's case studies.

* Table II's five performance-mode workloads (instance counts per app at
  each average injection rate; counts sum to rate × 100 ms).
* The Fig. 9 validation workload (one instance of each application).
* Rate-scaled workloads for the Odroid sweep of Fig. 11 (rates 4–18
  jobs/ms, same application mix proportions as Table II).
"""

from __future__ import annotations

import math

from repro.common.errors import ApplicationSpecError
from repro.common.units import MS
from repro.runtime.workload import (
    WorkloadSpec,
    validation_workload,
    workload_for_counts,
)

#: Paper Table II: injection rate (jobs/ms) -> instance counts per app.
TABLE_II_COUNTS: dict[float, dict[str, int]] = {
    1.71: {"pulse_doppler": 8, "range_detection": 123, "wifi_tx": 20, "wifi_rx": 20},
    2.28: {"pulse_doppler": 10, "range_detection": 164, "wifi_tx": 27, "wifi_rx": 27},
    3.42: {"pulse_doppler": 15, "range_detection": 245, "wifi_tx": 41, "wifi_rx": 41},
    4.57: {"pulse_doppler": 18, "range_detection": 329, "wifi_tx": 55, "wifi_rx": 55},
    6.92: {"pulse_doppler": 32, "range_detection": 495, "wifi_tx": 82, "wifi_rx": 83},
}

TABLE_II_RATES: tuple[float, ...] = tuple(TABLE_II_COUNTS)

#: Default test time-frame (the paper's 100 ms window).
TIME_FRAME_US: float = 100.0 * MS

#: Application mix proportions (share of total jobs), averaged over the
#: Table II workloads — used to synthesize workloads at arbitrary rates.
MIX_SHARES: dict[str, float] = {
    "pulse_doppler": 0.046,
    "range_detection": 0.718,
    "wifi_tx": 0.118,
    "wifi_rx": 0.118,
}


def fig9_workload() -> WorkloadSpec:
    """Case study 1: single instances of PD, RD, and the WiFi apps at t=0."""
    return validation_workload(
        {"pulse_doppler": 1, "range_detection": 1, "wifi_tx": 1, "wifi_rx": 1}
    )


def table_ii_workload(rate: float) -> WorkloadSpec:
    """One of the five canonical performance-mode workloads."""
    try:
        counts = TABLE_II_COUNTS[rate]
    except KeyError:
        raise KeyError(
            f"rate {rate} is not a Table II rate (use {TABLE_II_RATES} or "
            "workload_at_rate for arbitrary rates)"
        ) from None
    return workload_for_counts(counts, TIME_FRAME_US)


def counts_at_rate(rate: float, time_frame: float = TIME_FRAME_US) -> dict[str, int]:
    """Instance counts for an arbitrary rate using the Table II mix."""
    # A zero/negative/NaN rate would otherwise quietly clamp to one
    # instance per app via max(1, ...) and misreport the cell it labels.
    if not math.isfinite(rate) or rate <= 0:
        raise ApplicationSpecError(
            f"injection rate must be positive, got {rate}"
        )
    if not math.isfinite(time_frame) or time_frame <= 0:
        raise ApplicationSpecError(
            f"time_frame must be positive, got {time_frame}"
        )
    total_jobs = rate * (time_frame / MS)
    counts: dict[str, int] = {}
    for app, share in MIX_SHARES.items():
        counts[app] = max(1, round(total_jobs * share))
    return counts


def workload_at_rate(rate: float, time_frame: float = TIME_FRAME_US) -> WorkloadSpec:
    """A Table-II-mix workload at any average injection rate (Fig. 11)."""
    return workload_for_counts(counts_at_rate(rate, time_frame), time_frame)


#: Fig. 9's seven ZCU102 DSSoC configurations, in the paper's order.
FIG9_CONFIGS: tuple[str, ...] = (
    "1C+0F", "1C+1F", "1C+2F", "2C+0F", "2C+1F", "2C+2F", "3C+0F",
)

#: Fig. 11's twelve Odroid XU3 configurations, in the paper's legend order.
FIG11_CONFIGS: tuple[str, ...] = (
    "0BIG+3LTL", "1BIG+2LTL", "1BIG+3LTL", "2BIG+1LTL",
    "2BIG+2LTL", "2BIG+3LTL", "3BIG+1LTL", "3BIG+2LTL",
    "3BIG+3LTL", "4BIG+1LTL", "4BIG+2LTL", "4BIG+3LTL",
)

#: Fig. 11's x-axis (jobs per millisecond); the paper plots 4–18.
FIG11_RATES: tuple[float, ...] = (4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0, 18.0)
