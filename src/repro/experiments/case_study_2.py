"""Case Study 2 — performance mode (paper Sec. III-D, Table I, Fig. 10).

Table I: standalone application execution time and task count on the
3-core + 2-FFT configuration under FRFS.  Fig. 10: workload execution time
and average scheduling overhead across the Table II injection rates for
the EFT, MET, and FRFS policies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.apps import default_applications
from repro.common.errors import EmulationError
from repro.dse import SweepGrid, run_campaign, table_ii_sweep, validation_sweep
from repro.experiments.workloads import TABLE_II_RATES

#: Paper Table I reference values (ms / count) for EXPERIMENTS.md.
PAPER_TABLE_I = {
    "range_detection": (0.32, 6),
    "pulse_doppler": (5.60, 770),
    "wifi_tx": (0.13, 7),
    "wifi_rx": (2.22, 9),
}


@dataclass
class TableIRow:
    application: str
    execution_time_ms: float
    task_count: int


def run_table_i(*, config: str = "3C+2F", policy: str = "frfs") -> list[TableIRow]:
    """Standalone application times (single instance, validation mode)."""
    grid = SweepGrid(
        configs=(config,),
        policies=(policy,),
        workloads=tuple(
            validation_sweep({app_name: 1}) for app_name in default_applications()
        ),
    )
    rows: list[TableIRow] = []
    for res in run_campaign(grid):
        if not res.ok or res.metrics is None:
            raise EmulationError(
                f"table I cell {res.cell.label} failed: {res.error}"
            )
        (app_name,) = res.cell.workload["apps"]
        rows.append(
            TableIRow(
                application=app_name,
                execution_time_ms=res.metrics["makespan_us_runs"][0] / 1000.0,
                task_count=res.metrics["tasks"],
            )
        )
    return rows


def render_table_i(rows: list[TableIRow]) -> str:
    body = []
    for row in sorted(rows, key=lambda r: r.application):
        paper_ms, paper_tasks = PAPER_TABLE_I.get(row.application, ("-", "-"))
        body.append(
            [row.application, round(row.execution_time_ms, 3), row.task_count,
             paper_ms, paper_tasks]
        )
    return format_table(
        ["application", "exec_ms", "tasks", "paper_ms", "paper_tasks"],
        body,
        title="Table I: standalone execution time and task count (3C+2F, FRFS)",
    )


@dataclass
class Fig10Point:
    rate: float
    policy: str
    execution_time_s: float
    avg_sched_overhead_us: float
    mean_ready_length: float


def fig10_grid(
    *,
    rates: tuple[float, ...] = TABLE_II_RATES,
    policies: tuple[str, ...] = ("eft", "met", "frfs"),
    config: str = "3C+2F",
) -> SweepGrid:
    """The Fig. 10 sweep as a campaign grid (rates x policies)."""
    return SweepGrid(
        configs=(config,),
        policies=tuple(policies),
        workloads=tuple(table_ii_sweep(rate) for rate in rates),
    )


def run_fig10(
    *,
    rates: tuple[float, ...] = TABLE_II_RATES,
    policies: tuple[str, ...] = ("eft", "met", "frfs"),
    config: str = "3C+2F",
    jobs: int = 1,
    out_dir: str | None = None,
) -> list[Fig10Point]:
    """Sweep policies across the Table II injection-rate workloads."""
    grid = fig10_grid(rates=rates, policies=policies, config=config)
    campaign = run_campaign(grid, jobs=jobs, out_dir=out_dir)
    points: list[Fig10Point] = []
    for res in campaign:
        if not res.ok or res.metrics is None:
            raise EmulationError(
                f"fig10 cell {res.cell.label} failed: {res.error}"
            )
        points.append(
            Fig10Point(
                rate=res.cell.workload["rate"],
                policy=res.cell.policy,
                execution_time_s=res.metrics["makespan_us_runs"][0] / 1e6,
                avg_sched_overhead_us=res.metrics["sched_overhead_us_runs"][0],
                mean_ready_length=res.metrics["mean_ready_length"],
            )
        )
    return points


def render_fig10(points: list[Fig10Point]) -> str:
    body = [
        [p.rate, p.policy, round(p.execution_time_s, 3),
         round(p.avg_sched_overhead_us, 2)]
        for p in points
    ]
    return format_table(
        ["rate_jobs_per_ms", "policy", "exec_time_s", "avg_overhead_us"],
        body,
        title="Fig 10: execution time (a) and scheduling overhead (b), 3C+2F",
    )


def check_fig10_shape(points: list[Fig10Point]) -> list[str]:
    """The paper's qualitative claims; returns a list of violations."""
    by_policy: dict[str, list[Fig10Point]] = {}
    for p in points:
        by_policy.setdefault(p.policy, []).append(p)
    for series in by_policy.values():
        series.sort(key=lambda p: p.rate)
    problems: list[str] = []
    tol = 1.02  # FRFS and MET tie at the lowest rate (paper: 0.10 vs 0.10)
    for rate in sorted({p.rate for p in points}):
        at = {p.policy: p for p in points if p.rate == rate}
        if not (
            at["frfs"].execution_time_s
            <= tol * at["met"].execution_time_s
            <= tol * tol * at["eft"].execution_time_s
        ):
            problems.append(f"rate {rate}: expected EFT >= MET >= FRFS makespan")
        if not (
            at["frfs"].avg_sched_overhead_us
            < at["met"].avg_sched_overhead_us
            < at["eft"].avg_sched_overhead_us
        ):
            problems.append(f"rate {rate}: expected overhead EFT > MET > FRFS")
    frfs = by_policy.get("frfs", [])
    if frfs:
        overheads = [p.avg_sched_overhead_us for p in frfs]
        if max(overheads) > 3.0 * min(overheads):
            problems.append("FRFS overhead should stay roughly constant")
        if max(overheads) > 10.0:
            problems.append("FRFS overhead should stay at microsecond scale")
        times = [p.execution_time_s for p in frfs]
        if times != sorted(times):
            problems.append("FRFS execution time should grow with rate")
    for name in ("met", "eft"):
        series = by_policy.get(name, [])
        if len(series) >= 2 and series[-1].avg_sched_overhead_us <= (
            series[0].avg_sched_overhead_us
        ):
            problems.append(f"{name} overhead should grow with injection rate")
    return problems
