"""Experiment drivers reproducing every table and figure of the paper.

* :mod:`repro.experiments.workloads` — Table II workloads and the Fig. 9 /
  Fig. 11 workload definitions.
* :mod:`repro.experiments.case_study_1` — validation mode across DSSoC
  configurations (Fig. 9a/9b).
* :mod:`repro.experiments.case_study_2` — performance mode, scheduler
  comparison (Table I, Fig. 10a/10b).
* :mod:`repro.experiments.case_study_3` — Odroid XU3 portability sweep
  (Fig. 11).
* :mod:`repro.experiments.case_study_4` — automatic application conversion
  (kernel detection, recognition, substitution speedups).
* :mod:`repro.experiments.monolithic` — the unlabeled monolithic range-
  detection program Case Study 4 converts.
"""
