"""Packaging shim: builds the optional compiled DES core when it can.

The extension (``repro._native._coreext``) is a pure accelerator — the
framework is fully functional without it — so a failed build must never
fail the install.  Any compiler error degrades to a warning and the
pure-Python core remains the (bit-identical) implementation in use.
Build it later with ``python -m repro._native.build``.
"""

import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Build the core extension if possible; warn instead of failing."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # compiler missing, headers absent, ...
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(
            "warning: could not build the optional compiled DES core "
            f"({exc}); falling back to the pure-Python core. "
            "Build it later with `python -m repro._native.build`.",
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro._native._coreext",
            sources=["src/repro/_native/_coreext.c"],
            optional=True,
            extra_compile_args=["-O2", "-fno-strict-aliasing"],
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
