"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures (or an
ablation) and prints the same rows/series the paper reports, so the run's
captured output doubles as the reproduction artifact.  Benchmarks are sized
to finish in seconds-to-minutes; the full-resolution sweeps live in
``repro.experiments`` and the ``dssoc-emulate experiment`` CLI.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--full-sweep",
        action="store_true",
        default=False,
        help="run benchmark sweeps at the paper's full resolution",
    )


@pytest.fixture(scope="session")
def full_sweep(request):
    return request.config.getoption("--full-sweep")
