"""Ablation: power-aware scheduling (the paper's future-work item).

"We will improve our framework's support for device sensors, enabling
schedulers to utilize power aware heuristics."  The framework carries
per-PE power models and energy accounting; this ablation compares MET
against its power-aware variant on the Odroid big.LITTLE platform, where
the LITTLE cores' ~4× power advantage outweighs their ~3× slowdown.
"""

from __future__ import annotations

import pytest

from repro.experiments.workloads import workload_at_rate
from repro.hardware.platform import odroid_xu3
from repro.runtime.backends import VirtualBackend
from repro.runtime.emulation import Emulation


def run_policy(policy: str):
    emu = Emulation(
        platform=odroid_xu3(), config="2BIG+3LTL", policy=policy,
        materialize_memory=False, jitter=False,
    )
    return emu.run(workload_at_rate(2.0), VirtualBackend())


@pytest.fixture(scope="module")
def power_results():
    results = {p: run_policy(p) for p in ("met", "met_power")}
    print()
    print("Power-aware MET ablation (Odroid 2BIG+3LTL, 2 jobs/ms):")
    for policy, result in results.items():
        energy = sum(result.stats.pe_energy().values())
        print(
            f"  {policy:10s} makespan={result.stats.makespan / 1e6:7.3f}s  "
            f"energy={energy:8.3f}J"
        )
    return results


def test_both_policies_complete(power_results):
    for policy, result in power_results.items():
        result.stats.assert_all_complete()


def test_power_aware_shifts_work_to_little_cores(power_results):
    def little_share(result):
        per_pe = {
            name: usage.busy_time
            for name, usage in result.stats.pe_usage.items()
        }
        little = sum(t for n, t in per_pe.items() if n.startswith("little"))
        total = sum(per_pe.values())
        return little / total

    assert little_share(power_results["met_power"]) > little_share(
        power_results["met"]
    )


def test_power_aware_reduces_active_energy(power_results):
    """Energy integrated over busy time only (idle power identical)."""
    def active_energy(result):
        return sum(
            usage.busy_time * usage.active_power_w / 1e6
            for usage in result.stats.pe_usage.values()
        )

    assert active_energy(power_results["met_power"]) < active_energy(
        power_results["met"]
    )


@pytest.mark.benchmark(group="ablation-power")
def test_bench_power_aware_met(benchmark):
    result = benchmark.pedantic(
        lambda: run_policy("met_power"), rounds=3, iterations=1
    )
    assert result.stats.apps_completed > 0
