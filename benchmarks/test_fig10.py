"""Fig. 10: performance-mode scheduler comparison on 3C+2F.

Regenerates both panels — (a) workload execution time and (b) average
scheduling overhead versus injection rate for EFT, MET, and FRFS — and
asserts the paper's qualitative findings: FRFS's overhead is flat at
microsecond scale and its makespan grows linearly; MET's O(n) and EFT's
O(n²) policy costs accumulate into decades-higher overheads and makespans,
with EFT worst everywhere.

The default run covers the three lowest Table II rates (EFT's saturated
runs dominate wall time); ``--full-sweep`` runs all five.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.case_study_2 import (
    check_fig10_shape,
    render_fig10,
    run_fig10,
)
from repro.experiments.workloads import TABLE_II_RATES, table_ii_workload
from repro.runtime.backends import VirtualBackend
from repro.runtime.emulation import Emulation


@pytest.fixture(scope="module")
def fig10_points(request):
    rates = (
        TABLE_II_RATES
        if request.config.getoption("--full-sweep")
        else TABLE_II_RATES[:3]
    )
    points = run_fig10(rates=rates)
    print()
    print(render_fig10(points))
    return points


def test_fig10_shape_criteria(fig10_points):
    assert check_fig10_shape(fig10_points) == []


def test_fig10b_overhead_decades(fig10_points):
    """Overheads must land in the paper's decades: FRFS ~1e0 us, MET
    1e1-1e3 us, EFT 1e2-1e5 us, at every rate."""
    for p in fig10_points:
        if p.policy == "frfs":
            assert 1.0 <= p.avg_sched_overhead_us <= 8.0
        elif p.policy == "met":
            assert 5.0 <= p.avg_sched_overhead_us <= 2000.0
        elif p.policy == "eft":
            assert 100.0 <= p.avg_sched_overhead_us <= 100_000.0


def test_fig10a_frfs_linear_in_rate(fig10_points):
    frfs = sorted(
        (p for p in fig10_points if p.policy == "frfs"), key=lambda p: p.rate
    )
    times = np.array([p.execution_time_s for p in frfs])
    rates = np.array([p.rate for p in frfs])
    # linear fit residual must be small relative to the span
    coeffs = np.polyfit(rates, times, 1)
    residual = np.abs(np.polyval(coeffs, rates) - times).max()
    assert residual <= 0.25 * (times.max() - times.min() + 0.05)


def test_fig10a_eft_saturated_from_lowest_rate(fig10_points):
    """Paper: EFT needs 4.6 s for a 100 ms injection window at rate 1.71."""
    eft_low = next(
        p for p in fig10_points if p.policy == "eft" and p.rate == 1.71
    )
    assert eft_low.execution_time_s > 1.0


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("policy", ["frfs", "met"])
def test_bench_performance_mode(benchmark, policy):
    """pytest-benchmark target: a rate-1.71 performance-mode run."""
    emu = Emulation(
        config="3C+2F", policy=policy, materialize_memory=False, jitter=False
    )
    workload = table_ii_workload(1.71)
    result = benchmark.pedantic(
        lambda: emu.run(workload, VirtualBackend()), rounds=3, iterations=1
    )
    assert result.stats.apps_completed == 171
